(* canon — command-line front end for the Canon reproduction.

   Each subcommand regenerates one of the paper's tables/figures (or an
   extension experiment) and prints it as an aligned text table. *)

open Cmdliner
module Table = Canon_stats.Table
module Telemetry = Canon_telemetry
open Canon_experiments

let seed_arg =
  let doc = "Random seed; identical seeds reproduce identical tables." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Run at reduced scale (fast; same qualitative shapes)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let trace_arg =
  let doc =
    "Write one JSON span per measured lookup to $(docv) (JSONL). Each span records \
     the visited path, the hierarchy level of every link used, the outcome, and \
     cumulative physical latency when the experiment has a latency model."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let sample_arg =
  let doc = "With --trace: keep every $(docv)-th lookup only (default 1 = all)." in
  Arg.(value & opt int 1 & info [ "trace-sample" ] ~docv:"K" ~doc)

let metrics_arg =
  let doc = "Print the telemetry metrics registry after the experiment." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let scale_of quick = if quick then `Quick else Common.scale_of_env ()

let run_experiment build quick seed trace_file sample_every metrics =
  if sample_every < 1 then `Error (false, "--trace-sample must be >= 1")
  else begin
    match
      Option.map
        (fun file ->
          Telemetry.Trace.create ~sample_every ~sink:(Telemetry.Sink.jsonl_file file) ())
        trace_file
    with
    | exception Sys_error msg -> `Error (false, "cannot open trace file: " ^ msg)
    | trace ->
    Telemetry.Trace.set_ambient trace;
    let finally () =
      Telemetry.Trace.set_ambient None;
      Option.iter Telemetry.Trace.flush trace
    in
    Fun.protect ~finally (fun () ->
        let table = build ~scale:(scale_of quick) ~seed in
        Table.print table);
    Option.iter
      (fun tr ->
        Printf.printf "[trace: %d lookups seen, %d spans written]\n"
          (Telemetry.Trace.seen tr) (Telemetry.Trace.emitted tr))
      trace;
    if metrics then Table.print (Telemetry.Report.table ());
    `Ok ()
  end

let experiment_cmd name ~doc build =
  let term =
    Term.(
      ret
        (const (run_experiment build)
        $ quick_arg $ seed_arg $ trace_arg $ sample_arg $ metrics_arg))
  in
  Cmd.v (Cmd.info name ~doc) term

(* Fig. 6's size sweep can be restricted to one network size (the lazy
   latency oracle makes isolated huge-n runs affordable), so it gets a
   hand-rolled command. *)
let fig6_cmd =
  let n_arg =
    let doc =
      "Measure a single network size $(docv) instead of the default sweep \
       (2048..131072 at paper scale)."
    in
    Arg.(value & opt (some int) None & info [ "n"; "nodes" ] ~docv:"N" ~doc)
  in
  let run n =
    if (match n with Some n when n < 2 -> true | _ -> false) then
      fun _ _ _ _ _ -> `Error (false, "--n must be >= 2")
    else
      run_experiment (fun ~scale ~seed ->
          Fig6.run_with ?sizes:(Option.map (fun n -> [ n ]) n) ~scale ~seed ())
  in
  let doc = "Figure 6: latency and stretch on the transit-stub internet." in
  Cmd.v (Cmd.info "fig6" ~doc)
    Term.(
      ret (const run $ n_arg $ quick_arg $ seed_arg $ trace_arg $ sample_arg $ metrics_arg))

(* The robustness sweep takes fault-injection knobs on top of the
   standard experiment flags, so it gets a hand-rolled command. *)
let robustness_cmd =
  let fail_frac_arg =
    let doc =
      "Measure a single crashed-node fraction $(docv) instead of the default sweep \
       (0, 0.05, 0.1, 0.2, 0.3)."
    in
    Arg.(value & opt (some float) None & info [ "fail-frac" ] ~docv:"FRAC" ~doc)
  in
  let loss_arg =
    let doc = "Per-message loss probability (default 0.01)." in
    Arg.(value & opt (some float) None & info [ "loss" ] ~docv:"PROB" ~doc)
  in
  let n_arg =
    let doc =
      "Population size $(docv) instead of the scale default (8192 paper / 2048 quick); \
       the lazy latency oracle admits sizes past 65536."
    in
    Arg.(value & opt (some int) None & info [ "n"; "nodes" ] ~docv:"N" ~doc)
  in
  let probes_arg =
    let doc = "Lookups per sweep point (default 1500 paper / 300 quick)." in
    Arg.(value & opt (some int) None & info [ "probes" ] ~docv:"K" ~doc)
  in
  let run fail_frac loss n probes =
    let bad_prob = function Some f when f < 0.0 || f > 1.0 -> true | Some _ | None -> false in
    let bad_pos = function Some k when k < 1 -> true | Some _ | None -> false in
    if bad_prob fail_frac || bad_prob loss then
      fun _ _ _ _ _ -> `Error (false, "--fail-frac and --loss must be in [0, 1]")
    else if bad_pos n || bad_pos probes then
      fun _ _ _ _ _ -> `Error (false, "--n and --probes must be >= 1")
    else
      run_experiment (fun ~scale ~seed ->
          Robustness_bench.run_with
            ?fail_fracs:(Option.map (fun f -> [ f ]) fail_frac)
            ?loss ?n ?probes ~scale ~seed ())
  in
  let doc =
    "Message-level robustness: lookup success and latency vs crashed-node fraction \
     under loss, timeouts and retries (canon_net)."
  in
  Cmd.v (Cmd.info "robustness" ~doc)
    Term.(
      ret
        (const run $ fail_frac_arg $ loss_arg $ n_arg $ probes_arg $ quick_arg $ seed_arg
       $ trace_arg $ sample_arg $ metrics_arg))

(* The durability sweep adds replication knobs on top of the standard
   experiment flags. *)
let durability_cmd =
  let fail_frac_arg =
    let doc =
      "Measure a single crashed-node fraction $(docv) instead of the default sweep \
       (0.1, 0.2, 0.3, 0.5). The whole-domain outage row is always included."
    in
    Arg.(value & opt (some float) None & info [ "fail-frac" ] ~docv:"FRAC" ~doc)
  in
  let replicas_arg =
    let doc = "Replication degree $(docv) instead of the default sweep (2 and 3)." in
    Arg.(value & opt (some int) None & info [ "replicas" ] ~docv:"K" ~doc)
  in
  let spread_arg =
    let doc =
      "Replica placement policy: $(b,flat) (k-successor inside the storage domain) \
       or $(b,sibling) (one replica per distinct leaf domain, siblings first). \
       Default: both."
    in
    let policy =
      Arg.enum
        [
          ("flat", Canon_storage.Replica_set.Flat);
          ("sibling", Canon_storage.Replica_set.Sibling);
        ]
    in
    Arg.(value & opt (some policy) None & info [ "spread" ] ~docv:"POLICY" ~doc)
  in
  let run fail_frac replicas spread =
    let bad_prob = function Some f when f < 0.0 || f > 1.0 -> true | Some _ | None -> false in
    if bad_prob fail_frac then
      fun _ _ _ _ _ -> `Error (false, "--fail-frac must be in [0, 1]")
    else if (match replicas with Some k when k < 1 -> true | _ -> false) then
      fun _ _ _ _ _ -> `Error (false, "--replicas must be >= 1")
    else
      run_experiment (fun ~scale ~seed ->
          Durability.run_with
            ?fail_fracs:(Option.map (fun f -> [ f ]) fail_frac)
            ?ks:(Option.map (fun k -> [ k ]) replicas)
            ?spreads:(Option.map (fun s -> [ s ]) spread)
            ~scale ~seed ())
  in
  let doc =
    "Data durability: keys-surviving fraction vs crashed-node fraction and a \
     whole-domain outage, flat successor-replication vs hierarchical sibling-spread."
  in
  Cmd.v (Cmd.info "durability" ~doc)
    Term.(
      ret
        (const run $ fail_frac_arg $ replicas_arg $ spread_arg $ quick_arg $ seed_arg
       $ trace_arg $ sample_arg $ metrics_arg))

let churn_async_cmd =
  let churn_rate_arg =
    let doc = "Membership events per simulated second (default 100)." in
    Arg.(value & opt (some float) None & info [ "churn-rate" ] ~docv:"RATE" ~doc)
  in
  let lookup_rate_arg =
    let doc = "Lookup launches per simulated second (default 200)." in
    Arg.(value & opt (some float) None & info [ "lookup-rate" ] ~docv:"RATE" ~doc)
  in
  let events_arg =
    let doc = "Membership events in the burst (default 400 paper / 120 quick)." in
    Arg.(value & opt (some int) None & info [ "events" ] ~docv:"K" ~doc)
  in
  let n_arg =
    let doc = "Population size $(docv) instead of the scale default (4096 paper / 1024 quick)." in
    Arg.(value & opt (some int) None & info [ "n"; "nodes" ] ~docv:"N" ~doc)
  in
  let lookups_arg =
    let doc = "Lookups per phase (default 800 paper / 200 quick)." in
    Arg.(value & opt (some int) None & info [ "lookups" ] ~docv:"K" ~doc)
  in
  let run churn_rate lookup_rate events n lookups =
    let bad_rate = function Some r when r <= 0.0 -> true | Some _ | None -> false in
    if bad_rate churn_rate || bad_rate lookup_rate then
      fun _ _ _ _ _ -> `Error (false, "--churn-rate and --lookup-rate must be > 0")
    else if (match events with Some e when e < 0 -> true | _ -> false) then
      fun _ _ _ _ _ -> `Error (false, "--events must be >= 0")
    else if
      (match n with Some k when k < 16 -> true | _ -> false)
      || (match lookups with Some k when k < 1 -> true | _ -> false)
    then fun _ _ _ _ _ -> `Error (false, "--n must be >= 16 and --lookups >= 1")
    else
      run_experiment (fun ~scale ~seed ->
          Churn_async.run_with ?churn_rate ?lookup_rate ?events ?n ?lookups ~scale ~seed ())
  in
  let doc =
    "Churn x async: lookup success and p50/p99 wall-clock during live churn — joins, \
     leaves and in-flight RPC hops on one event queue, Chord vs Crescendo live membership."
  in
  Cmd.v (Cmd.info "churn_async" ~doc)
    Term.(
      ret
        (const run $ churn_rate_arg $ lookup_rate_arg $ events_arg $ n_arg $ lookups_arg
       $ quick_arg $ seed_arg $ trace_arg $ sample_arg $ metrics_arg))

let commands =
  [
    experiment_cmd "fig3" ~doc:"Figure 3: average #links/node vs network size." Fig3.run;
    experiment_cmd "fig4" ~doc:"Figure 4: PDF of #links/node at 32K nodes." Fig4.run;
    experiment_cmd "fig5" ~doc:"Figure 5: average routing hops vs network size." Fig5.run;
    fig6_cmd;
    experiment_cmd "fig7" ~doc:"Figure 7: latency vs query locality." Fig7.run;
    experiment_cmd "fig8" ~doc:"Figure 8: path overlap fraction vs domain level." Fig8.run;
    experiment_cmd "fig9" ~doc:"Figure 9: inter-domain links in a 1000-source multicast tree."
      Fig9.run;
    experiment_cmd "theorems" ~doc:"Empirical check of Theorems 1/2/4/5." Theorems.run;
    experiment_cmd "variants"
      ~doc:"Degree/hops parity of all flat vs Canonical DHT pairs (Chord, Symphony, \
            ND-Chord, Kademlia, CAN)."
      Variants.run;
    experiment_cmd "lookahead" ~doc:"Greedy vs 1-lookahead routing on Symphony/Cacophony."
      Lookahead_bench.run;
    experiment_cmd "balance" ~doc:"Partition balance: random vs bisection vs hierarchical."
      Balance_bench.run;
    experiment_cmd "maintenance" ~doc:"Join/leave message cost and probe success under churn."
      Maintenance_bench.run;
    experiment_cmd "caching" ~doc:"Hierarchical caching hit rate and latency." Caching_bench.run;
    experiment_cmd "isolation"
      ~doc:"Fault isolation: intra-domain delivery under outside failures." Isolation.run;
    experiment_cmd "hybrid" ~doc:"LAN-clique + Crescendo hybrid structure ablation."
      Hybrid_bench.run;
    experiment_cmd "prefixcan" ~doc:"Prefix-tree CAN vs XOR-bucket CAN parity."
      Prefix_can_bench.run;
    experiment_cmd "skipnet" ~doc:"SkipNet vs Crescendo: locality and convergence (sec. 6)."
      Skipnet_bench.run;
    experiment_cmd "latency"
      ~doc:"Latency-oracle setup cost: eager all-pairs table vs lazy memoized rows."
      Latency_bench.run;
    robustness_cmd;
    durability_cmd;
    churn_async_cmd;
  ]

let default =
  let doc = "reproduction of 'Canon in G Major: Designing DHTs with Hierarchical Structure'" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Regenerates the tables and figures of the ICDCS 2004 paper from a pure-OCaml \
         implementation of Canon (Crescendo, Cacophony, ND-Crescendo, Kandy, Can-Can), its \
         flat baselines, a transit-stub internet model, hierarchical storage and caching, \
         partition balancing, and a churn simulator.";
      `P "Use $(b,CANON_SCALE=quick) or $(b,--quick) for fast reduced-scale runs.";
      `P
        "Every subcommand accepts $(b,--trace FILE) (per-lookup JSONL spans), \
         $(b,--trace-sample K) (sampling), and $(b,--metrics) (print the telemetry \
         registry: counters, gauges, and latency histograms with p50/p95/p99).";
    ]
  in
  Cmd.group (Cmd.info "canon" ~version:"1.0.0" ~doc ~man) commands

let () = exit (Cmd.eval default)
