(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (S5) plus the extension experiments, and runs Bechamel
   micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig3 fig5    # selected experiments
     dune exec bench/main.exe -- --json BENCH.json   # machine-readable export
     CANON_SCALE=quick dune exec bench/main.exe   # reduced sizes

   Experiment ids: fig3 fig4 fig5 fig6 fig7 fig8 fig9 theorems variants
   lookahead balance maintenance caching isolation hybrid prefixcan
   skipnet robustness durability churn_async latency micro.

   Every run ends with a manifest (seed, scale, git revision, wall time
   per experiment) so pasted outputs are self-identifying; --json FILE
   writes the same manifest, every table, and the telemetry metrics
   registry as one JSON document — the perf-trajectory record compared
   across commits. *)

open Canon_experiments
module Table = Canon_stats.Table
module Json = Canon_telemetry.Json
module Report = Canon_telemetry.Report

let seed = 42

(* --- Bechamel micro-benchmarks ------------------------------------ *)

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  let open Canon_overlay in
  let open Canon_core in
  let module Rng = Canon_rng.Rng in
  let n = 4096 in
  let pop = Common.hierarchy_population ~seed ~levels:3 ~n in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let flat_pop = Common.hierarchy_population ~seed:(seed + 1) ~levels:1 ~n in
  let flat_ring =
    Ring.of_members ~ids:flat_pop.Population.ids ~members:(Array.init n Fun.id)
  in
  let rng = Rng.create 7 in
  let random_node () = Rng.int_below rng n in
  let tests =
    [
      Test.make ~name:"ring.successor_of_id"
        (Staged.stage (fun () ->
             ignore (Ring.successor_of_id flat_ring (Canon_idspace.Id.random rng))));
      Test.make ~name:"chord.links_of_one_node (n=4096)"
        (Staged.stage (fun () ->
             let node = random_node () in
             ignore (Chord.links_of_id flat_ring flat_pop.Population.ids.(node) ~self:node)));
      Test.make ~name:"crescendo.links_of_one_node (3 levels)"
        (Staged.stage (fun () -> ignore (Crescendo.links_of_node rings (random_node ()))));
      Test.make ~name:"router.greedy_clockwise (n=4096)"
        (Staged.stage (fun () ->
             let src = random_node () and dst = random_node () in
             ignore (Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst))));
      Test.make ~name:"router.greedy_xor (kademlia n=4096)"
        (let kademlia = Kademlia.build (Rng.create 9) flat_pop in
         Staged.stage (fun () ->
             let src = random_node () and dst = random_node () in
             ignore (Router.greedy_xor kademlia ~src ~key:(Overlay.id kademlia dst))));
    ]
  in
  let grouped = Test.make_grouped ~name:"canon" tests in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) results [] in
  let table =
    Table.create ~title:"Micro-benchmarks (Bechamel, ns/op)" ~columns:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some (est :: _) -> Table.add_row table [ name; Printf.sprintf "%.1f" est ]
      | Some [] | None -> Table.add_row table [ name; "n/a" ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  table

let experiments =
  [
    ("fig3", Fig3.run);
    ("fig4", Fig4.run);
    ("fig5", Fig5.run);
    ("fig6", Fig6.run);
    ("fig7", Fig7.run);
    ("fig8", Fig8.run);
    ("fig9", Fig9.run);
    ("theorems", Theorems.run);
    ("variants", Variants.run);
    ("lookahead", Lookahead_bench.run);
    ("balance", Balance_bench.run);
    ("maintenance", Maintenance_bench.run);
    ("caching", Caching_bench.run);
    ("isolation", Isolation.run);
    ("hybrid", Hybrid_bench.run);
    ("prefixcan", Prefix_can_bench.run);
    ("skipnet", Skipnet_bench.run);
    ("robustness", Robustness_bench.run);
    ("durability", Durability.run);
    ("churn_async", Churn_async.run);
    ("latency", Latency_bench.run);
    ("micro", fun ~scale:_ ~seed:_ -> micro_benchmarks ());
  ]

(* --- run manifest -------------------------------------------------- *)

let git_describe () =
  try
    let ic = Unix.open_process_in "git describe --always --dirty 2>/dev/null" in
    let line = try input_line ic with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let manifest_table ~scale ~git ~timings ~total =
  let t =
    Table.create
      ~title:
        (Printf.sprintf "Run manifest (seed %d, scale %s, git %s)" seed
           (match scale with `Paper -> "paper" | `Quick -> "quick")
           git)
      ~columns:[ "experiment"; "seconds" ]
  in
  List.iter
    (fun (name, secs) -> Table.add_row t [ name; Printf.sprintf "%.1f" secs ])
    timings;
  Table.add_row t [ "total"; Printf.sprintf "%.1f" total ];
  t

let manifest_json ~scale ~git ~timings ~total =
  Json.Obj
    [
      ("seed", Json.Int seed);
      ("scale", Json.String (match scale with `Paper -> "paper" | `Quick -> "quick"));
      ("git", Json.String git);
      ("total_seconds", Json.Float total);
      ( "experiments",
        Json.List
          (List.map
             (fun (name, secs) ->
               Json.Obj [ ("name", Json.String name); ("seconds", Json.Float secs) ])
             timings) );
    ]

let () =
  let scale = Common.scale_of_env () in
  let json_file = ref None in
  let requested = ref [] in
  let rec parse = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json_file := Some file;
        parse rest
    | "--json" :: [] ->
        prerr_endline "--json requires a file argument";
        exit 1
    | name :: rest ->
        requested := name :: !requested;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let requested =
    match List.rev !requested with [] -> List.map fst experiments | names -> names
  in
  List.iter
    (fun name ->
      if not (List.mem_assoc name experiments) then begin
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat " " (List.map fst experiments));
        exit 1
      end)
    requested;
  let git = git_describe () in
  Printf.printf "Canon benchmark harness (scale: %s, seed: %d, git: %s)\n\n%!"
    (match scale with `Paper -> "paper" | `Quick -> "quick")
    seed git;
  let t_start = Unix.gettimeofday () in
  let timings = ref [] and tables = ref [] in
  List.iter
    (fun name ->
      let build = List.assoc name experiments in
      let t0 = Unix.gettimeofday () in
      let table = build ~scale ~seed in
      let dt = Unix.gettimeofday () -. t0 in
      Printf.printf "[%s finished in %.1f s]\n\n%!" name dt;
      Table.print table;
      print_newline ();
      timings := (name, dt) :: !timings;
      tables := table :: !tables)
    requested;
  let total = Unix.gettimeofday () -. t_start in
  let timings = List.rev !timings and tables = List.rev !tables in
  Table.print (manifest_table ~scale ~git ~timings ~total);
  match !json_file with
  | None -> ()
  | Some file ->
      let doc =
        Json.Obj
          [
            ("manifest", manifest_json ~scale ~git ~timings ~total);
            ("tables", Json.List (List.map Report.table_json tables));
            ("metrics", Report.metrics_json ());
          ]
      in
      (match open_out file with
      | oc ->
          output_string oc (Json.to_string doc);
          output_char oc '\n';
          close_out oc;
          Printf.printf "\n[wrote %s]\n" file
      | exception Sys_error msg ->
          Printf.eprintf "cannot write %s: %s\n" file msg;
          exit 1)
