(* CDN-style caching over the transit-stub internet.

   A 4096-node Crescendo overlay runs on the paper's 2040-router
   transit-stub topology. Clients request a Zipf-popular catalogue with
   hierarchical locality of reference; answers are cached at the domain
   proxies (§4.2). The example reports hit rate, mean latency and
   inter-domain traffic with caching off vs on, plus the multicast-tree
   savings of path convergence (§5.4).

   Run with:  dune exec examples/cdn_caching.exe *)

open Canon_topology
open Canon_overlay
open Canon_core
open Canon_storage
open Canon_workload
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table
module Zipf = Canon_stats.Zipf
module Domain_tree = Canon_hierarchy.Domain_tree

let () =
  let rng = Rng.create 9090 in
  Printf.printf "Generating transit-stub internet (2040 routers) ...\n%!";
  let ts = Transit_stub.generate (Rng.split rng) Transit_stub.default_params in
  let latency = Latency.create ts in
  let tree = Transit_stub.hierarchy ts in
  let n = 4096 in
  let pop =
    Population.create_with_attach (Rng.split rng) ~tree
      ~leaf_to_attach:(fun leaf -> Transit_stub.stub_router_of_leaf ts leaf)
      ~n
  in
  let attach = Option.get pop.Population.attach in
  let node_latency a b = Latency.node_latency latency attach.(a) attach.(b) in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  Printf.printf "Overlay: %d nodes, mean degree %.2f\n%!" n (Overlay.mean_degree overlay);

  (* Publish a 300-object catalogue globally. *)
  let root = Domain_tree.root tree in
  let store = Store.create rings in
  let catalogue = 300 in
  let ks = Workload.keyspace (Rng.split rng) ~keys:catalogue in
  for i = 0 to catalogue - 1 do
    Store.insert store ~publisher:(Rng.int_below rng n) ~key:(Workload.key ks i)
      ~value:(Printf.sprintf "object-%03d" i) ~storage_domain:root ~access_domain:root
  done;

  (* Client workload: Zipf popularity + hierarchical locality. *)
  let sampler = Zipf.sampler ~n:catalogue ~alpha:0.9 in
  let queries =
    Workload.local_queries (Rng.split rng) pop ks ~sampler ~locality:0.7 ~count:5000
  in
  let run capacity =
    let cache = Cache.create rings ~capacity in
    let lat = ref 0.0 and hits = ref 0 and answered = ref 0 and hops = ref 0 in
    List.iter
      (fun q ->
        match Cache.query cache store overlay ~querier:q.Workload.querier ~key:q.Workload.key with
        | None -> ()
        | Some r ->
            incr answered;
            if r.Cache.served_from_cache then incr hits;
            hops := !hops + Route.hops r.Cache.path;
            lat := !lat +. Route.latency r.Cache.path ~node_latency)
      queries;
    ( !lat /. Float.of_int (max 1 !answered),
      Float.of_int !hits /. Float.of_int (max 1 !answered),
      Float.of_int !hops /. Float.of_int (max 1 !answered) )
  in
  let lat_off, _, hops_off = run 0 in
  let lat_on, hit_rate, hops_on = run 128 in
  let table =
    Table.create ~title:"CDN workload: caching off vs on (5000 queries, locality 0.7)"
      ~columns:[ "metric"; "off"; "on" ]
  in
  Table.add_row table
    [ "mean latency (ms)"; Printf.sprintf "%.1f" lat_off; Printf.sprintf "%.1f" lat_on ];
  Table.add_row table
    [ "mean hops"; Printf.sprintf "%.2f" hops_off; Printf.sprintf "%.2f" hops_on ];
  Table.add_row table [ "cache hit rate"; "0.00"; Printf.sprintf "%.2f" hit_rate ];
  Table.print table;

  (* Multicast: push one object to 800 subscribers along reversed query
     paths; count expensive inter-domain edges. *)
  let dst = Rng.int_below rng n in
  let routes =
    List.init 800 (fun _ ->
        Router.greedy_clockwise overlay ~src:(Rng.int_below rng n) ~key:(Overlay.id overlay dst))
  in
  let mt = Multicast.of_routes routes in
  Printf.printf "\nMulticast tree to 800 subscribers: %d edges touching %d nodes\n"
    (Multicast.num_edges mt) (Multicast.num_nodes mt);
  List.iter
    (fun level ->
      let crossings =
        Multicast.inter_domain_edges mt ~domain_of_node:(fun node ->
            Population.domain_of_node_at_depth pop node level)
      in
      Printf.printf "  inter-domain edges at hierarchy level %d: %d\n" level crossings)
    [ 1; 2; 3 ];
  Printf.printf "  total tree transmission cost: %.0f ms of link time\n"
    (Multicast.total_latency mt ~node_latency);

  (* The whole example ran against the lazy latency oracle: only the
     source rows the workload actually touched were ever Dijkstra'd
     (the eager all-pairs table would have paid for all 2040). *)
  let st = Latency.stats latency in
  Printf.printf
    "\nLatency oracle: %d/%d router rows computed on demand (%d hits, %d misses)\n"
    st.Latency.rows_computed (Transit_stub.num_routers ts) st.Latency.hits
    st.Latency.misses
