type t = {
  title : string;
  columns : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title ~columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count does not match columns";
  t.rows <- cells :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.3f") xs)

let title t = t.title

let columns t = t.columns

let rows t = List.rev t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
    all;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let pad i cell =
    let w = widths.(i) in
    let missing = w - String.length cell in
    if i = 0 then cell ^ String.make missing ' ' else String.make missing ' ' ^ cell
  in
  let emit row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf (pad i cell))
      row;
    Buffer.add_char buf '\n'
  in
  emit t.columns;
  let rule = List.init ncols (fun i -> String.make widths.(i) '-') in
  emit rule;
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)
