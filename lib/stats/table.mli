(** Plain-text table rendering for experiment output.

    Every figure/table in the benchmark harness prints through this
    module so the output has one consistent, diff-friendly format. *)

type t

val create : title:string -> columns:string list -> t
(** A table with a title row and the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row; must have as many cells as there are columns. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] renders [label] followed by each float
    with 3 decimal places. [1 + length xs] must equal the column count. *)

val title : t -> string
(** The title as given to {!create} (used by the JSON export). *)

val columns : t -> string list
(** The header row. *)

val rows : t -> string list list
(** Data rows in insertion order (used by integration tests to assert
    the qualitative shape of experiment output). *)

val render : t -> string
(** The table as an aligned ASCII string (ends with a newline). *)

val print : t -> unit
(** [render] to stdout. *)
