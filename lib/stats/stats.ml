type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let require_non_empty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  require_non_empty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. Float.of_int (Array.length xs)

let mean_int xs = mean (Array.map Float.of_int xs)

let variance xs =
  require_non_empty "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  acc /. Float.of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

(* The one nearest-rank (ceil) index rule, shared by [percentile] and
   [summarize] so their readouts can never disagree. *)
let ceil_rank_index ~n p =
  let rank = int_of_float (ceil (p /. 100.0 *. Float.of_int n)) in
  if rank <= 0 then 0 else min (n - 1) (rank - 1)

let percentile xs p =
  require_non_empty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  sorted.(ceil_rank_index ~n:(Array.length sorted) p)

let summarize xs =
  require_non_empty "Stats.summarize" xs;
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let pick p = sorted.(ceil_rank_index ~n p) in
  {
    count = n;
    mean = mean xs;
    stddev = stddev xs;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = pick 50.0;
    p90 = pick 90.0;
    p99 = pick 99.0;
  }

let summarize_int xs = summarize (Array.map Float.of_int xs)

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
