(** A per-lookup trace record: one span per routed message.

    A span captures the full life of one lookup — source, key, outcome,
    and one event per node visited. Event [0] is the source (its link
    level is [-1]: no inbound link); event [i > 0] records the node
    reached by the [i]-th hop, the hierarchy level of the link used to
    reach it, and the cumulative physical latency from the source.

    Invariants (asserted by the test suite):
    - [hops t = Array.length t.events - 1];
    - cumulative latency is non-decreasing along the events;
    - [path t] equals the corresponding {!Canon_overlay.Route.t} node
      sequence for spans recorded by the router hooks.

    The {e level} of a link (u, v) is the depth of the lowest common
    ancestor domain of the two endpoints: 0 is a top-level (root-ring)
    link, deeper is more local. Engines without a hierarchy report
    level 0 for every hop. *)

type event = {
  node : int;
  level : int;  (** hierarchy depth of the link used to arrive; -1 at the source *)
  cum_latency : float;  (** physical ms from the source; 0 without an oracle *)
}

type outcome =
  | Arrived  (** routing terminated normally *)
  | Stuck  (** hop budget exceeded ({!Canon_core.Router.Stuck}) *)
  | Stranded  (** failure-avoiding routing found no live next hop *)

type t = {
  id : int;  (** sequence number within the emitting {!Trace} *)
  kind : string;  (** engine or operation label, e.g. ["greedy_clockwise"] *)
  src : int;
  key : int;  (** the 32-bit target identifier *)
  outcome : outcome;
  events : event array;
}

val make :
  id:int ->
  kind:string ->
  key:int ->
  outcome:outcome ->
  nodes:int array ->
  level:(int -> int -> int) ->
  ?latency:(int -> int -> float) ->
  unit ->
  t
(** Builds the event list from a visited-node sequence: [level u v]
    gives the link level of each traversed edge, [latency u v] (when
    supplied) its physical cost. [nodes] must be non-empty. *)

val hops : t -> int

val path : t -> int array
(** The visited nodes in order (copies; spans are immutable). *)

val total_latency : t -> float
(** Cumulative latency at the last event; 0 for a single-node span. *)

val outcome_to_string : outcome -> string

val to_json : t -> Json.t

val to_jsonl : t -> string
(** One compact JSON object, no newline — a JSONL line body. *)

val of_json : Json.t -> (t, string) result
(** Inverse of {!to_json}; [Error] names the first malformed field. *)
