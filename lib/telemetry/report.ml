module Table = Canon_stats.Table

let f3 = Printf.sprintf "%.3f"

let table () =
  let snap = Metrics.snapshot () in
  let t =
    Table.create ~title:"Telemetry metrics"
      ~columns:[ "metric"; "kind"; "count"; "value"; "p50"; "p95"; "p99" ]
  in
  List.iter
    (fun (name, v) ->
      Table.add_row t [ name; "counter"; string_of_int v; "-"; "-"; "-"; "-" ])
    snap.Metrics.counters;
  List.iter
    (fun (name, v) -> Table.add_row t [ name; "gauge"; "-"; f3 v; "-"; "-"; "-" ])
    snap.Metrics.gauges;
  List.iter
    (fun (name, h) ->
      let open Metrics in
      let mean = if h.h_count = 0 then 0.0 else h.h_sum /. Float.of_int h.h_count in
      Table.add_row t
        [
          name; "histogram"; string_of_int h.h_count; f3 mean; f3 h.p50; f3 h.p95; f3 h.p99;
        ])
    snap.Metrics.histograms;
  t

let histogram_json (h : Metrics.histogram_snapshot) =
  let buckets =
    List.init
      (Array.length h.bucket_counts)
      (fun i ->
        let le =
          if i < Array.length h.bucket_bounds then Json.Float h.bucket_bounds.(i)
          else Json.Null
        in
        Json.Obj [ ("le", le); ("count", Json.Int h.bucket_counts.(i)) ])
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", Json.Float h.h_min);
      ("max", Json.Float h.h_max);
      ("p50", Json.Float h.p50);
      ("p95", Json.Float h.p95);
      ("p99", Json.Float h.p99);
      ("buckets", Json.List buckets);
    ]

let metrics_json () =
  let snap = Metrics.snapshot () in
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) snap.Metrics.counters) );
      ( "gauges",
        Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) snap.Metrics.gauges) );
      ( "histograms",
        Json.Obj
          (List.map (fun (name, h) -> (name, histogram_json h)) snap.Metrics.histograms) );
    ]

let table_json t =
  Json.Obj
    [
      ("title", Json.String (Table.title t));
      ("columns", Json.List (List.map (fun c -> Json.String c) (Table.columns t)));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun cell -> Json.String cell) row))
             (Table.rows t)) );
    ]
