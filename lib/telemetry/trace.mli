(** Bounded in-memory span collector with sampling and a pluggable
    sink.

    A trace sits between the instrumented code and the outside world:
    the router hooks call {!record} with the raw material of a span
    (visited nodes, per-edge level and latency functions); the trace
    applies sampling, assigns sequence numbers, keeps the most recent
    [capacity] spans in memory for in-process inspection, and streams
    every sampled span to its {!Sink}.

    The {e ambient} trace is an optional process-wide current trace.
    Experiment code that is many layers away from the CLI (e.g. the
    shared lookup helpers in [canon_experiments.Common]) reads it once
    per measurement loop and passes it down as the router's [?trace]
    argument; when unset — the default, and the benchmark configuration
    — instrumented code paths take their untraced branch and allocate
    nothing. *)

type t

val create :
  ?capacity:int ->
  ?sample_every:int ->
  ?latency:(int -> int -> float) ->
  ?sink:Sink.t ->
  unit ->
  t
(** [capacity] (default 4096) bounds in-memory retention — older spans
    are dropped, the sink still sees all sampled spans. [sample_every]
    (default 1 = every lookup) keeps the 1st, (k+1)-th, (2k+1)-th …
    recorded span. [latency] is the default per-edge physical latency
    oracle for spans recorded without an explicit one. Raises
    [Invalid_argument] when [capacity < 1] or [sample_every < 1]. *)

val record :
  t ->
  kind:string ->
  key:int ->
  outcome:Span.outcome ->
  nodes:int array ->
  level:(int -> int -> int) ->
  ?latency:(int -> int -> float) ->
  unit ->
  unit
(** Counts one lookup; when sampling selects it, builds the span and
    both retains it and writes it to the sink. [?latency] overrides the
    trace-level oracle for this span. *)

val set_latency : t -> (int -> int -> float) option -> unit
(** Installs (or clears) the default latency oracle after creation.
    Experiments that build their latency model long after the CLI
    created the trace use this to upgrade subsequent spans from
    hop-only to physical-latency records. *)

val seen : t -> int
(** Total lookups offered via {!record}. *)

val emitted : t -> int
(** Spans that passed sampling (= sink writes = span ids assigned). *)

val spans : t -> Span.t list
(** Retained spans, oldest first — at most [capacity], the most recent
    ones. *)

val sink : t -> Sink.t

val flush : t -> unit
(** Closes the sink (flushing a file sink to disk). *)

val set_ambient : t option -> unit

val ambient : unit -> t option
