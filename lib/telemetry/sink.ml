type target =
  | Null
  | Memory of string list ref  (* reversed *)
  | File of out_channel

type t = { target : target; mutable written : int; mutable closed : bool }

let null = { target = Null; written = 0; closed = false }

let memory () = { target = Memory (ref []); written = 0; closed = false }

let jsonl_file path = { target = File (open_out path); written = 0; closed = false }

let write t line =
  if not t.closed then begin
    (match t.target with
    | Null -> ()
    | Memory lines -> lines := line :: !lines
    | File oc ->
        output_string oc line;
        output_char oc '\n');
    t.written <- t.written + 1
  end

let count t = t.written

let lines t = match t.target with Memory lines -> List.rev !lines | Null | File _ -> []

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.target with
    | File oc -> close_out oc
    | Null | Memory _ -> ()
  end
