type counter = { mutable c : int }

type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  buckets : int array;  (* length bounds + 1; last = overflow *)
  mutable n : int;
  mutable s : float;
  mutable lo : float;
  mutable hi : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register name make select =
  match Hashtbl.find_opt registry name with
  | Some existing -> (
      match select existing with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Metrics: %S is already a %s" name (kind_name existing)))
  | None ->
      let m = make () in
      Hashtbl.replace registry name m;
      (match select m with Some x -> x | None -> assert false)

let counter name =
  register name
    (fun () -> Counter { c = 0 })
    (function Counter c -> Some c | _ -> None)

let incr c = c.c <- c.c + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: negative increment";
  c.c <- c.c + n

let value c = c.c

let gauge name =
  register name
    (fun () -> Gauge { g = 0.0 })
    (function Gauge g -> Some g | _ -> None)

let set g x = g.g <- x

let gauge_value g = g.g

let default_buckets =
  [| 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0; 2500.0; 5000.0; 10000.0 |]

let check_buckets bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done

let histogram ?(buckets = default_buckets) name =
  check_buckets buckets;
  register name
    (fun () ->
      Histogram
        {
          bounds = Array.copy buckets;
          buckets = Array.make (Array.length buckets + 1) 0;
          n = 0;
          s = 0.0;
          lo = 0.0;
          hi = 0.0;
        })
    (function Histogram h -> Some h | _ -> None)

(* Index of the first bucket whose upper bound is >= v; the overflow
   bucket when v exceeds every bound. *)
let bucket_index h v =
  let nb = Array.length h.bounds in
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if h.bounds.(mid) >= v then search lo mid else search (mid + 1) hi
    end
  in
  search 0 nb

let observe h v =
  let i = bucket_index h v in
  h.buckets.(i) <- h.buckets.(i) + 1;
  if h.n = 0 then begin
    h.lo <- v;
    h.hi <- v
  end
  else begin
    if v < h.lo then h.lo <- v;
    if v > h.hi then h.hi <- v
  end;
  h.n <- h.n + 1;
  h.s <- h.s +. v

let count h = h.n

let sum h = h.s

let percentile h q =
  if q < 0.0 || q > 1.0 then invalid_arg "Metrics.percentile: q outside [0,1]";
  if h.n = 0 then 0.0
  else if q = 0.0 then h.lo
  else if q = 1.0 then h.hi
  else begin
    (* Rank of the q-th observation (1-based, nearest-rank). *)
    let rank = max 1 (int_of_float (ceil (q *. Float.of_int h.n))) in
    let nb = Array.length h.bounds in
    let rec find i cum =
      if i > nb then (h.hi, h.hi, cum - h.buckets.(nb), cum)
      else begin
        let cum' = cum + h.buckets.(i) in
        if cum' >= rank then begin
          (* Interpolation range of this bucket, clamped to observed
             extremes at the two open ends. *)
          let lo = if i = 0 then h.lo else h.bounds.(i - 1) in
          let hi = if i = nb then h.hi else h.bounds.(i) in
          (lo, hi, cum, cum')
        end
        else find (i + 1) cum'
      end
    in
    let lo, hi, below, through = find 0 0 in
    let in_bucket = through - below in
    let frac =
      if in_bucket = 0 then 1.0
      else Float.of_int (rank - below) /. Float.of_int in_bucket
    in
    let est = lo +. (frac *. (hi -. lo)) in
    Float.min h.hi (Float.max h.lo est)
  end

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  p50 : float;
  p95 : float;
  p99 : float;
  bucket_bounds : float array;
  bucket_counts : int array;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name m ->
      match m with
      | Counter c -> counters := (name, c.c) :: !counters
      | Gauge g -> gauges := (name, g.g) :: !gauges
      | Histogram h ->
          histograms :=
            ( name,
              {
                h_count = h.n;
                h_sum = h.s;
                h_min = (if h.n = 0 then 0.0 else h.lo);
                h_max = (if h.n = 0 then 0.0 else h.hi);
                p50 = percentile h 0.50;
                p95 = percentile h 0.95;
                p99 = percentile h 0.99;
                bucket_bounds = Array.copy h.bounds;
                bucket_counts = Array.copy h.buckets;
              } )
            :: !histograms)
    registry;
  let by_name (a, _) (b, _) = String.compare a b in
  {
    counters = List.sort by_name !counters;
    gauges = List.sort by_name !gauges;
    histograms = List.sort by_name !histograms;
  }

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.c <- 0
      | Gauge g -> g.g <- 0.0
      | Histogram h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.n <- 0;
          h.s <- 0.0;
          h.lo <- 0.0;
          h.hi <- 0.0)
    registry
