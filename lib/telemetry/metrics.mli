(** Process-wide metrics registry: named counters, gauges, and
    fixed-bucket histograms with percentile readout.

    Mirrors the shape of a Prometheus-style client: metrics are
    registered once by name (registration is idempotent — the same name
    returns the same metric) and mutated from anywhere; {!snapshot}
    reads the whole registry for rendering (see {!Report}).

    The registry is global because the quantities it tracks are global
    to the process: an experiment run is one process, and threading a
    registry through every construction call would put telemetry
    arguments on every hot path. Handles returned by {!counter} /
    {!gauge} / {!histogram} should be bound once (at module
    initialisation or loop set-up), after which mutation is a couple of
    machine instructions with no hashing or allocation. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Get-or-create a counter. Raises [Invalid_argument] when the name is
    already registered as a different metric kind. *)

val incr : counter -> unit

val add : counter -> int -> unit
(** [add c n] with [n >= 0]; raises [Invalid_argument] on negative. *)

val value : counter -> int

val gauge : string -> gauge
(** Get-or-create a gauge (a freely settable float, e.g. a population
    size or a configuration knob echoed into the export). *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val default_buckets : float array
(** Exponential latency-style buckets:
    0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000.
    Observations above the last bound fall into an implicit overflow
    bucket. *)

val histogram : ?buckets:float array -> string -> histogram
(** Get-or-create a fixed-bucket histogram. [buckets] are upper bounds,
    strictly increasing; ignored when the name already exists. Raises
    [Invalid_argument] on an empty or non-increasing bucket list. *)

val observe : histogram -> float -> unit

val count : histogram -> int

val sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h q] with [q] in \[0,1\]: the estimated value below
    which a fraction [q] of observations fall, by linear interpolation
    inside the bucket containing the rank. Estimates are clamped to the
    observed min/max, so exact for [q = 0] and [q = 1]; 0 when empty.
    The error is bounded by the width of one bucket. *)

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0 when empty *)
  h_max : float;  (** 0 when empty *)
  p50 : float;
  p95 : float;
  p99 : float;
  bucket_bounds : float array;
  bucket_counts : int array;  (** one longer than bounds: overflow last *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;  (** sorted by name *)
  histograms : (string * histogram_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

val reset : unit -> unit
(** Zero every registered metric (counts, sums, gauge values); names and
    bucket layouts stay registered. *)
