type t = {
  capacity : int;
  sample_every : int;
  mutable latency : (int -> int -> float) option;
  sink : Sink.t;
  retained : Span.t Queue.t;
  mutable seen : int;
  mutable emitted : int;
}

let create ?(capacity = 4096) ?(sample_every = 1) ?latency ?(sink = Sink.null) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity < 1";
  if sample_every < 1 then invalid_arg "Trace.create: sample_every < 1";
  { capacity; sample_every; latency; sink; retained = Queue.create (); seen = 0; emitted = 0 }

let record t ~kind ~key ~outcome ~nodes ~level ?latency () =
  let sampled = t.seen mod t.sample_every = 0 in
  t.seen <- t.seen + 1;
  if sampled then begin
    let latency = match latency with Some _ as l -> l | None -> t.latency in
    let span = Span.make ~id:t.emitted ~kind ~key ~outcome ~nodes ~level ?latency () in
    t.emitted <- t.emitted + 1;
    Queue.push span t.retained;
    if Queue.length t.retained > t.capacity then ignore (Queue.pop t.retained);
    Sink.write t.sink (Span.to_jsonl span)
  end

let set_latency t oracle = t.latency <- oracle

let seen t = t.seen

let emitted t = t.emitted

let spans t = List.of_seq (Queue.to_seq t.retained)

let sink t = t.sink

let flush t = Sink.close t.sink

let current : t option ref = ref None

let set_ambient tr = current := tr

let ambient () = !current
