(** Rendering the metrics registry — as a {!Canon_stats.Table} for the
    CLI's [--metrics] flag, and as JSON for the benchmark harness's
    machine-readable [BENCH.json] export. *)

val table : unit -> Canon_stats.Table.t
(** One row per registered metric, sorted by name (counters, then
    gauges, then histograms). Histogram rows carry count, mean, and
    p50/p95/p99; inapplicable cells are ["-"]. *)

val metrics_json : unit -> Json.t
(** The full registry:
    [{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    sum, min, max, p50, p95, p99, buckets: [{le, count}, …]}, …}}].
    The last bucket has ["le": null] (overflow). *)

val table_json : Canon_stats.Table.t -> Json.t
(** [{"title": …, "columns": […], "rows": [[…], …]}] — every cell as
    its rendered string, exactly as printed. *)
