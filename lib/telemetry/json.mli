(** Minimal JSON values, printing, and parsing.

    The repository deliberately has no third-party JSON dependency; this
    module implements exactly the subset the telemetry layer needs:
    construction and compact one-line printing (for JSONL sinks and
    [BENCH.json]) and a strict recursive-descent parser (for round-trip
    tests and external tooling written against the trace format). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering, no newlines — one value is one JSONL line.
    Floats print via ["%.17g"] so parsing gives back the same float;
    non-finite floats render as [null] (JSON has no representation). *)

val of_string : string -> (t, string) result
(** Strict parse of a complete JSON value (surrounding whitespace
    allowed). Numbers without ['.'], ['e'] or ['E'] parse as [Int]. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on missing field or non-object. *)

val to_int : t -> int option
(** [Int n] gives [n]; other values give [None]. *)

val to_float : t -> float option
(** [Float x] or [Int n] (widened); other values give [None]. *)

val to_list : t -> t list option

val to_str : t -> string option
