(** Pluggable span output.

    A sink consumes rendered JSONL lines. Three implementations cover
    every current consumer: {!null} (tracing structurally enabled but
    output discarded), {!memory} (tests and in-process inspection), and
    {!jsonl_file} (the [--trace FILE] export consumed by external
    tooling). *)

type t

val null : t
(** Discards every line (still counts them). *)

val memory : unit -> t
(** Accumulates lines in memory, unbounded; read back with {!lines}. *)

val jsonl_file : string -> t
(** Opens (truncates) [path] and appends one line per {!write}. Raises
    [Sys_error] if the file cannot be created. *)

val write : t -> string -> unit
(** [write t line] emits one JSONL line ([line] must not contain a
    newline; the sink adds it). No-op on a closed sink. *)

val count : t -> int
(** Lines written so far. *)

val lines : t -> string list
(** Lines retained by a {!memory} sink, oldest first; [[]] for other
    sinks. *)

val close : t -> unit
(** Flushes and closes a file sink; idempotent, no-op for others. *)
