type event = { node : int; level : int; cum_latency : float }

type outcome =
  | Arrived
  | Stuck
  | Stranded

type t = {
  id : int;
  kind : string;
  src : int;
  key : int;
  outcome : outcome;
  events : event array;
}

let make ~id ~kind ~key ~outcome ~nodes ~level ?latency () =
  if Array.length nodes = 0 then invalid_arg "Span.make: empty node sequence";
  let cum = ref 0.0 in
  let events =
    Array.mapi
      (fun i node ->
        if i = 0 then { node; level = -1; cum_latency = 0.0 }
        else begin
          let u = nodes.(i - 1) in
          (match latency with
          | None -> ()
          | Some oracle -> cum := !cum +. oracle u node);
          { node; level = level u node; cum_latency = !cum }
        end)
      nodes
  in
  { id; kind; src = nodes.(0); key; outcome; events }

let hops t = Array.length t.events - 1

let path t = Array.map (fun e -> e.node) t.events

let total_latency t = t.events.(Array.length t.events - 1).cum_latency

let outcome_to_string = function
  | Arrived -> "arrived"
  | Stuck -> "stuck"
  | Stranded -> "stranded"

let outcome_of_string = function
  | "arrived" -> Some Arrived
  | "stuck" -> Some Stuck
  | "stranded" -> Some Stranded
  | _ -> None

let to_json t =
  Json.Obj
    [
      ("id", Json.Int t.id);
      ("kind", Json.String t.kind);
      ("src", Json.Int t.src);
      ("key", Json.Int t.key);
      ("outcome", Json.String (outcome_to_string t.outcome));
      ("hops", Json.Int (hops t));
      ( "events",
        Json.List
          (Array.to_list
             (Array.map
                (fun e ->
                  Json.Obj
                    [
                      ("node", Json.Int e.node);
                      ("level", Json.Int e.level);
                      ("lat", Json.Float e.cum_latency);
                    ])
                t.events)) );
    ]

let to_jsonl t = Json.to_string (to_json t)

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "span: missing or malformed %S" name)

let event_of_json json =
  let* node = field "node" Json.to_int json in
  let* level = field "level" Json.to_int json in
  let* cum_latency = field "lat" Json.to_float json in
  Ok { node; level; cum_latency }

let of_json json =
  let* id = field "id" Json.to_int json in
  let* kind = field "kind" Json.to_str json in
  let* src = field "src" Json.to_int json in
  let* key = field "key" Json.to_int json in
  let* outcome_s = field "outcome" Json.to_str json in
  let* outcome =
    match outcome_of_string outcome_s with
    | Some o -> Ok o
    | None -> Error (Printf.sprintf "span: unknown outcome %S" outcome_s)
  in
  let* events = field "events" Json.to_list json in
  let* events =
    List.fold_left
      (fun acc e ->
        let* acc = acc in
        let* ev = event_of_json e in
        Ok (ev :: acc))
      (Ok []) events
  in
  let events = Array.of_list (List.rev events) in
  if Array.length events = 0 then Error "span: empty event list"
  else Ok { id; kind; src; key; outcome; events }
