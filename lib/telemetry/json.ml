type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------- *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec print_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (Printf.sprintf "%.17g" x)
      else Buffer.add_string buf "null"
  | String s -> escape_into buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          print_into buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_into buf k;
          Buffer.add_char buf ':';
          print_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print_into buf v;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------ *)

exception Parse of string

type cursor = { s : string; mutable pos : int }

let fail c msg = raise (Parse (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "truncated \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* Telemetry strings are ASCII; encode BMP scalars as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c; go ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some x -> Float x
    | None -> fail c "bad number"
  else
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> fail c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing characters" else Ok v
  | exception Parse msg -> Error msg

(* --- accessors ---------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float x -> Some x
  | Int n -> Some (Float.of_int n)
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None

let to_str = function String s -> Some s | _ -> None
