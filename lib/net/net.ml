open Canon_idspace
open Canon_overlay
open Canon_core
open Canon_sim
module Rng = Canon_rng.Rng
module Metrics = Canon_telemetry.Metrics
module Trace = Canon_telemetry.Trace
module Span = Canon_telemetry.Span

type suspicion = [ `Per_lookup | `Shared ]

type t = {
  overlay : Overlay.t;
  node_latency : int -> int -> float;
  plan : Fault_plan.t;
  policy : Rpc.policy;
  rng : Rng.t;
  rings : Rings.t option;
  leaf_width : int;
  suspicion : suspicion;
  suspected : bool array;
  leaf_cache : int array array option array;
}

(* Process-wide telemetry, bound once (see Metrics). *)
let m_lookups = Metrics.counter "net.lookups"
let m_messages = Metrics.counter "net.messages"
let m_retries = Metrics.counter "net.retries"
let m_timeouts = Metrics.counter "net.timeouts"
let m_losses = Metrics.counter "net.losses"
let m_reanchors = Metrics.counter "net.reanchors"
let m_delivered = Metrics.counter "net.delivered"
let m_rerouted = Metrics.counter "net.rerouted"
let m_failed = Metrics.counter "net.failed"
let m_deadline = Metrics.counter "net.deadline_exceeded"
let h_wall = Metrics.histogram "net.delivered_latency_ms"

let h_messages =
  Metrics.histogram
    ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0 |]
    "net.messages_per_lookup"

let create ?(policy = Rpc.default) ?plan ?rings ?(leaf_width = 4)
    ?(suspicion = `Per_lookup) ~rng ~node_latency overlay =
  Rpc.validate policy;
  if leaf_width < 1 then invalid_arg "Net.create: leaf_width must be >= 1";
  let n = Overlay.size overlay in
  let plan = match plan with Some p -> p | None -> Fault_plan.none ~n in
  if Fault_plan.size plan <> n then invalid_arg "Net.create: plan/overlay size mismatch";
  (match rings with
  | Some r when Rings.population r != Overlay.population overlay ->
      invalid_arg "Net.create: rings built over a different population"
  | Some _ | None -> ());
  {
    overlay;
    node_latency;
    plan;
    policy;
    rng;
    rings;
    leaf_width;
    suspicion;
    suspected = Array.make n false;
    leaf_cache = Array.make n None;
  }

let overlay t = t.overlay

let plan t = t.plan

let suspected_nodes t =
  let out = ref [] in
  for v = Array.length t.suspected - 1 downto 0 do
    if t.suspected.(v) then out := v :: !out
  done;
  Array.of_list !out

let clear_suspicions t = Array.fill t.suspected 0 (Array.length t.suspected) false

let leaf_sets t u =
  match t.rings with
  | None -> [||]
  | Some rings -> (
      match t.leaf_cache.(u) with
      | Some sets -> sets
      | None ->
          let sets = Leaf_sets.successors rings ~node:u ~width:t.leaf_width in
          t.leaf_cache.(u) <- Some sets;
          sets)

let reanchor_candidate t ~at ~key =
  let id_at = Overlay.id t.overlay at in
  let du = Id.distance id_at key in
  if du = 0 then None
  else begin
    let best = ref (-1) and best_d = ref max_int in
    Array.iter
      (Array.iter (fun w ->
           if not t.suspected.(w) then begin
             let dw = Id.distance id_at (Overlay.id t.overlay w) in
             if dw > 0 && dw <= du && dw < !best_d then begin
               best := w;
               best_d := dw
             end
           end))
      (leaf_sets t at);
    if !best < 0 then None else Some !best
  end

(* --- one lookup ---------------------------------------------------- *)

type msg = { from_ : int; to_ : int; attempt : int; mutable got_through : bool }

type event = Send of msg | Deliver of msg | Timeout of msg

type lookup_state = {
  mutable rev_path : int list;
  mutable hops : int;
  mutable messages : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable losses : int;
  mutable reanchors : int;
  mutable deviated : bool;
  mutable newly_suspected : int list;
  mutable finished : (Async_route.status * Async_route.failure option) option;
}

let lookup t ~src ~key =
  if Fault_plan.is_crashed t.plan src then invalid_arg "Net.lookup: crashed source";
  Metrics.incr m_lookups;
  let q = Event_queue.create () in
  let clock = Clock.create () in
  let st =
    {
      rev_path = [ src ];
      hops = 0;
      messages = 0;
      retries = 0;
      timeouts = 0;
      losses = 0;
      reanchors = 0;
      deviated = false;
      newly_suspected = [];
      finished = None;
    }
  in
  let suspect v = t.suspected.(v) in
  let max_hops = Overlay.size t.overlay + 1 in
  let finish ?failure status = st.finished <- Some (status, failure) in
  let transmit ~now m =
    st.messages <- st.messages + 1;
    Metrics.incr m_messages;
    let lost = Fault_plan.draw_lost t.plan t.rng in
    if lost then begin
      st.losses <- st.losses + 1;
      Metrics.incr m_losses
    end;
    let lat =
      t.node_latency m.from_ m.to_ *. Fault_plan.edge_multiplier t.plan m.from_ m.to_
    in
    (* A message lost, aimed at a crashed node, or slower than the
       timeout never completes its hop; the sender finds out at the
       timeout. Deliver is pushed before Timeout so a latency exactly at
       the timeout still wins the FIFO tie. *)
    if
      (not lost)
      && (not (Fault_plan.is_crashed t.plan m.to_))
      && lat <= t.policy.Rpc.timeout_ms
    then Event_queue.push q ~time:(now +. lat) (Deliver m);
    Event_queue.push q ~time:(now +. t.policy.Rpc.timeout_ms) (Timeout m)
  in
  let fault_free_next u =
    match Router.step_clockwise_avoiding t.overlay ~dead:(fun _ -> false) ~at:u ~key with
    | Router.Forward w -> Some w
    | Router.Arrived | Router.Blocked -> None
  in
  let forward ~now u v =
    if fault_free_next u <> Some v then st.deviated <- true;
    transmit ~now { from_ = u; to_ = v; attempt = 0; got_through = false }
  in
  (* What the node holding the message does next, given its current
     knowledge of suspects. *)
  let step_at ~now u =
    match Router.step_clockwise_avoiding t.overlay ~dead:suspect ~at:u ~key with
    | Router.Forward v -> forward ~now u v
    | Router.Arrived -> finish (if st.deviated then Rerouted else Delivered)
    | Router.Blocked -> (
        match reanchor_candidate t ~at:u ~key with
        | Some v ->
            st.reanchors <- st.reanchors + 1;
            Metrics.incr m_reanchors;
            st.deviated <- true;
            forward ~now u v
        | None -> finish Failed ~failure:Async_route.No_candidate)
  in
  let handle ~now = function
    | _ when st.finished <> None -> ()
    | Send m -> transmit ~now m
    | Deliver m ->
        m.got_through <- true;
        st.rev_path <- m.to_ :: st.rev_path;
        st.hops <- st.hops + 1;
        if st.hops > max_hops then finish Failed ~failure:Async_route.Hop_budget
        else step_at ~now m.to_
    | Timeout m ->
        if not m.got_through then begin
          st.timeouts <- st.timeouts + 1;
          Metrics.incr m_timeouts;
          if m.attempt < t.policy.Rpc.max_retries then begin
            st.retries <- st.retries + 1;
            Metrics.incr m_retries;
            let retry = m.attempt + 1 in
            let delay = Rpc.backoff_ms t.policy ~retry t.rng in
            Event_queue.push q ~time:(now +. delay)
              (Send { m with attempt = retry; got_through = false })
          end
          else begin
            (* Retry budget exhausted: declare the target dead and let
               the sender route around it (or re-anchor). *)
            if not t.suspected.(m.to_) then begin
              t.suspected.(m.to_) <- true;
              st.newly_suspected <- m.to_ :: st.newly_suspected
            end;
            step_at ~now m.from_
          end
        end
  in
  step_at ~now:0.0 src;
  let rec run () =
    match Event_queue.peek_time q with
    | None -> ()
    | Some time when time > t.policy.Rpc.deadline_ms ->
        (* The lookup's future lies entirely past its deadline: the
           caller has already given up. *)
        Clock.advance_to clock t.policy.Rpc.deadline_ms;
        Metrics.incr m_deadline;
        finish Async_route.Failed ~failure:Async_route.Deadline
    | Some time ->
        Clock.advance_to clock time;
        List.iter (fun (_, ev) -> handle ~now:time ev) (Event_queue.pop_until q ~time);
        if st.finished = None then run ()
  in
  run ();
  (match t.suspicion with
  | `Per_lookup -> List.iter (fun v -> t.suspected.(v) <- false) st.newly_suspected
  | `Shared -> ());
  let status, failure =
    match st.finished with
    | Some (s, f) -> (s, f)
    | None -> (Async_route.Failed, Some Async_route.No_candidate)
  in
  let route = Route.{ nodes = Array.of_list (List.rev st.rev_path) } in
  let wall_ms = Clock.elapsed clock in
  Metrics.observe h_messages (Float.of_int (max 1 st.messages));
  (match status with
  | Async_route.Delivered ->
      Metrics.incr m_delivered;
      Metrics.observe h_wall wall_ms
  | Async_route.Rerouted ->
      Metrics.incr m_rerouted;
      Metrics.observe h_wall wall_ms
  | Async_route.Failed -> Metrics.incr m_failed);
  (match Trace.ambient () with
  | None -> ()
  | Some tr ->
      let outcome =
        match status with
        | Async_route.Delivered | Async_route.Rerouted -> Span.Arrived
        | Async_route.Failed -> Span.Stranded
      in
      Trace.record tr ~kind:"canon_net.lookup" ~key ~outcome ~nodes:route.Route.nodes
        ~level:(Router.level_of_edge t.overlay) ~latency:t.node_latency ());
  Async_route.
    {
      status;
      failure;
      route;
      wall_ms;
      messages = st.messages;
      retries = st.retries;
      timeouts = st.timeouts;
      losses = st.losses;
      reanchors = st.reanchors;
    }
