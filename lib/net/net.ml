open Canon_idspace
open Canon_overlay
open Canon_core
open Canon_sim
module Rng = Canon_rng.Rng
module Metrics = Canon_telemetry.Metrics
module Trace = Canon_telemetry.Trace
module Span = Canon_telemetry.Span

type suspicion = [ `Per_lookup | `Shared ]

type t = {
  overlay : Overlay.t;
  node_latency : int -> int -> float;
  plan : Fault_plan.t;
  policy : Rpc.policy;
  rng : Rng.t;
  rings : Rings.t option;
  live : Live_view.t option;
  leaf_width : int;
  suspicion : suspicion;
  suspected : bool array;
  leaf_cache : int array array option array;
  mutable leaf_cache_gen : int;
}

(* Process-wide telemetry, bound once (see Metrics). *)
let m_lookups = Metrics.counter "net.lookups"
let m_messages = Metrics.counter "net.messages"
let m_retries = Metrics.counter "net.retries"
let m_timeouts = Metrics.counter "net.timeouts"
let m_losses = Metrics.counter "net.losses"
let m_reanchors = Metrics.counter "net.reanchors"
let m_delivered = Metrics.counter "net.delivered"
let m_rerouted = Metrics.counter "net.rerouted"
let m_failed = Metrics.counter "net.failed"
let m_deadline = Metrics.counter "net.deadline_exceeded"
let h_wall = Metrics.histogram "net.delivered_latency_ms"

let h_messages =
  Metrics.histogram
    ~buckets:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0; 256.0 |]
    "net.messages_per_lookup"

let create ?(policy = Rpc.default) ?plan ?rings ?live ?(leaf_width = 4)
    ?(suspicion = `Per_lookup) ~rng ~node_latency overlay =
  Rpc.validate policy;
  if leaf_width < 1 then invalid_arg "Net.create: leaf_width must be >= 1";
  let n = Overlay.size overlay in
  let plan = match plan with Some p -> p | None -> Fault_plan.none ~n in
  if Fault_plan.size plan <> n then invalid_arg "Net.create: plan/overlay size mismatch";
  (match rings with
  | Some r when Rings.population r != Overlay.population overlay ->
      invalid_arg "Net.create: rings built over a different population"
  | Some _ | None -> ());
  (match live with
  | Some lv when Live_view.population lv != Overlay.population overlay ->
      invalid_arg "Net.create: live view over a different population"
  | Some _ | None -> ());
  {
    overlay;
    node_latency;
    plan;
    policy;
    rng;
    rings;
    live;
    leaf_width;
    suspicion;
    suspected = Array.make n false;
    leaf_cache = Array.make n None;
    leaf_cache_gen = 0;
  }

let overlay t = t.overlay

let plan t = t.plan

(* Membership and link state the routing rule consults: the frozen
   overlay snapshot by default, the live view when one is installed. *)
let node_live t v = match t.live with None -> true | Some lv -> Live_view.is_live lv v

let node_links t v =
  match t.live with None -> Overlay.links t.overlay v | Some lv -> Live_view.links lv v

let suspected_nodes t =
  let out = ref [] in
  for v = Array.length t.suspected - 1 downto 0 do
    if t.suspected.(v) then out := v :: !out
  done;
  Array.of_list !out

let clear_suspicions t = Array.fill t.suspected 0 (Array.length t.suspected) false

let leaf_sets t u =
  match t.live with
  | Some lv ->
      let gen = Live_view.generation lv in
      if gen <> t.leaf_cache_gen then begin
        Array.fill t.leaf_cache 0 (Array.length t.leaf_cache) None;
        t.leaf_cache_gen <- gen
      end;
      (match t.leaf_cache.(u) with
      | Some sets -> sets
      | None ->
          let sets = Leaf_sets.successors (Live_view.rings lv) ~node:u ~width:t.leaf_width in
          t.leaf_cache.(u) <- Some sets;
          sets)
  | None -> (
      match t.rings with
      | None -> [||]
      | Some rings -> (
          match t.leaf_cache.(u) with
          | Some sets -> sets
          | None ->
              let sets = Leaf_sets.successors rings ~node:u ~width:t.leaf_width in
              t.leaf_cache.(u) <- Some sets;
              sets))

let reanchor_candidate t ~at ~key =
  let id_at = Overlay.id t.overlay at in
  let du = Id.distance id_at key in
  if du = 0 then None
  else begin
    let best = ref (-1) and best_d = ref max_int in
    Array.iter
      (Array.iter (fun w ->
           if (not t.suspected.(w)) && node_live t w then begin
             let dw = Id.distance id_at (Overlay.id t.overlay w) in
             if dw > 0 && dw <= du && dw < !best_d then begin
               best := w;
               best_d := dw
             end
           end))
      (leaf_sets t at);
    if !best < 0 then None else Some !best
  end

(* --- one lookup ---------------------------------------------------- *)

type lookup_state = {
  mutable rev_path : int list;
  mutable hops : int;
  mutable messages : int;
  mutable retries : int;
  mutable timeouts : int;
  mutable losses : int;
  mutable reanchors : int;
  mutable deviated : bool;
  mutable newly_suspected : int list;
  mutable finished : (Async_route.status * Async_route.failure option) option;
}

type pending = {
  p_src : int;
  p_key : Id.t;
  p_started : float;
  p_st : lookup_state;
  p_on_done : (Async_route.t -> unit) option;
  mutable p_result : Async_route.t option;
}

type msg = {
  lk : pending;
  from_ : int;
  to_ : int;
  attempt : int;
  mutable got_through : bool;
}

type event = Send of msg | Deliver of msg | Timeout of msg

let result p = p.p_result

let pending_src p = p.p_src

let pending_key p = p.p_key

let finalize t p ~now =
  let st = p.p_st in
  (match t.suspicion with
  | `Per_lookup -> List.iter (fun v -> t.suspected.(v) <- false) st.newly_suspected
  | `Shared -> ());
  st.newly_suspected <- [];
  let status, failure =
    match st.finished with
    | Some (s, f) -> (s, f)
    | None -> (Async_route.Failed, Some Async_route.No_candidate)
  in
  let route = Route.{ nodes = Array.of_list (List.rev st.rev_path) } in
  let wall_ms = Float.min (now -. p.p_started) t.policy.Rpc.deadline_ms in
  Metrics.observe h_messages (Float.of_int (max 1 st.messages));
  (match status with
  | Async_route.Delivered ->
      Metrics.incr m_delivered;
      Metrics.observe h_wall wall_ms
  | Async_route.Rerouted ->
      Metrics.incr m_rerouted;
      Metrics.observe h_wall wall_ms
  | Async_route.Failed -> Metrics.incr m_failed);
  (match Trace.ambient () with
  | None -> ()
  | Some tr ->
      let outcome =
        match status with
        | Async_route.Delivered | Async_route.Rerouted -> Span.Arrived
        | Async_route.Failed -> Span.Stranded
      in
      Trace.record tr ~kind:"canon_net.lookup" ~key:p.p_key ~outcome ~nodes:route.Route.nodes
        ~level:(Router.level_of_edge t.overlay) ~latency:t.node_latency ());
  let r =
    Async_route.
      {
        status;
        failure;
        route;
        wall_ms;
        messages = st.messages;
        retries = st.retries;
        timeouts = st.timeouts;
        losses = st.losses;
        reanchors = st.reanchors;
      }
  in
  p.p_result <- Some r;
  match p.p_on_done with None -> () | Some f -> f r

let finish t p ~now ?failure status =
  if p.p_st.finished = None then begin
    p.p_st.finished <- Some (status, failure);
    finalize t p ~now
  end

let transmit t ~now ~push m =
  let st = m.lk.p_st in
  st.messages <- st.messages + 1;
  Metrics.incr m_messages;
  let lost = Fault_plan.draw_lost t.plan t.rng in
  if lost then begin
    st.losses <- st.losses + 1;
    Metrics.incr m_losses
  end;
  let lat = t.node_latency m.from_ m.to_ *. Fault_plan.edge_multiplier t.plan m.from_ m.to_ in
  (* A message lost, aimed at a crashed node, or slower than the
     timeout never completes its hop; the sender finds out at the
     timeout. Deliver is pushed before Timeout so a latency exactly at
     the timeout still wins the FIFO tie. Departure of the target while
     the message is in flight is checked at delivery time instead, since
     it may happen after this moment. *)
  if
    (not lost)
    && (not (Fault_plan.is_crashed t.plan m.to_))
    && lat <= t.policy.Rpc.timeout_ms
  then push ~time:(now +. lat) (Deliver m);
  push ~time:(now +. t.policy.Rpc.timeout_ms) (Timeout m)

let fault_free_next t u ~key =
  match
    Router.step_clockwise_avoiding_generic
      ~id:(fun v -> Overlay.id t.overlay v)
      ~links:(node_links t)
      ~dead:(fun _ -> false)
      ~at:u ~key
  with
  | Router.Forward w -> Some w
  | Router.Arrived | Router.Blocked -> None

let forward t p ~now ~push u v =
  if fault_free_next t u ~key:p.p_key <> Some v then p.p_st.deviated <- true;
  transmit t ~now ~push { lk = p; from_ = u; to_ = v; attempt = 0; got_through = false }

(* What the node holding the message does next, given its current
   knowledge of suspects and the membership of this moment. *)
let step_at t p ~now ~push u =
  let st = p.p_st in
  match
    Router.step_clockwise_avoiding_generic
      ~id:(fun v -> Overlay.id t.overlay v)
      ~links:(node_links t)
      ~dead:(fun v -> t.suspected.(v))
      ~at:u ~key:p.p_key
  with
  | Router.Forward v -> forward t p ~now ~push u v
  | Router.Arrived -> finish t p ~now (if st.deviated then Rerouted else Delivered)
  | Router.Blocked -> (
      match reanchor_candidate t ~at:u ~key:p.p_key with
      | Some v ->
          st.reanchors <- st.reanchors + 1;
          Metrics.incr m_reanchors;
          st.deviated <- true;
          forward t p ~now ~push u v
      | None -> finish t p ~now Failed ~failure:Async_route.No_candidate)

let launch ?on_done t ~now ~push ~src ~key =
  if Fault_plan.is_crashed t.plan src then invalid_arg "Net.lookup: crashed source";
  if not (node_live t src) then invalid_arg "Net.lookup: source not live";
  Metrics.incr m_lookups;
  let st =
    {
      rev_path = [ src ];
      hops = 0;
      messages = 0;
      retries = 0;
      timeouts = 0;
      losses = 0;
      reanchors = 0;
      deviated = false;
      newly_suspected = [];
      finished = None;
    }
  in
  let p = { p_src = src; p_key = key; p_started = now; p_st = st; p_on_done = on_done; p_result = None } in
  step_at t p ~now ~push src;
  p

let handle t ~now ~push ev =
  let m = match ev with Send m | Deliver m | Timeout m -> m in
  let p = m.lk in
  let st = p.p_st in
  if st.finished = None then begin
    if now -. p.p_started > t.policy.Rpc.deadline_ms then begin
      (* This event lies past the lookup's deadline: the caller has
         already given up. *)
      Metrics.incr m_deadline;
      finish t p ~now Async_route.Failed ~failure:Async_route.Deadline
    end
    else
      let max_hops = Overlay.size t.overlay + 1 in
      match ev with
      | Send m -> transmit t ~now ~push m
      | Deliver m ->
          (* A target that left while the hop was in flight never
             receives it; the sender finds out at the timeout. *)
          if node_live t m.to_ then begin
            m.got_through <- true;
            st.rev_path <- m.to_ :: st.rev_path;
            st.hops <- st.hops + 1;
            if st.hops > max_hops then finish t p ~now Failed ~failure:Async_route.Hop_budget
            else step_at t p ~now ~push m.to_
          end
      | Timeout m ->
          if not m.got_through then begin
            st.timeouts <- st.timeouts + 1;
            Metrics.incr m_timeouts;
            if m.attempt < t.policy.Rpc.max_retries then begin
              st.retries <- st.retries + 1;
              Metrics.incr m_retries;
              let retry = m.attempt + 1 in
              let delay = Rpc.backoff_ms t.policy ~retry t.rng in
              push ~time:(now +. delay) (Send { m with attempt = retry; got_through = false })
            end
            else begin
              (* Retry budget exhausted: declare the target dead and let
                 the sender route around it (or re-anchor). The forced
                 detour counts as a deviation even when the live link
                 state has already forgotten the departed target. *)
              st.deviated <- true;
              if not t.suspected.(m.to_) then begin
                t.suspected.(m.to_) <- true;
                st.newly_suspected <- m.to_ :: st.newly_suspected
              end;
              if node_live t m.from_ then step_at t p ~now ~push m.from_
              else
                (* The holder itself left while waiting on the RPC: the
                   message dies with it. *)
                finish t p ~now Failed ~failure:Async_route.No_candidate
            end
          end
  end

let abandon t p ~now =
  finish t p ~now Async_route.Failed ~failure:Async_route.No_candidate;
  match p.p_result with Some r -> r | None -> assert false

let lookup t ~src ~key =
  let q = Event_queue.create () in
  let push ~time ev = Event_queue.push q ~time ev in
  let p = launch t ~now:0.0 ~push ~src ~key in
  let last = ref 0.0 in
  let rec run () =
    if p.p_result = None then
      match Event_queue.pop q with
      | None -> ()
      | Some (time, ev) ->
          last := time;
          handle t ~now:time ~push ev;
          run ()
  in
  run ();
  match p.p_result with Some r -> r | None -> abandon t p ~now:!last
