(** The outcome of one message-level lookup.

    Where the synchronous engines return a bare {!Canon_overlay.Route.t},
    an asynchronous lookup also has a cost and a fate: how long it took
    on the virtual clock (including timeouts and backoff waits), how
    many messages it spent, and whether faults forced it off the
    fault-free path. *)

open Canon_overlay

type status =
  | Delivered
      (** terminated at the key's responsible node along the exact path
          the fault-free greedy engine would have taken *)
  | Rerouted
      (** terminated at a responsible node, but faults forced at least
          one fallback link or leaf-set re-anchor on the way *)
  | Failed  (** abandoned — see {!failure} for why *)

type failure =
  | No_candidate
      (** a node's every useful link was suspect and no leaf-set entry
          could re-anchor the ring *)
  | Deadline  (** the end-to-end deadline passed before arrival *)
  | Hop_budget  (** visited more nodes than the overlay holds — a bug
                    guard, never expected *)

type t = {
  status : status;
  failure : failure option;  (** [Some] exactly when [status = Failed] *)
  route : Route.t;
      (** nodes that held the lookup, source first; for [Failed] the
          partial path up to the node that gave up *)
  wall_ms : float;  (** virtual time from first send to termination *)
  messages : int;  (** transmissions, retries included *)
  retries : int;  (** resends after a timeout *)
  timeouts : int;  (** attempts the sender gave up waiting for *)
  losses : int;  (** messages dropped by the loss process *)
  reanchors : int;  (** leaf-set fallbacks after a dead successor *)
}

val delivered : t -> bool
(** [Delivered] or [Rerouted] — the lookup reached a responsible node. *)

val status_to_string : status -> string

val failure_to_string : failure -> string

val pp : Format.formatter -> t -> unit
