(** Per-hop RPC policy: timeout, bounded retries, exponential backoff
    with jitter.

    Every hop of a simulated lookup is one RPC. The sender waits
    [timeout_ms] for the hop to complete; on timeout it resends after a
    backoff delay, up to [max_retries] resends; when the budget is
    exhausted it declares the target suspect and falls back to another
    link (see {!Net}). Backoff for the [k]-th retry (1-based) is

    [backoff_base_ms * backoff_factor^(k-1) * u]

    where [u] is uniform on [1 - jitter, 1 + jitter] — jitter decorrelates
    retry storms exactly as in production RPC stacks, and is drawn from
    the simulation RNG so runs stay reproducible. *)

type policy = {
  timeout_ms : float;  (** per-attempt wait before declaring a timeout *)
  max_retries : int;  (** resends after the first attempt; 0 = fail fast *)
  backoff_base_ms : float;  (** delay before the first resend *)
  backoff_factor : float;  (** multiplier per further resend, >= 1 *)
  jitter : float;  (** relative half-width of the backoff noise, in [0, 1) *)
  deadline_ms : float;
      (** end-to-end budget of a whole lookup: once the virtual clock
          passes it the lookup is abandoned — a lookup that spends
          seconds in timeout/retry cycles has failed its caller even if
          it would eventually arrive *)
}

val default : policy
(** 1000 ms timeout (comfortably above the worst transit-stub round
    trip), 3 retries, 50 ms base backoff doubling per retry, 20%
    jitter, 10 s deadline (several fault-free worst-case paths). *)

val validate : policy -> unit
(** Raises [Invalid_argument] naming the first bad field: non-positive
    timeout or base, negative retries, factor < 1, jitter outside
    [0, 1), deadline not above the timeout. *)

val backoff_ms : policy -> retry:int -> Canon_rng.Rng.t -> float
(** Backoff delay before the [retry]-th resend (1-based). Requires
    [retry >= 1]. Consumes exactly one RNG draw when [jitter > 0], none
    otherwise. *)
