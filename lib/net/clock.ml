type t = { start : float; mutable now : float }

let create ?(start = 0.0) () =
  if not (Float.is_finite start) || start < 0.0 then
    invalid_arg "Clock.create: bad start time";
  { start; now = start }

let now t = t.now

let advance_to t time =
  if not (Float.is_finite time) then invalid_arg "Clock.advance_to: bad time";
  if time < t.now then invalid_arg "Clock.advance_to: time moved backwards";
  t.now <- time

let elapsed t = t.now -. t.start
