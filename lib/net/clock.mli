(** The virtual clock of the message-level simulator.

    Simulated time is plain milliseconds from the start of a run. The
    clock only moves forward — {!Net} advances it to the timestamp of
    the next due event batch — so "now" is always the timestamp of the
    event being processed, and backwards motion is a scheduling bug
    worth failing loudly on. *)

type t

val create : ?start:float -> unit -> t
(** A clock reading [start] (default 0). [start] must be finite and
    non-negative. *)

val now : t -> float

val advance_to : t -> float -> unit
(** Moves the clock forward to [time]. Raises [Invalid_argument] when
    [time] is NaN/infinite or earlier than {!now} (equal is allowed:
    several event batches may share a timestamp). *)

val elapsed : t -> float
(** Milliseconds since the clock's start value. *)
