(** What goes wrong, and where: the fault configuration of a simulated
    network.

    A fault plan is built once per experiment point and is purely
    descriptive — it holds no clock or queue. Three fault classes:

    - {e message loss}: every message is independently dropped with
      probability [loss] (drawn from the {!Net}'s RNG, so runs are
      reproducible);
    - {e crashed nodes}: a crashed node never receives anything; the
      sender only learns of the crash through timeouts. Whole domains
      can be crashed at once ({!crash_domain}) to model the paper's
      correlated-failure scenarios (a campus loses power);
    - {e slow nodes}: every message to or from a slow node has its
      latency multiplied by the node's factor. A factor large enough to
      push latency past the RPC timeout makes the node indistinguishable
      from a crashed one to its peers — which is the point.

    Crash/slow mutators may be called at any time; {!Net} reads the plan
    live, so a plan mutated between lookups models failures striking
    mid-experiment. *)

open Canon_overlay

type t

val create : ?loss:float -> n:int -> unit -> t
(** A plan over [n] nodes with no crashed or slow nodes and message-loss
    probability [loss] (default 0). Raises [Invalid_argument] unless
    [0 <= loss <= 1] and [n >= 0]. *)

val none : n:int -> t
(** A fault-free plan: [create ~loss:0.0 ~n ()]. *)

val size : t -> int

val loss : t -> float

val set_loss : t -> float -> unit
(** Raises [Invalid_argument] unless [0 <= loss <= 1]. *)

val crash : t -> int -> unit
(** Marks a node crashed (idempotent). *)

val revive : t -> int -> unit

val is_crashed : t -> int -> bool

val crashed_count : t -> int

val crashed_nodes : t -> int array
(** Crashed node indices in increasing order. *)

val crash_random :
  t -> Canon_rng.Rng.t -> fraction:float -> ?protect:(int -> bool) -> unit -> unit
(** Crashes each non-protected node independently with probability
    [fraction]. Raises [Invalid_argument] unless [0 <= fraction <= 1]. *)

val crash_domain : t -> Population.t -> domain:int -> unit
(** Crashes every node whose leaf lies in [domain]'s subtree — a
    whole-domain outage. The population's size must match the plan's. *)

val slow : t -> int -> factor:float -> unit
(** Sets a node's latency multiplier. Raises [Invalid_argument] unless
    [factor >= 1]. [factor = 1] restores normal speed. *)

val multiplier : t -> int -> float
(** The node's latency multiplier (1 unless {!slow} raised it). *)

val edge_multiplier : t -> int -> int -> float
(** [edge_multiplier t u v] scales a message from [u] to [v]: the product
    of both endpoints' multipliers. *)

val draw_lost : t -> Canon_rng.Rng.t -> bool
(** One per-message loss trial. Never consumes randomness when
    [loss = 0], so a fault-free run draws exactly as a plan-free one. *)
