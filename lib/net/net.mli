(** The message-level asynchronous lookup simulator.

    Where the synchronous engines in {!Canon_core.Router} teleport a
    message along its whole path in one call, [Net] turns every hop into
    an RPC on a virtual clock: the message takes real (transit-stub)
    latency to cross each link, can be dropped or sent to a crashed/slow
    node per the {!Fault_plan}, and the sender recovers through the
    {!Rpc} policy — timeout, bounded retries with jittered exponential
    backoff — before giving up on a link. Recovery is layered exactly as
    the paper's §2.3 prescribes:

    + {e retry}: a timed-out hop is resent to the same target, with
      backoff, up to [max_retries] times;
    + {e reroute}: when the budget is exhausted the target is marked
      suspect and the sender re-runs the greedy rule avoiding suspects
      ({!Canon_core.Router.step_clockwise_avoiding});
    + {e re-anchor}: when every useful link is suspect, the sender falls
      back to its per-level leaf sets ({!Canon_sim.Leaf_sets}) and
      forwards to the nearest non-suspect successor that makes clockwise
      progress — the "next leaf-set entry re-anchors the ring" move.

    Fidelity contract (pinned by the test suite): with a fault-free plan
    a lookup visits {e exactly} the nodes {!Canon_core.Router.greedy_clockwise}
    would visit, and its wall-clock time is the path's physical latency.
    Faults only ever add: retries, waits, detours.

    Simplifications, on purpose: forwarding is recursive (the node
    holding the message picks the next hop); per-hop acknowledgements
    are not simulated separately — a delivered hop silently cancels its
    sender's timeout — and a message slower than the timeout is treated
    as undelivered, which is precisely what makes slow nodes get routed
    around.

    Every lookup feeds the [net.*] telemetry counters and delivered-
    latency histogram, and emits a span to the ambient trace when one is
    installed. *)

open Canon_idspace
open Canon_overlay

type t

type suspicion = [ `Per_lookup | `Shared ]
(** Scope of learned suspicions. [`Per_lookup] (the default) forgets
    them when the lookup ends — each lookup discovers failures afresh,
    modelling independent clients with no shared failure detector, the
    paper's no-repair setting. [`Shared] keeps them for the process
    lifetime, modelling a node-local failure-detector cache: later
    lookups route around known-dead nodes without paying the timeouts
    again. *)

val create :
  ?policy:Rpc.policy ->
  ?plan:Fault_plan.t ->
  ?rings:Rings.t ->
  ?live:Live_view.t ->
  ?leaf_width:int ->
  ?suspicion:suspicion ->
  rng:Canon_rng.Rng.t ->
  node_latency:(int -> int -> float) ->
  Overlay.t ->
  t
(** A simulated network over [overlay]. [node_latency] is the physical
    latency oracle (e.g. {!Canon_topology.Latency.node_latency} composed
    with attachment points). [plan] defaults to fault-free; [policy] to
    {!Rpc.default}. [rings] enables leaf-set re-anchoring with
    [leaf_width] successors per level (default 4; without [rings] a
    blocked lookup fails instead of re-anchoring). [live] switches the
    network to {e live membership} mode: hop selection, deviation
    detection and leaf-set fallbacks consult the {!Live_view} (mutated
    by churn between events) instead of the frozen [overlay], a hop
    whose target departed in flight is not delivered (the sender times
    out and routes around it), and leaf sets come from the view's rings,
    re-derived whenever its generation changes. With a [live] view whose
    membership never changes, behavior is identical to snapshot mode.
    Raises [Invalid_argument] on a plan/overlay size mismatch, a
    rings/live view over a different population, an invalid policy, or
    [leaf_width < 1]. *)

val overlay : t -> Overlay.t

val plan : t -> Fault_plan.t
(** Live: mutating the returned plan affects subsequent lookups. *)

val lookup : t -> src:int -> key:Id.t -> Async_route.t
(** Routes one message from [src] toward [key]'s responsible node,
    simulating every hop. Raises [Invalid_argument] when [src] is
    crashed (or, in live mode, not live). Deterministic given the
    creation RNG's state. Implemented as {!launch} + {!handle} over a
    private event queue; with a fault-free plan the RNG is never
    consumed, so results are independent of other lookups' scheduling. *)

(** {2 Event-driven interface}

    [lookup] owns its clock: it drains a private queue until the route
    resolves. The functions below expose the same machinery with the
    {e caller} owning the queue, so lookups can be interleaved with
    other timestamped work — most importantly {!Canon_sim.Churn}
    membership events — on one shared {!Event_queue}/sim-time axis. The
    caller wraps {!event} into its own payload type, pushes via the
    [push] callback given to {!launch}/{!handle}, and calls {!handle}
    when a net event pops. Under [`Per_lookup] suspicion, suspicions
    learned by a lookup are visible to others only while it is in
    flight (they are cleared when it finishes). *)

type event
(** An in-flight message occurrence (send, delivery or timeout) of some
    launched lookup. Opaque: obtained only from the [push] callback. *)

type pending
(** A launched lookup. Resolves to a result once enough of its events
    have been handled. *)

val launch :
  ?on_done:(Async_route.t -> unit) ->
  t ->
  now:float ->
  push:(time:float -> event -> unit) ->
  src:int ->
  key:Id.t ->
  pending
(** Start a lookup at sim time [now], scheduling its first hop through
    [push] (timestamps are absolute). [on_done] fires exactly once when
    the lookup resolves, from inside the {!handle} call (or this one, if
    [src] is already responsible for [key]) that resolves it. Raises
    like {!lookup}. *)

val handle : t -> now:float -> push:(time:float -> event -> unit) -> event -> unit
(** Process one event at its timestamp [now] (caller passes the time the
    event popped at). Events of resolved lookups are ignored, so leftover
    timeouts in the shared queue are harmless. An event popping after
    its lookup's deadline resolves the lookup as [Failed Deadline] with
    wall clamped to the deadline. *)

val result : pending -> Async_route.t option
(** [None] while the lookup is still in flight. *)

val abandon : t -> pending -> now:float -> Async_route.t
(** Resolve an unresolved lookup as [Failed No_candidate] now (e.g. the
    shared queue drained with the lookup still waiting); returns the
    existing result if it already resolved. *)

val pending_src : pending -> int

val pending_key : pending -> Id.t

val suspected_nodes : t -> int array
(** Nodes the network currently believes dead (retry budgets exhausted
    against them), in increasing order. *)

val clear_suspicions : t -> unit
(** Forget learned suspicions (e.g. after reviving nodes mid-run). *)

val reanchor_candidate : t -> at:int -> key:Id.t -> int option
(** The leaf-set fallback [at] would use for [key] right now: the
    nearest non-suspect leaf-set successor making clockwise progress
    without overshooting. [None] without [rings] or when every candidate
    is suspect/overshoots. Exposed for tests and diagnostics. *)
