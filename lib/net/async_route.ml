open Canon_overlay

type status = Delivered | Rerouted | Failed

type failure = No_candidate | Deadline | Hop_budget

type t = {
  status : status;
  failure : failure option;
  route : Route.t;
  wall_ms : float;
  messages : int;
  retries : int;
  timeouts : int;
  losses : int;
  reanchors : int;
}

let delivered t = match t.status with Delivered | Rerouted -> true | Failed -> false

let status_to_string = function
  | Delivered -> "delivered"
  | Rerouted -> "rerouted"
  | Failed -> "failed"

let failure_to_string = function
  | No_candidate -> "no-candidate"
  | Deadline -> "deadline"
  | Hop_budget -> "hop-budget"

let pp ppf t =
  Format.fprintf ppf "%s %a (%.1f ms, %d msgs, %d retries, %d reanchors)"
    (status_to_string t.status) Route.pp t.route t.wall_ms t.messages t.retries
    t.reanchors
