module Rng = Canon_rng.Rng

type policy = {
  timeout_ms : float;
  max_retries : int;
  backoff_base_ms : float;
  backoff_factor : float;
  jitter : float;
  deadline_ms : float;
}

let default =
  {
    timeout_ms = 1000.0;
    max_retries = 3;
    backoff_base_ms = 50.0;
    backoff_factor = 2.0;
    jitter = 0.2;
    deadline_ms = 10_000.0;
  }

let validate p =
  if not (Float.is_finite p.timeout_ms) || p.timeout_ms <= 0.0 then
    invalid_arg "Rpc.validate: timeout_ms must be positive";
  if p.max_retries < 0 then invalid_arg "Rpc.validate: max_retries must be >= 0";
  if not (Float.is_finite p.backoff_base_ms) || p.backoff_base_ms <= 0.0 then
    invalid_arg "Rpc.validate: backoff_base_ms must be positive";
  if not (Float.is_finite p.backoff_factor) || p.backoff_factor < 1.0 then
    invalid_arg "Rpc.validate: backoff_factor must be >= 1";
  if not (Float.is_finite p.jitter) || p.jitter < 0.0 || p.jitter >= 1.0 then
    invalid_arg "Rpc.validate: jitter must be in [0, 1)";
  if not (Float.is_finite p.deadline_ms) || p.deadline_ms <= p.timeout_ms then
    invalid_arg "Rpc.validate: deadline_ms must exceed timeout_ms"

let backoff_ms p ~retry rng =
  if retry < 1 then invalid_arg "Rpc.backoff_ms: retry must be >= 1";
  let base = p.backoff_base_ms *. (p.backoff_factor ** Float.of_int (retry - 1)) in
  if p.jitter = 0.0 then base
  else base *. (1.0 -. p.jitter +. (2.0 *. p.jitter *. Rng.float rng))
