open Canon_overlay
open Canon_core
open Canon_sim

type construction =
  | Crescendo
  | Chord_global

type t = {
  m : Maintenance.t;
  construction : construction;
  mutable generation : int;
  (* Chord link sets recomputed from the live global ring, memoized
     within a generation (one membership event invalidates them all). *)
  memo : (int, int array) Hashtbl.t;
}

let crescendo m = { m; construction = Crescendo; generation = 0; memo = Hashtbl.create 1 }

let chord m = { m; construction = Chord_global; generation = 0; memo = Hashtbl.create 64 }

let maintenance t = t.m

let generation t = t.generation

let bump t =
  t.generation <- t.generation + 1;
  if t.construction = Chord_global then Hashtbl.reset t.memo

let on_hook t (_ : Churn.hook) = bump t

let is_live t v = Maintenance.is_present t.m v

let rings t = Maintenance.rings t.m

let population t = Rings.population (Maintenance.rings t.m)

let links t v =
  if not (Maintenance.is_present t.m v) then [||]
  else
    match t.construction with
    | Crescendo -> Maintenance.links t.m v
    | Chord_global -> (
        match Hashtbl.find_opt t.memo v with
        | Some l -> l
        | None ->
            let rings = Maintenance.rings t.m in
            let pop = Rings.population rings in
            let global = Rings.ring_of_node_at_depth rings v 0 in
            let l = Chord.links_of_id global pop.Population.ids.(v) ~self:v in
            Hashtbl.add t.memo v l;
            l)
