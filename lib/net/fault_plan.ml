open Canon_hierarchy
open Canon_overlay
module Rng = Canon_rng.Rng

type t = {
  n : int;
  mutable loss : float;
  crashed : bool array;
  slow : float array;
}

let check_loss loss =
  if not (Float.is_finite loss) || loss < 0.0 || loss > 1.0 then
    invalid_arg "Fault_plan: loss must be in [0, 1]"

let create ?(loss = 0.0) ~n () =
  if n < 0 then invalid_arg "Fault_plan.create: negative size";
  check_loss loss;
  { n; loss; crashed = Array.make n false; slow = Array.make n 1.0 }

let none ~n = create ~n ()

let size t = t.n

let loss t = t.loss

let set_loss t loss =
  check_loss loss;
  t.loss <- loss

let check_node t v ctx =
  if v < 0 || v >= t.n then invalid_arg ("Fault_plan." ^ ctx ^ ": node out of range")

let crash t v =
  check_node t v "crash";
  t.crashed.(v) <- true

let revive t v =
  check_node t v "revive";
  t.crashed.(v) <- false

let is_crashed t v =
  check_node t v "is_crashed";
  t.crashed.(v)

let crashed_count t = Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 t.crashed

let crashed_nodes t =
  let out = Array.make (crashed_count t) 0 in
  let j = ref 0 in
  Array.iteri
    (fun v c ->
      if c then begin
        out.(!j) <- v;
        incr j
      end)
    t.crashed;
  out

let crash_random t rng ~fraction ?(protect = fun _ -> false) () =
  if not (Float.is_finite fraction) || fraction < 0.0 || fraction > 1.0 then
    invalid_arg "Fault_plan.crash_random: fraction must be in [0, 1]";
  for v = 0 to t.n - 1 do
    if (not (protect v)) && Rng.float rng < fraction then t.crashed.(v) <- true
  done

let crash_domain t pop ~domain =
  if Population.size pop <> t.n then
    invalid_arg "Fault_plan.crash_domain: population size mismatch";
  let tree = pop.Population.tree in
  for v = 0 to t.n - 1 do
    if Domain_tree.is_ancestor tree ~anc:domain ~desc:pop.Population.leaf_of_node.(v) then
      t.crashed.(v) <- true
  done

let slow t v ~factor =
  check_node t v "slow";
  if not (Float.is_finite factor) || factor < 1.0 then
    invalid_arg "Fault_plan.slow: factor must be >= 1";
  t.slow.(v) <- factor

let multiplier t v =
  check_node t v "multiplier";
  t.slow.(v)

let edge_multiplier t u v =
  check_node t u "edge_multiplier";
  check_node t v "edge_multiplier";
  t.slow.(u) *. t.slow.(v)

let draw_lost t rng = t.loss > 0.0 && Rng.float rng < t.loss
