(** A mutable membership view over the maintained overlay, for routing
    against {e current} link state while churn is in flight.

    {!Net} normally routes over a frozen {!Canon_overlay.Overlay}
    snapshot. Under interleaved churn the snapshot lies: a hop chosen at
    send time may be gone by delivery time, and the recovery ladder must
    consult the membership {e of that moment}. A [Live_view] wraps a
    {!Canon_sim.Maintenance.t} (mutated by {!Canon_sim.Churn.apply})
    and exposes exactly what a node can see locally: whether a peer is
    live, its own current link set, and the live per-domain rings that
    back leaf-set fallbacks.

    The view carries a {e generation} counter so consumers (e.g. [Net]'s
    leaf-set cache) can invalidate derived state cheaply: callers must
    {!bump} it after every membership event — most simply by passing
    {!on_hook} as the churn [?on_event] hook. Hook handlers must not
    consume the churn RNG (the determinism contract documented on
    {!Canon_sim.Churn.hook}); [bump] and [on_hook] only touch the
    counter and the memo table. *)

type t

val crescendo : Canon_sim.Maintenance.t -> t
(** View the maintained Crescendo links themselves: {!links} returns
    {!Canon_sim.Maintenance.links}, which the §2.3 protocol keeps equal
    to the static construction over the live membership. *)

val chord : Canon_sim.Maintenance.t -> t
(** Flat-Chord counterpart over the same membership: {!links} applies
    the Chord finger rule ({!Canon_core.Chord.links_of_id}) to the live
    {e global} ring, memoized per {!generation}. This is what makes
    Chord-vs-Crescendo comparisons under live churn possible — the
    maintenance protocol tracks membership, and this view derives the
    flat link state each generation. *)

val maintenance : t -> Canon_sim.Maintenance.t

val is_live : t -> int -> bool

val links : t -> int -> int array
(** Current links of a node; [[||]] when it is not live. *)

val rings : t -> Canon_overlay.Rings.t
(** The live per-domain rings (do not hold across membership events). *)

val population : t -> Canon_overlay.Population.t

val generation : t -> int

val bump : t -> unit
(** Declare that membership changed: advances {!generation} and drops
    memoized link sets. *)

val on_hook : t -> Canon_sim.Churn.hook -> unit
(** [bump] in churn-hook clothing: pass [(Live_view.on_hook view)] as
    [?on_event] so every [Init]/[Join]/[Leave] invalidates the view. *)
