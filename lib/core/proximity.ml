open Canon_idspace
open Canon_overlay

type kind =
  | Chord_groups of int (* T: prefix bits *)
  | Crescendo_groups

type t = {
  kind : kind;
  overlay : Overlay.t;
}

let default_group_size = 16

let group_bits ~n ~group_size =
  if n <= 0 || group_size <= 0 then invalid_arg "Proximity.group_bits";
  if n <= group_size then 0 else min Id.bits (Id.log2_floor (n / group_size))

let shift_of_bits bits = Id.bits - bits

(* Iterate the members of group [g] (top [t_bits] prefix = g) present in
   [ring], calling [f node]. *)
let iter_group ring ~t_bits g f =
  let shift = shift_of_bits t_bits in
  let start = g lsl shift and len = 1 lsl shift in
  let count = Ring.arc_count ring ~start ~len in
  for i = 0 to count - 1 do
    f (Ring.arc_nth ring ~start ~len i)
  done

let min_latency_member ring ~t_bits g ~node_latency ~self =
  let best = ref (-1) and best_lat = ref infinity in
  iter_group ring ~t_bits g (fun node ->
      if node <> self then begin
        let l = node_latency self node in
        if l < !best_lat then begin
          best := node;
          best_lat := l
        end
      end);
  if !best < 0 then None else Some !best

let build_chord ?(group_size = default_group_size) pop ~node_latency =
  let n = Population.size pop in
  let ids = pop.Population.ids in
  let t_bits = group_bits ~n ~group_size in
  let shift = shift_of_bits t_bits in
  let global = Ring.of_members ~ids ~members:(Array.init n Fun.id) in
  let links =
    Array.init n (fun node ->
        let id = ids.(node) in
        let g = Id.prefix id t_bits in
        let acc = Link_set.create ~self:node in
        (* Dense intra-group structure: the full clique. *)
        iter_group global ~t_bits g (fun peer -> Link_set.add acc peer);
        (* Group fingers: for each k < T, the first non-empty group at or
           after g + 2^k, entered at its lowest-latency member. *)
        for k = 0 to t_bits - 1 do
          let target_group = (g + (1 lsl k)) land ((1 lsl t_bits) - 1) in
          (* The first node at or after the target group's start. *)
          let entry = Ring.first_at_or_after global (target_group lsl shift) in
          let actual_group = Id.prefix ids.(entry) t_bits in
          if actual_group <> g then begin
            match min_latency_member global ~t_bits actual_group ~node_latency ~self:node with
            | Some best -> Link_set.add acc best
            | None -> Link_set.add acc entry
          end
        done;
        Link_set.to_array acc)
  in
  { kind = Chord_groups t_bits; overlay = Overlay.create pop ~links }

let build_crescendo ?(group_size = default_group_size) rings ~node_latency =
  (* The group size is implicit in the admissible arcs at the top level;
     the parameter is kept for interface symmetry with [build_chord]. *)
  ignore group_size;
  let pop = Rings.population rings in
  let n = Population.size pop in
  let ids = pop.Population.ids in
  let tree = pop.Population.tree in
  let root = Canon_hierarchy.Domain_tree.root tree in
  let root_ring = Rings.ring rings root in
  let links =
    Array.init n (fun node ->
        let id = ids.(node) in
        let acc = Link_set.create ~self:node in
        let chain = Rings.chain rings node in
        let levels = Array.length chain in
        (* Ordinary Crescendo below the root; with a flat hierarchy the
           top level is the leaf itself and no cap applies. *)
        let d_own = ref Id.space in
        if levels > 1 then begin
          let leaf_ring = Rings.ring rings chain.(0) in
          Array.iter (Link_set.add acc) (Chord.links_of_id leaf_ring id ~self:node);
          d_own := Ring.successor_distance leaf_ring id
        end;
        for level = 1 to levels - 2 do
          let ring = Rings.ring rings chain.(level) in
          let k = ref 0 in
          while !k < Id.bits && 1 lsl !k < !d_own do
            (match Ring.finger ring id (1 lsl !k) with
            | None -> ()
            | Some target ->
                let dist = Id.distance id ids.(target) in
                if dist < !d_own then Link_set.add acc target);
            incr k
          done;
          d_own := min !d_own (Ring.successor_distance ring id)
        done;
        (* Top-level merge with the group rule. The exact successor is
           always kept so greedy clockwise routing stays exact. *)
        (if Ring.size root_ring >= 2 then begin
           let succ = Ring.successor_of_id root_ring id in
           let succ_dist = Id.distance id ids.(succ) in
           if succ_dist <= !d_own then Link_set.add acc succ
         end);
        let k = ref 0 in
        while !k < Id.bits && 1 lsl !k < !d_own do
          (match Ring.finger root_ring id (1 lsl !k) with
          | None -> ()
          | Some target ->
              let dist = Id.distance id ids.(target) in
              if dist < !d_own then begin
                (* §3.6: at the top level the link rule only prescribes
                   a *range* of admissible identifiers, and the node is
                   free to pick the physically closest one (proximity
                   neighbour selection, as in the paper's [5]). The
                   admissible candidates are the nodes of the arc
                   [id + 2^k, id + min(2^(k+1), d_own)) — condition (a)
                   restricted by condition (b). *)
                let hi = min (1 lsl (!k + 1)) !d_own in
                let start = Id.add id (1 lsl !k) in
                let len = hi - (1 lsl !k) in
                let count = Ring.arc_count root_ring ~start ~len in
                if count <= 1 then Link_set.add acc target
                else begin
                  let best = ref target and best_lat = ref (node_latency node target) in
                  (* Sample at most 32 candidates, as the paper notes
                     s = 32 suffices. *)
                  let stride = max 1 (count / 32) in
                  let i = ref 0 in
                  while !i < count do
                    let peer = Ring.arc_nth root_ring ~start ~len !i in
                    if peer <> node then begin
                      let l = node_latency node peer in
                      if l < !best_lat then begin
                        best := peer;
                        best_lat := l
                      end
                    end;
                    i := !i + stride
                  done;
                  Link_set.add acc !best
                end
              end);
          incr k
        done;
        Link_set.to_array acc)
  in
  { kind = Crescendo_groups; overlay = Overlay.create pop ~links }

let overlay t = t.overlay

let route t ~src ~dst =
  match t.kind with
  | Crescendo_groups ->
      Router.greedy_clockwise t.overlay ~src ~key:(Overlay.id t.overlay dst)
  | Chord_groups t_bits ->
      let ov = t.overlay in
      let group node = Id.prefix (Overlay.id ov node) t_bits in
      let ngroups = 1 lsl t_bits in
      let gdist a b = (b - a) land (ngroups - 1) in
      let dst_group = group dst in
      let max_hops = Overlay.size ov + 1 in
      let rec go u acc hops =
        if u = dst then Route.{ nodes = Array.of_list (List.rev (u :: acc)) }
        else if hops >= max_hops then
          raise
            (Router.Stuck
               {
                 at = u;
                 key = Overlay.id ov dst;
                 hops;
                 path = Array.of_list (List.rev (u :: acc));
               })
        else if group u = dst_group then
          (* Intra-group clique: one hop to the destination. *)
          go dst (u :: acc) (hops + 1)
        else begin
          (* Group-greedy: largest group progress without overshooting
             the destination group. *)
          let du = gdist (group u) dst_group in
          let best = ref (-1) and best_remaining = ref du in
          Array.iter
            (fun v ->
              let dv = gdist (group v) dst_group in
              if gdist (group u) (group v) <= du && dv < !best_remaining then begin
                best := v;
                best_remaining := dv
              end)
            (Overlay.links ov u);
          if !best < 0 then
            raise
              (Router.Stuck
                 {
                   at = u;
                   key = Overlay.id ov dst;
                   hops;
                   path = Array.of_list (List.rev (u :: acc));
                 })
          else go !best (u :: acc) (hops + 1)
        end
      in
      go src [] 0
