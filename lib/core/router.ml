open Canon_idspace
open Canon_hierarchy
open Canon_overlay
module Span = Canon_telemetry.Span
module Trace = Canon_telemetry.Trace

exception Stuck of { at : int; key : Id.t; hops : int; path : int array }

(* A generous hop budget: any genuine route is O(log n); if we exceed
   the node count something is structurally wrong. *)
let budget overlay = Overlay.size overlay + 1

let stuck u acc key hops =
  Stuck { at = u; key; hops; path = Array.of_list (List.rev (u :: acc)) }

(* Hierarchy level of a link: depth of the lowest common ancestor
   domain of its endpoints — 0 for a top-level link, deeper is more
   local. This is the level a span records for each hop. *)
let level_of_edge overlay =
  let pop = Overlay.population overlay in
  let tree = pop.Population.tree in
  fun u v -> Domain_tree.depth tree (Population.lca_of_nodes pop u v)

(* Run one routing thunk under a trace: emit an Arrived span for the
   returned route, or a Stuck span for the partial path before
   re-raising. Engines only call this on the [Some trace] branch, so
   the untraced path pays one match and nothing else. *)
let traced tr ~kind ~key ~level run =
  match run () with
  | route ->
      Trace.record tr ~kind ~key ~outcome:Span.Arrived ~nodes:route.Route.nodes ~level ();
      route
  | exception (Stuck { path; _ } as e) ->
      Trace.record tr ~kind ~key ~outcome:Span.Stuck ~nodes:path ~level ();
      raise e

let collect overlay src step key =
  let max_hops = budget overlay in
  let rec go u acc hops =
    match step u with
    | None -> Route.{ nodes = Array.of_list (List.rev (u :: acc)) }
    | Some v ->
        if hops >= max_hops then raise (stuck u acc key hops);
        go v (u :: acc) (hops + 1)
  in
  go src [] 0

let collect_generic ~n src step key =
  let max_hops = n + 1 in
  let rec go u acc hops =
    match step u with
    | None -> Route.{ nodes = Array.of_list (List.rev (u :: acc)) }
    | Some v ->
        if hops >= max_hops then raise (stuck u acc key hops);
        go v (u :: acc) (hops + 1)
  in
  go src [] 0

let greedy_clockwise_generic ?trace ?(level = fun _ _ -> 0) ~n ~id ~links ~src ~key () =
  let step u =
    let du = Id.distance (id u) key in
    if du = 0 then None
    else begin
      (* Largest clockwise progress that does not overshoot the key:
         maximize distance(u, v) subject to distance(u, v) <= du,
         equivalently minimize distance(v, key). *)
      let best = ref (-1) and best_remaining = ref du in
      Array.iter
        (fun v ->
          let remaining = Id.distance (id v) key in
          if Id.distance (id u) (id v) <= du && remaining < !best_remaining then begin
            best := v;
            best_remaining := remaining
          end)
        (links u);
      if !best < 0 then None else Some !best
    end
  in
  match trace with
  | None -> collect_generic ~n src step key
  | Some tr ->
      traced tr ~kind:"greedy_clockwise_generic" ~key ~level (fun () ->
          collect_generic ~n src step key)

let greedy_clockwise ?trace overlay ~src ~key =
  match trace with
  | None ->
      greedy_clockwise_generic ~n:(Overlay.size overlay)
        ~id:(Overlay.id overlay)
        ~links:(Overlay.links overlay)
        ~src ~key ()
  | Some tr ->
      traced tr ~kind:"greedy_clockwise" ~key ~level:(level_of_edge overlay) (fun () ->
          greedy_clockwise_generic ~n:(Overlay.size overlay)
            ~id:(Overlay.id overlay)
            ~links:(Overlay.links overlay)
            ~src ~key ())

let greedy_clockwise_lookahead ?trace overlay ~src ~key =
  let step u =
    let du = Id.distance (Overlay.id overlay u) key in
    if du = 0 then None
    else begin
      (* Score of standing at [w]: remaining clockwise distance to the
         key. A first hop [v] is scored by the best reachable remaining
         distance among [v] itself and [v]'s no-overshoot neighbours. *)
      let remaining w = Id.distance (Overlay.id overlay w) key in
      let no_overshoot a b =
        Id.distance (Overlay.id overlay a) (Overlay.id overlay b) <= remaining a
      in
      let score v =
        let best = ref (remaining v) in
        Array.iter
          (fun w -> if no_overshoot v w && remaining w < !best then best := remaining w)
          (Overlay.links overlay v);
        !best
      in
      let best = ref (-1) and best_score = ref du and best_progress = ref (-1) in
      Array.iter
        (fun v ->
          if no_overshoot u v then begin
            let s = score v in
            let progress = du - remaining v in
            if s < !best_score || (s = !best_score && progress > !best_progress) then begin
              best := v;
              best_score := s;
              best_progress := progress
            end
          end)
        (Overlay.links overlay u);
      if !best < 0 then None else Some !best
    end
  in
  match trace with
  | None -> collect overlay src step key
  | Some tr ->
      traced tr ~kind:"greedy_clockwise_lookahead" ~key ~level:(level_of_edge overlay)
        (fun () -> collect overlay src step key)

let greedy_xor ?trace overlay ~src ~key =
  let step u =
    let du = Id.xor_distance (Overlay.id overlay u) key in
    if du = 0 then None
    else begin
      let best = ref (-1) and best_d = ref du in
      Array.iter
        (fun v ->
          let d = Id.xor_distance (Overlay.id overlay v) key in
          if d < !best_d then begin
            best := v;
            best_d := d
          end)
        (Overlay.links overlay u);
      if !best < 0 then None else Some !best
    end
  in
  match trace with
  | None -> collect overlay src step key
  | Some tr ->
      traced tr ~kind:"greedy_xor" ~key ~level:(level_of_edge overlay) (fun () ->
          collect overlay src step key)

type step_outcome = Forward of int | Arrived | Blocked

let step_clockwise_avoiding_generic ~id ~links ~dead ~at:u ~key =
  let du = Id.distance (id u) key in
  if du = 0 then Arrived
  else begin
    let lnks = links u in
    let best = ref (-1) and best_remaining = ref du in
    Array.iter
      (fun v ->
        if not (dead v) then begin
          let remaining = Id.distance (id v) key in
          if Id.distance (id u) (id v) <= du && remaining < !best_remaining then begin
            best := v;
            best_remaining := remaining
          end
        end)
      lnks;
    if !best >= 0 then Forward !best
    else if
      (* Blocked, not arrived: a dead link of [u] would have made
         progress, so a live owner closer to the key may exist but [u]
         cannot see it. *)
      Array.exists (fun v -> dead v && Id.distance (id u) (id v) <= du) lnks
    then Blocked
    else Arrived
  end

let step_clockwise_avoiding overlay ~dead ~at ~key =
  step_clockwise_avoiding_generic
    ~id:(fun v -> Overlay.id overlay v)
    ~links:(fun v -> Overlay.links overlay v)
    ~dead ~at ~key

let greedy_clockwise_avoiding ?trace overlay ~dead ~src ~key =
  if dead src then invalid_arg "Router.greedy_clockwise_avoiding: dead source";
  let max_hops = budget overlay in
  let step u =
    match step_clockwise_avoiding overlay ~dead ~at:u ~key with
    | Forward v -> Some v
    | Arrived | Blocked -> None
  in
  let record outcome nodes =
    match trace with
    | None -> ()
    | Some tr ->
        Trace.record tr ~kind:"greedy_clockwise_avoiding" ~key ~outcome ~nodes
          ~level:(level_of_edge overlay) ()
  in
  (* Unlike the infallible engines we must distinguish "arrived at the
     key's live predecessor among reachable nodes" from "stranded":
     stranded means a live link toward the key exists somewhere but this
     node cannot see it — detectable as: some dead link of [u] would
     have made progress. *)
  let rec go u acc hops =
    match step u with
    | Some v ->
        if hops >= max_hops then begin
          let path = Array.of_list (List.rev (u :: acc)) in
          record Span.Stuck path;
          raise (Stuck { at = u; key; hops; path })
        end;
        go v (u :: acc) (hops + 1)
    | None ->
        let blocked = step_clockwise_avoiding overlay ~dead ~at:u ~key = Blocked in
        let nodes = Array.of_list (List.rev (u :: acc)) in
        if blocked then begin
          record Span.Stranded nodes;
          None
        end
        else begin
          record Span.Arrived nodes;
          Some Route.{ nodes }
        end
  in
  go src [] 0
