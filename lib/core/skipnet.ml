open Canon_idspace
open Canon_overlay

type t = {
  pop : Population.t;
  rank_of_node : int array;
  node_of_rank : int array;
  (* pointers.(node) = per level, (left, right) name-neighbours among
     nodes sharing that many numeric-id bits; the list ends at the
     level where the node is alone. *)
  pointers : (int * int) array array;
}

let size t = Array.length t.rank_of_node

let name_rank t node = t.rank_of_node.(node)

let node_of_rank t rank = t.node_of_rank.(rank)

let build pop =
  let n = Population.size pop in
  if n = 0 then invalid_arg "Skipnet.build: empty population";
  let ids = pop.Population.ids in
  (* Name order: hierarchy (leaf) order, then node index. Leaves are
     numbered left-to-right in the tree, so every domain is one
     contiguous rank interval. *)
  let node_of_rank = Array.init n Fun.id in
  Array.sort
    (fun a b ->
      match Int.compare pop.Population.leaf_of_node.(a) pop.Population.leaf_of_node.(b) with
      | 0 -> Int.compare a b
      | c -> c)
    node_of_rank;
  let rank_of_node = Array.make n 0 in
  Array.iteri (fun rank node -> rank_of_node.(node) <- rank) node_of_rank;
  (* Recursively refine the name-ordered ring by numeric-id bits. *)
  let levels : (int * int) list array = Array.make n [] in
  let rec refine members bit =
    let k = Array.length members in
    if k >= 2 then begin
      Array.iteri
        (fun i node ->
          let left = members.((i + k - 1) mod k) and right = members.((i + 1) mod k) in
          levels.(node) <- (left, right) :: levels.(node))
        members;
      if bit < Id.bits then begin
        let zeros = Array.of_list (List.filter (fun m -> (ids.(m) lsr (Id.bits - 1 - bit)) land 1 = 0) (Array.to_list members)) in
        let ones = Array.of_list (List.filter (fun m -> (ids.(m) lsr (Id.bits - 1 - bit)) land 1 = 1) (Array.to_list members)) in
        refine zeros (bit + 1);
        refine ones (bit + 1)
      end
    end
  in
  refine node_of_rank 0;
  let pointers = Array.map (fun l -> Array.of_list (List.rev l)) levels in
  { pop; rank_of_node; node_of_rank; pointers }

let mean_degree t =
  let total = ref 0 in
  Array.iter
    (fun ptrs ->
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun (l, r) ->
          Hashtbl.replace seen l ();
          Hashtbl.replace seen r ())
        ptrs;
      total := !total + Hashtbl.length seen)
    t.pointers;
  Float.of_int !total /. Float.of_int (max 1 (size t))

let route_by_name t ~src ~dst =
  let target = t.rank_of_node.(dst) in
  let max_hops = size t + 1 in
  let rec go u acc hops =
    if u = dst then Route.{ nodes = Array.of_list (List.rev (u :: acc)) }
    else if hops >= max_hops then
      raise
        (Router.Stuck
           { at = u; key = target; hops; path = Array.of_list (List.rev (u :: acc)) })
    else begin
      let ru = t.rank_of_node.(u) in
      (* Best monotone step toward the target rank over all levels. *)
      let best = ref u and best_dist = ref (abs (target - ru)) in
      Array.iter
        (fun (l, r) ->
          let candidate = if target > ru then r else l in
          let rc = t.rank_of_node.(candidate) in
          (* monotone: candidate must lie in the open rank interval *)
          let between =
            if target > ru then rc > ru && rc <= target else rc < ru && rc >= target
          in
          if between && abs (target - rc) < !best_dist then begin
            best := candidate;
            best_dist := abs (target - rc)
          end)
        t.pointers.(u);
      if !best = u then
        raise
          (Router.Stuck
             { at = u; key = target; hops; path = Array.of_list (List.rev (u :: acc)) })
      else go !best (u :: acc) (hops + 1)
    end
  in
  go src [] 0

let route_by_numeric t ~src ~key =
  let ids = t.pop.Population.ids in
  let n = size t in
  let matches node bits =
    bits = 0 || Id.prefix ids.(node) bits = Id.prefix key bits
  in
  (* Climb: at [level] bits matched, walk clockwise (in name order)
     around the current level ring looking for a node matching one more
     bit; every step is a hop. Stop when a full circuit finds nobody
     better or all bits are matched. [path] is reversed, head = current. *)
  let ring_step level v =
    (* right pointer at [level] (ring of nodes matching [level] bits);
       a node alone at that level has no pointer. *)
    if Array.length t.pointers.(v) > level then Some (snd t.pointers.(v).(level)) else None
  in
  let rec climb u level path =
    if level >= Id.bits then List.rev path
    else begin
      let rec walk v path steps =
        if matches v (level + 1) then Some (v, path)
        else if steps >= n then None
        else
          match ring_step level v with
          | None -> None
          | Some next -> walk next (next :: path) (steps + 1)
      in
      match walk u path 0 with
      | Some (v, path') -> climb v (level + 1) path'
      | None -> List.rev path
    end
  in
  Route.{ nodes = Array.of_list (climb src 0 [ src ]) }
