(** Routing engines.

    All routing in the paper is greedy and memoryless: a node inspects
    only its own links (plus, with lookahead, its neighbours' links) and
    forwards. Three engines cover every system in the repository:

    - {!greedy_clockwise}: Chord, Crescendo, Symphony, Cacophony,
      nondeterministic Chord/Crescendo. Routes toward a key by taking
      the link that gets closest to the key clockwise without
      overshooting it; terminates at the key's closest predecessor
      among the reachable structure. Crescendo's hierarchical behaviour
      (§2.2) — intra-domain locality, inter-domain convergence — is an
      emergent property of this rule; no extra mechanism exists.
    - {!greedy_clockwise_lookahead}: Symphony/Cacophony's 1-lookahead
      variant (§3.1) that examines neighbours' neighbours and moves to
      the first hop of the best 2-hop pair.
    - {!greedy_xor}: Kademlia/Kandy/CAN/Can-Can bit-fixing: each hop
      must strictly decrease the XOR distance to the key; terminates at
      a local minimum (the key's owner when the adjacency is a valid
      hypercube structure).

    {2 Tracing}

    Every engine takes an optional [?trace] collector
    ({!Canon_telemetry.Trace.t}). When absent — the default — the
    engine behaves exactly as before and allocates nothing for
    telemetry; when present, one {!Canon_telemetry.Span} is offered to
    the collector per lookup (subject to the collector's sampling),
    carrying the full visited path, the hierarchy level of each link
    used (depth of the LCA domain of its endpoints), and cumulative
    physical latency when the collector holds a latency oracle. Routes
    that exceed the hop budget emit a [Stuck] span with the partial
    path before the exception propagates; {!greedy_clockwise_avoiding}
    additionally emits [Stranded] spans for lookups that die at a node
    with no live useful link. *)

open Canon_idspace
open Canon_overlay

exception
  Stuck of {
    at : int;
    key : Id.t;
    hops : int;
    path : int array;  (** nodes visited so far, source first, [at] last *)
  }
(** Raised when a route exceeds the hop budget — always a construction
    bug, never expected on a well-formed overlay. The partial path
    makes the broken route dumpable (and traceable) instead of lost. *)

val greedy_clockwise :
  ?trace:Canon_telemetry.Trace.t -> Overlay.t -> src:int -> key:Id.t -> Route.t
(** Route from [src] toward [key]; the path ends at the first node
    having no link that moves clockwise-closer to [key] without passing
    it. On any overlay whose every node links to its global successor,
    that final node is the global predecessor of [key]. *)

val greedy_clockwise_generic :
  ?trace:Canon_telemetry.Trace.t ->
  ?level:(int -> int -> int) ->
  n:int ->
  id:(int -> Id.t) ->
  links:(int -> int array) ->
  src:int ->
  key:Id.t ->
  unit ->
  Route.t
(** The same engine over any adjacency (used by the dynamic-maintenance
    simulator, whose link state is mutable). [n] bounds the hop budget.
    Traced spans use [level] for per-hop link levels (default: 0 for
    every edge — no hierarchy known). The trailing [unit] erases the
    optional arguments. *)

val greedy_clockwise_lookahead :
  ?trace:Canon_telemetry.Trace.t -> Overlay.t -> src:int -> key:Id.t -> Route.t
(** Same termination behaviour as {!greedy_clockwise} but each step
    picks the neighbour whose own best next step lands closest to the
    key (Symphony's "greedy routing with a lookahead"). *)

val greedy_xor :
  ?trace:Canon_telemetry.Trace.t -> Overlay.t -> src:int -> key:Id.t -> Route.t
(** Route by strictly decreasing XOR distance; ends where no link
    improves. *)

val greedy_clockwise_avoiding :
  ?trace:Canon_telemetry.Trace.t ->
  Overlay.t ->
  dead:(int -> bool) ->
  src:int ->
  key:Id.t ->
  Route.t option
(** Greedy clockwise routing that never forwards to a node for which
    [dead] is true (crashed, unrepaired). Returns [None] when the
    message strands at a node whose every useful link is dead — the
    quantity the fault-isolation experiment measures. [src] must be
    alive. *)

type step_outcome =
  | Forward of int  (** best live no-overshoot link toward the key *)
  | Arrived  (** no node in [(at, key]] is linked at all: [at] is the
                 key's predecessor among the reachable structure *)
  | Blocked  (** every useful link is dead — a live owner may exist but
                 [at] cannot see it (the stranded condition) *)

val step_clockwise_avoiding :
  Overlay.t -> dead:(int -> bool) -> at:int -> key:Id.t -> step_outcome
(** One step of {!greedy_clockwise_avoiding}: what the node [at] does
    with a message for [key] given its local knowledge of dead nodes.
    Exposed so that message-level simulations ([canon_net]) can drive
    the same forwarding rule hop by hop, interleaved with timeouts and
    retries, instead of routing a whole path at once. *)

val step_clockwise_avoiding_generic :
  id:(int -> Id.t) ->
  links:(int -> int array) ->
  dead:(int -> bool) ->
  at:int ->
  key:Id.t ->
  step_outcome
(** {!step_clockwise_avoiding} over caller-supplied [id]/[links]
    accessors instead of a frozen {!Overlay.t} — the hop decision a node
    makes against {e live} link state, e.g. a membership view mutated by
    churn while messages are in flight. The overlay version is this with
    [Overlay.id]/[Overlay.links]. *)

val level_of_edge : Overlay.t -> int -> int -> int
(** [level_of_edge overlay u v] is the hierarchy depth of the link
    (u, v): the depth of the lowest common ancestor domain of the two
    endpoints (0 = top-level link). Exposed for instrumentation built
    outside this module. *)
