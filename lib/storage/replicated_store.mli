(** A replicated key-value layer over the per-domain rings: every pair
    is written through to the [k] holders chosen by {!Replica_set}, and
    reads repair what faults left behind.

    Versioning is per key: each acknowledged [put] bumps the key's
    version, and a replica holding an older version (or no copy at all)
    is {e stale}. The store runs in one of two modes:

    - {e direct} (no network): replicas are contacted instantly. This is
      the membership-churn mode — {!join} and {!leave} mutate the rings
      and re-replicate every key whose holder set changed, modelling the
      §2.3 maintenance channel (a leaving node hands its data off before
      departing; a crash is modelled in net mode instead).
    - {e net} ([?net] given): every replica contact from a reader or
      writer is a {!Canon_net.Net.lookup} for the replica's own id on
      the simulated network, so crashes, loss and timeouts decide
      reachability. A crashed holder is skipped by placement; when it
      revives holding an old version, the next read finds the freshest
      reachable copy, {e read-repairs} the stale replica, and garbage-
      collects copies left at nodes no longer in the holder set.

    Telemetry (all counters, under [replication.*]): [puts],
    [write_acks] (one per replica written), [reads], [read_failures]
    (no reachable copy), [stale_reads] (reads that observed at least one
    stale or missing replica), [read_repairs] (replica copies rewritten
    by reads), [rereplications] (copies moved by churn), [gc_copies]
    (copies dropped from ex-holders).

    The replica-count invariant maintained by writes, reads-with-repair
    and churn re-replication — every key has exactly
    [min k live_nodes] distinct live replica holders — is pinned by the
    property suite ([test/prop.ml]). *)

open Canon_idspace
open Canon_overlay

type t

val create :
  ?net:Canon_net.Net.t -> ?k:int -> ?spread:Replica_set.spread -> Rings.t -> t
(** An empty replicated store over the population of [rings] with
    replication degree [k] (default 2) and placement policy [spread]
    (default {!Replica_set.Sibling}). Nodes present in their leaf ring
    are the initial members. When [net] is given its plan must cover the
    same population, and {!join}/{!leave} are disabled (fault injection
    drives membership instead). Raises [Invalid_argument] on [k < 1] or
    a net size mismatch. *)

val rings : t -> Rings.t

val k : t -> int

val spread : t -> Replica_set.spread

val members : t -> int array
(** Present (joined, not left) nodes in increasing order — crashes in
    the net's fault plan do {e not} remove membership. *)

val live : t -> int -> bool
(** Present and not crashed in the net's fault plan. *)

val put :
  t -> writer:int -> key:Id.t -> value:string -> storage_domain:int -> int
(** Writes the pair through to every reachable replica holder and
    returns the number of acknowledgements (replicas written). The write
    is {e acknowledged} — its version committed, the value promised
    durable — iff the result is positive. Raises [Invalid_argument]
    when the writer is not live, the storage domain does not contain the
    writer's leaf, or the key is already bound to a different storage
    domain. *)

val get : t -> querier:int -> key:Id.t -> string option
(** The freshest value any reachable replica holds, or [None] for an
    unknown key or when no replica is reachable. Before returning, every
    reachable current holder is brought up to the returned version
    (read-repair); reachable ex-holders drop their copies only once at
    least one current holder was reachable (and hence repaired), so a
    read never destroys the last copy of an acknowledged write. Raises
    [Invalid_argument] when the querier is not live. *)

val holders : t -> key:Id.t -> int array
(** The key's current ideal replica set ({!Replica_set.compute} over the
    live membership); [[||]] for an unknown key. *)

val copies : t -> key:Id.t -> int array
(** Nodes actually holding a copy right now (including crashed ones,
    whose copies survive the crash), in increasing order. This is the
    ground truth the durability experiment counts. *)

val stored : t -> node:int -> key:Id.t -> (string * int) option
(** The copy (value, version) [node] holds, if any. For tests. *)

val version : t -> key:Id.t -> int
(** The key's highest acknowledged version; 0 when unknown. *)

val join : t -> int -> unit
(** Adds a population node to the membership and rings, then
    re-replicates: keys whose holder set now includes the newcomer get a
    copy, and ex-holders drop theirs. Direct mode only. Raises
    [Invalid_argument] in net mode or when already present. *)

val leave : t -> int -> unit
(** Graceful departure: removes the node from membership and rings,
    re-replicates every key it held (the §2.3 hand-off — its copies act
    as sources before being dropped). Direct mode only. Raises
    [Invalid_argument] in net mode or when not present. *)

val churn_hook : t -> Canon_sim.Churn.hook -> unit
(** Adapter wiring {!Canon_sim.Churn} into the store: feed it the
    events of [Churn.run ~on_event] and membership tracks the churned
    overlay — [Init] (re)joins any initially-present node not yet a
    member, [Join]/[Leave] call {!join}/{!leave}. *)
