(** Replica placement for the hierarchical store.

    A key stored in domain [Ds] has a {e primary} — the node of [Ds]
    responsible for the key under the paper's closest-at-or-below rule
    ({!Canon_overlay.Rings.responsible}) — plus [k - 1] extra replicas.
    Two placement policies:

    - {e flat} (Chord §successor-list replication): the replicas are the
      first live nodes met walking clockwise from the primary {e within
      [Ds]'s own ring}. Cheap and local, but a whole-domain outage
      ([Fault_plan.crash_domain]) takes every copy with it.
    - {e sibling} (the Canon twist): after the primary, each further
      replica is forced into a {e distinct leaf domain}, visiting the
      primary's sibling domains nearest-first (siblings under the
      parent, then under the grandparent, and so on). Each chosen leaf
      contributes its own responsible-or-next-live node for the key.
      When the live leaf domains run out before [k], the remainder is
      filled from the global ring — so the policy degrades to flat
      rather than under-replicating.

    Both policies are deterministic (no randomness) and return distinct
    live nodes, primary-equivalent first. The invariants pinned by the
    property suite:

    - [length (compute ...)] = [min k live] where [live] counts the
      policy's universe (the domain's live members for flat, all live
      nodes for sibling);
    - under [Sibling], the holders occupy
      [min (length holders) (live leaf domains)] distinct leaf domains —
      no two forced-spread replicas share a leaf. *)

open Canon_idspace
open Canon_overlay

type spread =
  | Flat  (** k-successor replication inside the storage domain's ring *)
  | Sibling  (** one replica per distinct leaf domain, siblings first *)

val spread_to_string : spread -> string
(** ["flat"] / ["sibling"]. *)

val spread_of_string : string -> spread option

val compute :
  ?alive:(int -> bool) ->
  Rings.t ->
  spread:spread ->
  k:int ->
  domain:int ->
  key:Id.t ->
  int array
(** [compute rings ~spread ~k ~domain ~key] is the ordered replica set
    for [key] stored in [domain]: distinct nodes for which [alive] holds
    (default: everyone), the primary (or its first live stand-in) first,
    at most [k] of them. Fewer than [k] are returned exactly when the
    policy's universe has fewer than [k] live nodes; an empty array when
    it has none. Raises [Invalid_argument] when [k < 1] or [domain] is
    out of range. *)
