open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_net
module Metrics = Canon_telemetry.Metrics

let puts_counter = Metrics.counter "replication.puts"

let acks_counter = Metrics.counter "replication.write_acks"

let reads_counter = Metrics.counter "replication.reads"

let read_failures_counter = Metrics.counter "replication.read_failures"

let stale_reads_counter = Metrics.counter "replication.stale_reads"

let read_repairs_counter = Metrics.counter "replication.read_repairs"

let rereplications_counter = Metrics.counter "replication.rereplications"

let gc_counter = Metrics.counter "replication.gc_copies"

type entry = {
  value : string;
  version : int;
}

type meta = {
  storage_domain : int;
  mutable version : int;  (* highest acknowledged version *)
  mutable copies : int list;  (* nodes believed to hold a copy, sorted *)
}

type t = {
  rings : Rings.t;
  pop : Population.t;
  k : int;
  spread : Replica_set.spread;
  net : Net.t option;
  present : bool array;
  tables : (Id.t, entry) Hashtbl.t array;
  directory : (Id.t, meta) Hashtbl.t;
}

let create ?net ?(k = 2) ?(spread = Replica_set.Sibling) rings =
  if k < 1 then invalid_arg "Replicated_store.create: k must be >= 1";
  let pop = Rings.population rings in
  let n = Population.size pop in
  (match net with
  | Some net when Fault_plan.size (Net.plan net) <> n ->
      invalid_arg "Replicated_store.create: net population mismatch"
  | _ -> ());
  let present =
    Array.init n (fun v ->
        Ring.contains
          (Rings.ring rings pop.Population.leaf_of_node.(v))
          pop.Population.ids.(v))
  in
  {
    rings;
    pop;
    k;
    spread;
    net;
    present;
    tables = Array.init n (fun _ -> Hashtbl.create 16);
    directory = Hashtbl.create 64;
  }

let rings t = t.rings

let k t = t.k

let spread t = t.spread

let live t v =
  t.present.(v)
  &&
  match t.net with
  | None -> true
  | Some net -> not (Fault_plan.is_crashed (Net.plan net) v)

let members t =
  let out = ref [] in
  for v = Array.length t.present - 1 downto 0 do
    if t.present.(v) then out := v :: !out
  done;
  Array.of_list !out

(* Can [src] contact replica [target] right now? Direct mode: any live
   node. Net mode: a lookup for the target's own id must terminate at
   the target — crashes, loss and timeouts along the way decide. *)
let reachable t ~src target =
  live t target
  && (target = src
     ||
     match t.net with
     | None -> true
     | Some net ->
         let r = Net.lookup net ~src ~key:t.pop.Population.ids.(target) in
         Async_route.delivered r
         && Route.destination r.Async_route.route = target)

let holders_of t meta ~key =
  Replica_set.compute ~alive:(live t) t.rings ~spread:t.spread ~k:t.k
    ~domain:meta.storage_domain ~key

let holders t ~key =
  match Hashtbl.find_opt t.directory key with
  | None -> [||]
  | Some meta -> holders_of t meta ~key

let copies t ~key =
  match Hashtbl.find_opt t.directory key with
  | None -> [||]
  | Some meta -> Array.of_list meta.copies

let stored t ~node ~key =
  match Hashtbl.find_opt t.tables.(node) key with
  | None -> None
  | Some e -> Some (e.value, e.version)

let version t ~key =
  match Hashtbl.find_opt t.directory key with None -> 0 | Some m -> m.version

let add_copy meta node =
  if not (List.mem node meta.copies) then
    meta.copies <- List.sort compare (node :: meta.copies)

let drop_copy meta node = meta.copies <- List.filter (( <> ) node) meta.copies

let put t ~writer ~key ~value ~storage_domain =
  if not (live t writer) then invalid_arg "Replicated_store.put: writer not live";
  if
    not
      (Domain_tree.is_ancestor t.pop.Population.tree ~anc:storage_domain
         ~desc:t.pop.Population.leaf_of_node.(writer))
  then invalid_arg "Replicated_store.put: storage domain does not contain the writer";
  let meta =
    match Hashtbl.find_opt t.directory key with
    | Some m ->
        if m.storage_domain <> storage_domain then
          invalid_arg "Replicated_store.put: key already bound to another storage domain";
        m
    | None ->
        let m = { storage_domain; version = 0; copies = [] } in
        Hashtbl.replace t.directory key m;
        m
  in
  Metrics.incr puts_counter;
  let next_version = meta.version + 1 in
  let acks = ref 0 in
  Array.iter
    (fun h ->
      if reachable t ~src:writer h then begin
        Hashtbl.replace t.tables.(h) key { value; version = next_version };
        add_copy meta h;
        incr acks
      end)
    (holders_of t meta ~key);
  if !acks > 0 then meta.version <- next_version;
  Metrics.add acks_counter !acks;
  !acks

let get t ~querier ~key =
  if not (live t querier) then invalid_arg "Replicated_store.get: querier not live";
  Metrics.incr reads_counter;
  match Hashtbl.find_opt t.directory key with
  | None ->
      Metrics.incr read_failures_counter;
      None
  | Some meta ->
      let hs = holders_of t meta ~key in
      let is_holder = Hashtbl.create 8 in
      Array.iter (fun h -> Hashtbl.replace is_holder h ()) hs;
      (* Live copies outside the holder set still count for freshness,
         and get garbage-collected once the holders are repaired. *)
      let extras =
        List.filter (fun v -> live t v && not (Hashtbl.mem is_holder v)) meta.copies
      in
      let probe v = (v, reachable t ~src:querier v, Hashtbl.find_opt t.tables.(v) key) in
      let probed_holders = Array.map probe hs in
      let probed_extras = List.map probe extras in
      let best = ref (None : entry option) in
      let consider ((_, ok, e) : int * bool * entry option) =
        match (ok, e) with
        | true, Some e -> (
            match !best with
            | Some b when b.version >= e.version -> ()
            | _ -> best := Some e)
        | _ -> ()
      in
      Array.iter consider probed_holders;
      List.iter consider probed_extras;
      (match !best with
      | None ->
          Metrics.incr read_failures_counter;
          None
      | Some fresh ->
          (* Read-repair: reachable holders missing the value or behind
             the freshest version are rewritten. *)
          let stale = ref 0 in
          Array.iter
            (fun ((h, ok, e) : int * bool * entry option) ->
              if ok then
                let behind =
                  match e with None -> true | Some e -> e.version < fresh.version
                in
                if behind then begin
                  incr stale;
                  Hashtbl.replace t.tables.(h) key fresh;
                  add_copy meta h;
                  Metrics.incr read_repairs_counter
                end)
            probed_holders;
          if !stale > 0 then Metrics.incr stale_reads_counter;
          (* GC: reachable copies at nodes no longer in the holder set —
             but only once the fresh version is re-homed on a reachable
             holder (the repair loop above just did so). With every
             holder unreachable an extra may hold the only copy of the
             acknowledged version; collecting it would destroy the
             write the read just returned. *)
          let rehomed =
            Array.exists
              (fun ((_, ok, _) : int * bool * entry option) -> ok)
              probed_holders
          in
          if rehomed then
            List.iter
              (fun (v, ok, _) ->
                if ok then begin
                  Hashtbl.remove t.tables.(v) key;
                  drop_copy meta v;
                  Metrics.incr gc_counter
                end)
              probed_extras;
          Some fresh.value)

(* Re-replication after a membership change (the §2.3 maintenance
   channel — contacts are direct, not simulated lookups). [handoff] is a
   gracefully departing node: its copies serve as sources one last time,
   then are dropped. *)
let rereplicate ?handoff t =
  let is_handoff v = match handoff with Some h -> h = v | None -> false in
  Hashtbl.iter
    (fun key meta ->
      let hs = holders_of t meta ~key in
      let is_holder = Hashtbl.create 8 in
      Array.iter (fun h -> Hashtbl.replace is_holder h ()) hs;
      let best = ref (None : entry option) in
      List.iter
        (fun v ->
          if live t v || is_handoff v then
            match Hashtbl.find_opt t.tables.(v) key with
            | Some e -> (
                match !best with
                | Some b when b.version >= e.version -> ()
                | _ -> best := Some e)
            | None -> ())
        meta.copies;
      (match !best with
      | None -> () (* no live copy anywhere: the key is lost *)
      | Some fresh ->
          Array.iter
            (fun h ->
              let behind =
                match Hashtbl.find_opt t.tables.(h) key with
                | None -> true
                | Some e -> e.version < fresh.version
              in
              if behind then begin
                Hashtbl.replace t.tables.(h) key fresh;
                add_copy meta h;
                Metrics.incr rereplications_counter
              end)
            hs);
      (* Ex-holders drop their copies; copies at crashed nodes linger
         until a read reaches them. *)
      List.iter
        (fun v ->
          if (not (Hashtbl.mem is_holder v)) && (live t v || is_handoff v) then begin
            Hashtbl.remove t.tables.(v) key;
            drop_copy meta v;
            Metrics.incr gc_counter
          end)
        meta.copies)
    t.directory

let check_direct t fn =
  if t.net <> None then
    invalid_arg
      (Printf.sprintf
         "Replicated_store.%s: membership churn is direct-mode only (use the fault \
          plan in net mode)"
         fn)

let join t v =
  check_direct t "join";
  if v < 0 || v >= Array.length t.present then
    invalid_arg "Replicated_store.join: node out of range";
  if t.present.(v) then invalid_arg "Replicated_store.join: node already present";
  t.present.(v) <- true;
  Rings.add_node t.rings v;
  rereplicate t

let leave t v =
  check_direct t "leave";
  if v < 0 || v >= Array.length t.present then
    invalid_arg "Replicated_store.leave: node out of range";
  if not t.present.(v) then invalid_arg "Replicated_store.leave: node not present";
  t.present.(v) <- false;
  Rings.remove_node t.rings v;
  rereplicate ~handoff:v t

let churn_hook t = function
  | Canon_sim.Churn.Init initial ->
      Array.iter (fun v -> if not t.present.(v) then join t v) initial
  | Canon_sim.Churn.Join v -> join t v
  | Canon_sim.Churn.Leave v -> leave t v
