open Canon_idspace
open Canon_hierarchy
open Canon_overlay

type spread =
  | Flat
  | Sibling

let spread_to_string = function Flat -> "flat" | Sibling -> "sibling"

let spread_of_string = function
  | "flat" -> Some Flat
  | "sibling" -> Some Sibling
  | _ -> None

(* Rank of the member responsible for [key] under the paper's
   closest-at-or-below rule (the rank-level twin of
   [Ring.predecessor_of_id]). Requires a non-empty ring. *)
let responsible_rank ring ~key =
  let size = Ring.size ring in
  let r = Ring.rank_at_or_after ring key in
  if r < size && Id.equal (Ring.id_at ring r) key then r
  else (r - 1 + size) mod size

(* Walk [ring] clockwise starting at the LIVE member responsible for
   [key], offering each live, not-yet-taken member to [f]; stop after
   one full turn or when [f] returns [false].

   When the full-ring responsible is dead, the walk starts at the
   nearest live member counter-clockwise from it — the node that IS
   responsible on the ring restricted to live members. This keeps
   placement identical to what re-replication converges to once the
   dead members are actually removed from the ring. *)
let walk_ring ring ~key ~alive ~taken f =
  let size = Ring.size ring in
  if size > 0 then begin
    let r0 = ref (responsible_rank ring ~key) in
    let back = ref 0 in
    while !back < size && not (alive (Ring.node_at ring !r0)) do
      r0 := (!r0 - 1 + size) mod size;
      incr back
    done;
    let continue = ref true in
    let i = ref 0 in
    while !continue && !i < size do
      let v = Ring.node_at ring ((!r0 + !i) mod size) in
      if alive v && not (Hashtbl.mem taken v) then continue := f v;
      incr i
    done
  end

(* Every leaf domain except [from_leaf], ordered by hierarchical
   closeness to it: leaves under the parent's other children first, then
   under the grandparent's, and so on up to the root. *)
let leaf_sequence tree ~from_leaf =
  let out = ref [] in
  let root = Domain_tree.root tree in
  let d = ref from_leaf in
  while !d <> root do
    let p = Domain_tree.parent tree !d in
    Array.iter
      (fun c ->
        if c <> !d then
          Array.iter (fun l -> out := l :: !out) (Domain_tree.subtree_leaves tree c))
      (Domain_tree.children tree p);
    d := p
  done;
  List.rev !out

let compute ?(alive = fun _ -> true) rings ~spread ~k ~domain ~key =
  if k < 1 then invalid_arg "Replica_set.compute: k must be >= 1";
  let pop = Rings.population rings in
  let tree = pop.Population.tree in
  if domain < 0 || domain >= Domain_tree.num_domains tree then
    invalid_arg "Replica_set.compute: domain out of range";
  let taken = Hashtbl.create 8 in
  let holders = ref [] in
  let count = ref 0 in
  let take v =
    Hashtbl.replace taken v ();
    holders := v :: !holders;
    incr count
  in
  let first_live ring =
    let found = ref None in
    walk_ring ring ~key ~alive ~taken (fun v ->
        found := Some v;
        false);
    !found
  in
  (match spread with
  | Flat ->
      walk_ring (Rings.ring rings domain) ~key ~alive ~taken (fun v ->
          take v;
          !count < k)
  | Sibling ->
      let primary = first_live (Rings.ring rings domain) in
      let used_leaves = Hashtbl.create 8 in
      let start_leaf =
        match primary with
        | Some p ->
            take p;
            let l = pop.Population.leaf_of_node.(p) in
            Hashtbl.replace used_leaves l ();
            l
        | None ->
            (* The whole storage domain is dead or empty: spread from its
               leftmost leaf as if the primary had lived there. *)
            (Domain_tree.subtree_leaves tree domain).(0)
      in
      (* One replica per distinct leaf domain, nearest siblings first. *)
      List.iter
        (fun l ->
          if !count < k && not (Hashtbl.mem used_leaves l) then
            match first_live (Rings.ring rings l) with
            | Some v ->
                take v;
                Hashtbl.replace used_leaves l ()
            | None -> ())
        (leaf_sequence tree ~from_leaf:start_leaf);
      (* More replicas wanted than live leaf domains: degrade to flat on
         the global ring rather than under-replicate. *)
      if !count < k then
        walk_ring (Rings.ring rings (Domain_tree.root tree)) ~key ~alive ~taken
          (fun v ->
            take v;
            !count < k));
  Array.of_list (List.rev !holders)
