open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
module Metrics = Canon_telemetry.Metrics

(* Hit counters keyed by the level annotation of the copy served: a
   hit at level k answered from the proxy of a depth-k domain. The
   registry get-or-create is a hash lookup, so memoise per level. *)
let hit_counter =
  let table = Hashtbl.create 8 in
  fun level ->
    match Hashtbl.find_opt table level with
    | Some c -> c
    | None ->
        let c = Metrics.counter (Printf.sprintf "cache.hit.level%d" level) in
        Hashtbl.replace table level c;
        c

let miss_counter = Metrics.counter "cache.miss"

let unanswered_counter = Metrics.counter "cache.unanswered"

type entry = {
  value : string;
  access_domain : int;
  mutable level : int;
  mutable last_used : int;
}

type t = {
  rings : Rings.t;
  capacity : int;
  caches : (Id.t, entry) Hashtbl.t array;
  mutable clock : int;
}

type result = {
  value : string;
  path : Route.t;
  served_from_cache : bool;
  found_at : int;
}

let create rings ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  let n = Population.size (Rings.population rings) in
  { rings; capacity; caches = Array.init n (fun _ -> Hashtbl.create 8); clock = 0 }

let proxy t ~domain ~key =
  let ring = Rings.ring t.rings domain in
  if Ring.size ring = 0 then invalid_arg "Cache.proxy: empty domain";
  Ring.predecessor_of_id ring key

let tick t =
  t.clock <- t.clock + 1;
  t.clock

(* Evict, preferring larger level numbers (deeper, narrower copies),
   breaking ties by least-recent use. *)
let evict_one t node =
  let cache = t.caches.(node) in
  let victim = ref None in
  Hashtbl.iter
    (fun key e ->
      match !victim with
      | None -> victim := Some (key, e)
      | Some (_, best) ->
          if e.level > best.level || (e.level = best.level && e.last_used < best.last_used)
          then victim := Some (key, e))
    cache;
  match !victim with
  | None -> ()
  | Some (key, _) -> Hashtbl.remove cache key

let cache_at t node key ~value ~access_domain ~level =
  if t.capacity > 0 then begin
    let cache = t.caches.(node) in
    match Hashtbl.find_opt cache key with
    | Some existing ->
        (* A node proxying several levels labels itself with the
           smallest (widest-serving) one. *)
        existing.level <- min existing.level level;
        existing.last_used <- tick t
    | None ->
        if Hashtbl.length cache >= t.capacity then evict_one t node;
        Hashtbl.replace cache key { value; access_domain; level; last_used = tick t }
  end

let visible t ~querier ~at entry =
  let pop = Rings.population t.rings in
  let tree = pop.Population.tree in
  Domain_tree.is_ancestor tree ~anc:entry.access_domain
    ~desc:(Population.lca_of_nodes pop querier at)

let cache_hit t ~querier ~key node =
  match Hashtbl.find_opt t.caches.(node) key with
  | Some entry when visible t ~querier ~at:node entry ->
      entry.last_used <- tick t;
      Some entry
  | Some _ | None -> None

let query t store overlay ~querier ~key =
  let pop = Rings.population t.rings in
  let tree = pop.Population.tree in
  let route =
    Router.greedy_clockwise ?trace:(Canon_telemetry.Trace.ambient ()) overlay ~src:querier ~key
  in
  let nodes = route.Route.nodes in
  let rec find i =
    if i >= Array.length nodes then None
    else begin
      let node = nodes.(i) in
      match cache_hit t ~querier ~key node with
      | Some entry ->
          Metrics.incr (hit_counter entry.level);
          Some (i, entry.value, entry.access_domain, true)
      | None -> (
          match Store.probe store ~querier ~key ~node with
          | Some (value, access_domain) ->
              Metrics.incr miss_counter;
              Some (i, value, access_domain, false)
          | None -> find (i + 1))
    end
  in
  match find 0 with
  | None ->
      Metrics.incr unanswered_counter;
      None
  | Some (i, value, access_domain, from_cache) ->
      let found_at = nodes.(i) in
      let path = Route.{ nodes = Array.sub nodes 0 (i + 1) } in
      (* Populate the proxies of every domain of the querier's chain
         strictly deeper than the level the answer was found at. *)
      let answer_depth = Domain_tree.depth tree (Population.lca_of_nodes pop querier found_at) in
      let chain = Rings.chain t.rings querier in
      Array.iter
        (fun domain ->
          let depth = Domain_tree.depth tree domain in
          if depth > answer_depth && Ring.size (Rings.ring t.rings domain) > 0 then begin
            let p = proxy t ~domain ~key in
            cache_at t p key ~value ~access_domain ~level:depth
          end)
        chain;
      Some { value; path; served_from_cache = from_cache; found_at }

let cached_levels t ~node ~key =
  match Hashtbl.find_opt t.caches.(node) key with
  | None -> []
  | Some entry -> [ entry.level ]

let entries t ~node = Hashtbl.length t.caches.(node)
