open Canon_idspace
open Canon_overlay
open Canon_storage
open Canon_net
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let config_label (spread, k) =
  Printf.sprintf "%s k=%d" (Replica_set.spread_to_string spread) k

(* One store per (spread, k) configuration, all over the same rings and
   holding the same keys. *)
let build_stores rings ~configs ~published =
  List.map
    (fun (spread, k) ->
      let store = Replicated_store.create ~k ~spread rings in
      Array.iter
        (fun (publisher, key, storage_domain) ->
          ignore
            (Replicated_store.put store ~writer:publisher ~key ~value:"x"
               ~storage_domain))
        published;
      store)
    configs

(* A key survives a crash set iff some copy holder is still standing. *)
let surviving_fraction store ~published ~crashed =
  let ok = ref 0 in
  Array.iter
    (fun (_, key, _) ->
      if Array.exists (fun c -> not crashed.(c)) (Replicated_store.copies store ~key)
      then incr ok)
    published;
  Float.of_int !ok /. Float.of_int (Array.length published)

let run_with ?(fail_fracs = [ 0.1; 0.2; 0.3; 0.5 ])
    ?(ks = [ 2; 3 ]) ?(spreads = [ Replica_set.Flat; Replica_set.Sibling ]) ?n ?keys
    ~scale ~seed () =
  if ks = [] || spreads = [] then
    invalid_arg "Durability.run_with: empty configuration";
  List.iter (fun k -> if k < 1 then invalid_arg "Durability.run_with: k < 1") ks;
  let n =
    match (n, scale) with Some n, _ -> n | None, `Paper -> 4096 | None, `Quick -> 256
  in
  let keys =
    match (keys, scale) with
    | Some k, _ -> k
    | None, `Paper -> 2000
    | None, `Quick -> 400
  in
  if n < 1 then invalid_arg "Durability.run_with: n < 1";
  if keys < 1 then invalid_arg "Durability.run_with: keys < 1";
  let pop = Common.hierarchy_population ~seed ~levels:2 ~n in
  let rings = Rings.build pop in
  let configs = List.concat_map (fun s -> List.map (fun k -> (s, k)) ks) spreads in
  (* The published set: distinct random keys, each stored in its
     publisher's own leaf domain (the tightest storage domain — the case
     flat successor-replication cannot spread). *)
  let rng = Rng.create (seed + 17) in
  let seen = Hashtbl.create keys in
  let published =
    Array.init keys (fun _ ->
        let publisher = Rng.int_below rng n in
        let rec fresh () =
          let key = Id.random rng in
          if Hashtbl.mem seen key then fresh ()
          else begin
            Hashtbl.replace seen key ();
            key
          end
        in
        (publisher, fresh (), pop.Population.leaf_of_node.(publisher)))
  in
  let stores = build_stores rings ~configs ~published in
  (* The outage target: the leaf domain storing the most keys. *)
  let key_count = Hashtbl.create 16 in
  Array.iter
    (fun (_, _, d) ->
      Hashtbl.replace key_count d (1 + Option.value ~default:0 (Hashtbl.find_opt key_count d)))
    published;
  let outage_domain, outage_keys =
    Hashtbl.fold
      (fun d c ((_, best_c) as best) -> if c > best_c then (d, c) else best)
      key_count (-1, 0)
  in
  let outage_members = Ring.members (Rings.ring rings outage_domain) in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Durability: keys-surviving fraction vs crashed-node fraction (n = %d, %d \
            keys, outage = leaf domain of %d nodes holding %d keys)"
           n keys (Array.length outage_members) outage_keys)
      ~columns:("fail frac" :: List.map config_label configs)
  in
  let add_row label crashed =
    Table.add_float_row table label
      (List.map (fun store -> surviving_fraction store ~published ~crashed) stores)
  in
  List.iter
    (fun frac ->
      let rng = Rng.create (seed + 1 + int_of_float (frac *. 1000.0)) in
      let plan = Fault_plan.none ~n in
      Fault_plan.crash_random plan rng ~fraction:frac ();
      let crashed = Array.init n (Fault_plan.is_crashed plan) in
      add_row (Printf.sprintf "%.0f%%" (frac *. 100.0)) crashed)
    fail_fracs;
  let plan = Fault_plan.none ~n in
  Fault_plan.crash_domain plan pop ~domain:outage_domain;
  add_row "outage" (Array.init n (Fault_plan.is_crashed plan));
  table

let run ~scale ~seed = run_with ~scale ~seed ()
