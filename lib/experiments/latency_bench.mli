(** Setup-cost benchmark for the latency oracle: eager all-pairs
    Dijkstra table vs the lazy memoized oracle, on transit-stub
    topologies scaled to 4096/16384/65536 routers (1024/4096 at quick
    scale).

    For each size: eager [Latency.create_eager] wall time (measured up
    to 4096 routers, estimated from the observed per-row Dijkstra cost
    beyond — the whole point is that the eager table stops being
    runnable), lazy [Latency.create] time (O(1)), the time for 1000
    random node-latency lookups, the number of rows those lookups
    actually computed, and the resident-memory comparison (full V^2
    matrix vs computed rows x V). *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
