open Canon_topology
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

(* Scale the transit-stub generator to approximately [routers] routers
   by widening the stub domains; the transit skeleton (10 x 4 transit
   nodes, 5 stub domains each = 200 stub domains by default) is kept, so
   the latency-class structure stays the paper's. *)
let scaled_params ~routers =
  let p = Transit_stub.default_params in
  let transit = p.Transit_stub.transit_domains * p.Transit_stub.transit_nodes_per_domain in
  let domains = transit * p.Transit_stub.stub_domains_per_transit_node in
  let per_domain = max 1 ((routers - transit + domains - 1) / domains) in
  { p with Transit_stub.stub_routers_per_domain = per_domain }

let time f =
  let t0 = Sys.time () in
  let x = f () in
  (x, Sys.time () -. t0)

let mib_of_rows ~rows ~routers = Float.of_int rows *. Float.of_int routers *. 8.0 /. 1048576.0

(* Eager setup is only measured where it is affordable; past the cutoff
   it is skipped and estimated as routers x the mean per-row Dijkstra
   time observed on the lazy oracle's actual rows. The cutoff sits just
   above the 4096-target instance (4240 routers with the default
   transit skeleton) so the smallest paper-scale row is measured. *)
let eager_cutoff = 4500

let sizes = function
  | `Paper -> [ 4096; 16384; 65536 ]
  | `Quick -> [ 1024; 4096 ]

let lookups = 1000

let run ~scale ~seed =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Latency oracle: eager all-pairs vs lazy memoized setup (%d random lookups, \
            eager measured up to %d routers)"
           lookups eager_cutoff)
      ~columns:
        [
          "routers";
          "eager create s";
          "lazy create s";
          "lookups s";
          "rows";
          "eager MiB";
          "lazy MiB";
        ]
  in
  List.iter
    (fun routers ->
      let rng = Rng.create (seed + routers) in
      let ts = Transit_stub.generate rng (scaled_params ~routers) in
      let n = Transit_stub.num_routers ts in
      let stubs = Transit_stub.stub_routers ts in
      let lat, create_s = time (fun () -> Latency.create ts) in
      let (), lookups_s =
        time (fun () ->
            for _ = 1 to lookups do
              let a = Rng.pick rng stubs and b = Rng.pick rng stubs in
              ignore (Latency.node_latency lat a b)
            done)
      in
      let st = Latency.stats lat in
      let eager_cell =
        if n <= eager_cutoff then
          let _, eager_s = time (fun () -> Latency.create_eager ts) in
          Printf.sprintf "%.3f" eager_s
        else
          let per_row = lookups_s /. Float.of_int (max 1 st.Latency.rows_computed) in
          Printf.sprintf "~%.1f (est)" (per_row *. Float.of_int n)
      in
      Table.add_row table
        [
          string_of_int n;
          eager_cell;
          Printf.sprintf "%.6f" create_s;
          Printf.sprintf "%.3f" lookups_s;
          string_of_int st.Latency.rows_computed;
          Printf.sprintf "%.1f" (mib_of_rows ~rows:n ~routers:n);
          Printf.sprintf "%.1f" (mib_of_rows ~rows:st.Latency.rows_resident ~routers:n);
        ])
    (sizes scale);
  table
