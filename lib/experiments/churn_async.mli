(** Churn × async: lookup success and wall-clock {e during} live churn.

    The tentpole measurement for the merged event queue: membership
    events prepared by {!Canon_sim.Churn.prepare}, lookup launches and
    every in-flight RPC hop ({!Canon_net.Net.launch}/[handle]) share one
    {!Canon_sim.Event_queue}, so a join or leave lands {e between} a
    hop's send and its delivery/timeout and routing must recover against
    the membership of that moment (retry → reroute → re-anchor over the
    {!Canon_net.Live_view}).

    Three phases, each Chord (flat live fingers) vs Crescendo
    (maintained hierarchical links) over the same membership trajectory
    and probe pairs:
    - {e quiescent}: zero churn events — the two-phase baseline;
    - {e burst}: a sustained Poisson churn stream overlapping the lookup
      window — success drops (a destination can depart mid-lookup) and
      the wall-clock tail inflates (mid-flight departures cost timeout
      ladders);
    - {e burst-intra}: churn restricted to nodes {e outside} the largest
      depth-1 domain, probes between that domain's members — the paper's
      §2.2 containment claim carried to live churn: Crescendo's
      intra-domain routes never touch the churning remainder.

    Success = the lookup terminated at the probed destination (its key
    is the destination's own id). p50/p99 are wall-clock ms over
    successful lookups. Telemetry: [churn_async.*], plus the [sim.*]
    (membership) and [net.*] (RPC) counters accumulated on the shared
    sim-time axis. Deterministic: the seed fixes the topology, the
    membership trajectory and every probe pair. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t

val run_with :
  ?churn_rate:float ->
  ?lookup_rate:float ->
  ?events:int ->
  ?n:int ->
  ?lookups:int ->
  scale:Common.scale ->
  seed:int ->
  unit ->
  Canon_stats.Table.t
(** [churn_rate] is membership events per simulated second (mean
    interarrival = 1000/rate ms; default 100), [lookup_rate] lookup
    launches per simulated second (default 200); [events], [n] and
    [lookups] override the scale defaults (400/4096/800 at paper scale,
    120/1024/200 at quick). Raises [Invalid_argument] on non-positive
    rates, [events < 0], [lookups < 1] or [n < 16]. *)
