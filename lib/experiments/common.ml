open Canon_hierarchy
open Canon_topology
open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng

type scale = [ `Paper | `Quick ]

let scale_of_env () =
  match Sys.getenv_opt "CANON_SCALE" with
  | Some ("quick" | "QUICK") -> `Quick
  | Some _ | None -> `Paper

let sizes = function
  | `Paper -> [ 1024; 2048; 4096; 8192; 16384; 32768; 65536 ]
  | `Quick -> [ 1024; 2048; 4096 ]

let topo_sizes = function
  (* 131072 exceeds the paper's 65536-node ceiling: affordable now that
     the latency oracle is lazy (PR 4) instead of an eager all-pairs
     table. *)
  | `Paper -> [ 2048; 4096; 8192; 16384; 32768; 65536; 131072 ]
  | `Quick -> [ 2048; 4096 ]

let big_n = function
  | `Paper -> 32768
  | `Quick -> 4096

let paper_fanout = 10

let paper_zipf = 1.25

let hierarchy_population ~seed ~levels ~n =
  let rng = Rng.create seed in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:paper_fanout ~levels) in
  Population.create rng ~tree ~policy:(Placement.Zipfian paper_zipf) ~n

type topo_setup = {
  ts : Transit_stub.t;
  latency : Latency.t;
  tree : Domain_tree.t;
  mean_direct : float;
}

let topology_setup ~seed =
  let rng = Rng.create seed in
  let ts = Transit_stub.generate rng Transit_stub.default_params in
  let latency = Latency.create ts in
  let mean_direct = Latency.mean_node_latency latency (Rng.split rng) ~samples:20_000 in
  { ts; latency; tree = Transit_stub.hierarchy ts; mean_direct }

let topology_population ~seed setup ~n =
  let rng = Rng.create seed in
  Population.create_with_attach rng ~tree:setup.tree
    ~leaf_to_attach:(fun leaf -> Transit_stub.stub_router_of_leaf setup.ts leaf)
    ~n

let node_latency setup pop =
  match pop.Population.attach with
  | None -> invalid_arg "Common.node_latency: population has no attachment points"
  | Some attach -> fun a b -> Latency.node_latency setup.latency attach.(a) attach.(b)

module Metrics = Canon_telemetry.Metrics
module Trace = Canon_telemetry.Trace

(* Every measured lookup of the experiment helpers feeds the registry,
   so `--metrics` has something to print for any experiment; spans flow
   to the ambient trace when the CLI installed one (`--trace FILE`). *)
let lookups_counter = Metrics.counter "router.lookups"

let hops_hist =
  Metrics.histogram ~buckets:[| 1.0; 2.0; 4.0; 6.0; 8.0; 12.0; 16.0; 24.0; 32.0; 64.0 |]
    "router.hops"

let route_latency_hist = Metrics.histogram "router.route_latency_ms"

let mean_hops rng overlay ~samples =
  let n = Overlay.size overlay in
  let trace = Trace.ambient () in
  let total = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let route = Router.greedy_clockwise ?trace overlay ~src ~key:(Overlay.id overlay dst) in
    let hops = Route.hops route in
    Metrics.incr lookups_counter;
    Metrics.observe hops_hist (Float.of_int hops);
    total := !total + hops
  done;
  Float.of_int !total /. Float.of_int samples

let mean_route_latency rng overlay ~node_latency ~samples =
  let n = Overlay.size overlay in
  let trace = Trace.ambient () in
  Option.iter (fun tr -> Trace.set_latency tr (Some node_latency)) trace;
  let total = ref 0.0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let route = Router.greedy_clockwise ?trace overlay ~src ~key:(Overlay.id overlay dst) in
    let lat = Route.latency route ~node_latency in
    Metrics.incr lookups_counter;
    Metrics.observe hops_hist (Float.of_int (Route.hops route));
    Metrics.observe route_latency_hist lat;
    total := !total +. lat
  done;
  !total /. Float.of_int samples
