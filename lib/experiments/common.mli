(** Shared set-up for the paper's experiments (§5).

    All experiments run at one of two scales: [`Paper] replicates the
    paper's parameters (up to 65536 nodes, 32768-node topology runs);
    [`Quick] shrinks everything for CI and tests while preserving every
    qualitative shape. *)

open Canon_hierarchy
open Canon_topology
open Canon_overlay

type scale = [ `Paper | `Quick ]

val scale_of_env : unit -> scale
(** [`Quick] when the CANON_SCALE environment variable is ["quick"],
    [`Paper] otherwise. *)

val sizes : scale -> int list
(** Network sizes for the n-sweeps: 1024..65536 at paper scale. *)

val topo_sizes : scale -> int list
(** Network sizes for the topology experiments: 2048..131072 at paper
    scale (the 131072 ceiling is new in PR 4 — feasible because the
    latency oracle is lazy). *)

val big_n : scale -> int
(** The fixed size of the single-size experiments (32768 at paper
    scale). *)

val paper_fanout : int
(** 10 — fan-out of the experimental hierarchy. *)

val paper_zipf : float
(** 1.25 — the Zipfian placement exponent. *)

val hierarchy_population :
  seed:int -> levels:int -> n:int -> Population.t
(** The §5.1 set-up: fanout-10 hierarchy with the given number of
    levels, Zipfian(1.25) node placement, fresh unique 32-bit ids. *)

type topo_setup = {
  ts : Transit_stub.t;
  latency : Latency.t;
  tree : Domain_tree.t;
  mean_direct : float;  (** mean node-to-node latency, stretch denominator *)
}

val topology_setup : seed:int -> topo_setup
(** Generates the 2040-router transit-stub internet and its lazy
    memoized latency oracle ({!Canon_topology.Latency}): no Dijkstra
    runs until a latency is queried, and only queried source rows are
    ever computed (cached by the caller). *)

val topology_population : seed:int -> topo_setup -> n:int -> Population.t
(** Attaches [n] overlay nodes uniformly to stub routers; the hierarchy
    is the topology's five-level tree. *)

val node_latency : topo_setup -> Population.t -> int -> int -> float
(** End-to-end latency between two overlay nodes (access links
    included). *)

val mean_hops :
  Canon_rng.Rng.t -> Overlay.t -> samples:int -> float
(** Mean greedy-clockwise hop count between random node pairs. *)

val mean_route_latency :
  Canon_rng.Rng.t ->
  Overlay.t ->
  node_latency:(int -> int -> float) ->
  samples:int ->
  float
(** Mean greedy-clockwise route latency between random node pairs. *)
