(** Figure 6: routing latency and stretch vs network size over the
    transit-stub internet, for Chord and Crescendo with and without
    proximity adaptation.

    Expected shape: Chord's latency grows linearly in log n (stretch
    grows); proximity adaptation shrinks the slope but keeps it a line;
    Crescendo's stretch is an almost flat constant (~2-3 without
    proximity adaptation, lower with it), because growth only deepens
    the cheap lowest-level domains. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t

val run_with :
  ?sizes:int list ->
  ?samples:int ->
  scale:Common.scale ->
  seed:int ->
  unit ->
  Canon_stats.Table.t
(** [run] with the size sweep and per-size sample count overridden (the
    CLI's [--n]); defaults are {!Common.topo_sizes} and 4000/1500
    samples at paper/quick scale. *)
