(** Durability extension: keys-surviving fraction vs crashed-node
    fraction × replication degree, flat Chord successor-replication vs
    Crescendo sibling-spread ({!Canon_storage.Replica_set}).

    Keys are published with the writer's own leaf domain as storage
    domain and written through a {!Canon_storage.Replicated_store} at
    each (spread, k) configuration; a key {e survives} a crash set when
    some replica holder is still standing. Every configuration sees the
    same keys and the same crash sets, so columns are comparable.

    Two fault shapes per sweep:
    - random fractions ([fail_fracs] rows): uncorrelated crashes — both
      policies hold k independent copies, so their survival is similar;
    - the ["outage"] row: [Fault_plan.crash_domain] of the leaf domain
      storing the most keys — the paper's correlated-failure scenario.
      Flat keeps every copy inside the crashed leaf and loses all its
      keys; sibling-spread forces a copy outside, so with k >= 2 it
      loses {e none}. This is the §5.4 containment claim carried from
      lookups (PR 2's [robustness]) to data.

    Deterministic: the seed fixes population, keys and crash sets. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
(** The default sweep: fractions 0.1/0.2/0.3/0.5 plus the outage row,
    k ∈ {2, 3}, both spread policies. *)

val run_with :
  ?fail_fracs:float list ->
  ?ks:int list ->
  ?spreads:Canon_storage.Replica_set.spread list ->
  ?n:int ->
  ?keys:int ->
  scale:Common.scale ->
  seed:int ->
  unit ->
  Canon_stats.Table.t
(** [run] restricted to the given fractions, replication degrees and
    policies (the CLI's [--fail-frac] / [--replicas] / [--spread]);
    [n] / [keys] override the scale's population and key count. Raises
    [Invalid_argument] on an empty configuration, [k < 1], [n < 1] or
    [keys < 1]. *)
