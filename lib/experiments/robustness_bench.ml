open Canon_hierarchy
open Canon_core
open Canon_overlay
open Canon_net
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

(* One measurement: [probes] lookups between random [candidates] pairs
   over a fresh simulated network. Success = the lookup terminated at
   the probed destination (we look up the destination's own id, so the
   responsible node is the destination). *)
let measure rng overlay ~rings ~node_latency ~plan ~candidates ~probes =
  let net = Net.create ~plan ~rings ~rng:(Rng.split rng) ~node_latency overlay in
  let ok = ref 0 and wall = ref 0.0 in
  for _ = 1 to probes do
    let src = Rng.pick rng candidates and dst = Rng.pick rng candidates in
    let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
    if Async_route.delivered r && Route.destination r.Async_route.route = dst then begin
      incr ok;
      wall := !wall +. r.Async_route.wall_ms
    end
  done;
  let rate = Float.of_int !ok /. Float.of_int probes in
  let mean_wall = if !ok = 0 then 0.0 else !wall /. Float.of_int !ok in
  (rate, mean_wall)

let live_nodes plan ~n =
  Array.of_list
    (List.filter (fun v -> not (Fault_plan.is_crashed plan v)) (List.init n Fun.id))

let run_with ?(fail_fracs = [ 0.0; 0.05; 0.1; 0.2; 0.3 ]) ?(loss = 0.01) ?n ?probes
    ~scale ~seed () =
  let n =
    match (n, scale) with Some n, _ -> n | None, `Paper -> 8192 | None, `Quick -> 2048
  in
  let probes =
    match (probes, scale) with
    | Some p, _ -> p
    | None, `Paper -> 1500
    | None, `Quick -> 300
  in
  let setup = Common.topology_setup ~seed in
  let pop = Common.topology_population ~seed setup ~n in
  let node_latency = Common.node_latency setup pop in
  let rings = Rings.build pop in
  let chord = Chord.build pop in
  let crescendo = Crescendo.build rings in
  (* The observed domain of the containment measurement: the largest
     depth-1 domain (as in the Isolation experiment). *)
  let domain =
    let kids = Domain_tree.children setup.Common.tree (Domain_tree.root setup.Common.tree) in
    let best = ref kids.(0) and best_size = ref 0 in
    Array.iter
      (fun d ->
        let s = Ring.size (Rings.ring rings d) in
        if s > !best_size then begin
          best := d;
          best_size := s
        end)
      kids;
    !best
  in
  let members = Ring.members (Rings.ring rings domain) in
  let inside = Array.make n false in
  Array.iter (fun m -> inside.(m) <- true) members;
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Robustness: async lookups vs crashed-node fraction (n = %d, loss = %g, \
            domain of %d nodes, timeout %gms / %d retries)"
           n loss (Array.length members) Rpc.default.Rpc.timeout_ms
           Rpc.default.Rpc.max_retries)
      ~columns:
        [
          "fail frac";
          "Chord ok";
          "Crescendo ok";
          "Chord intra-ok";
          "Cresc intra-ok";
          "Chord ms";
          "Cresc ms";
        ]
  in
  List.iter
    (fun frac ->
      let rng = Rng.create (seed + 1 + int_of_float (frac *. 1000.0)) in
      (* Global measurement: crashes anywhere; probes between live pairs. *)
      let global_plan = Fault_plan.create ~loss ~n () in
      Fault_plan.crash_random global_plan (Rng.split rng) ~fraction:frac ();
      let live = live_nodes global_plan ~n in
      let chord_ok, chord_ms =
        measure (Rng.split rng) chord ~rings ~node_latency ~plan:global_plan
          ~candidates:live ~probes
      in
      let cresc_ok, cresc_ms =
        measure (Rng.split rng) crescendo ~rings ~node_latency ~plan:global_plan
          ~candidates:live ~probes
      in
      (* Containment measurement: crashes outside the observed domain
         only; probes between domain members. *)
      let intra_plan = Fault_plan.create ~loss ~n () in
      Fault_plan.crash_random intra_plan (Rng.split rng) ~fraction:frac
        ~protect:(fun v -> inside.(v))
        ();
      let chord_intra, _ =
        measure (Rng.split rng) chord ~rings ~node_latency ~plan:intra_plan
          ~candidates:members ~probes
      in
      let cresc_intra, _ =
        measure (Rng.split rng) crescendo ~rings ~node_latency ~plan:intra_plan
          ~candidates:members ~probes
      in
      Table.add_float_row table
        (Printf.sprintf "%.0f%%" (frac *. 100.0))
        [ chord_ok; cresc_ok; chord_intra; cresc_intra; chord_ms; cresc_ms ])
    fail_fracs;
  table

let run ~scale ~seed = run_with ~scale ~seed ()
