open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let mean_hops_with router rng overlay ~samples =
  let n = Overlay.size overlay in
  let trace = Canon_telemetry.Trace.ambient () in
  let total = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    total := !total + Route.hops (router ?trace overlay ~src ~key:(Overlay.id overlay dst))
  done;
  Float.of_int !total /. Float.of_int samples

let run ~scale ~seed =
  let sizes = match scale with `Paper -> [ 2048; 8192; 32768 ] | `Quick -> [ 1024; 4096 ] in
  let samples = match scale with `Paper -> 3000 | `Quick -> 1000 in
  let table =
    Table.create ~title:"Lookahead ablation (Symphony / Cacophony, 3 levels)"
      ~columns:
        [ "n"; "Sym greedy"; "Sym lookahead"; "saving"; "Cac greedy"; "Cac lookahead"; "saving" ]
  in
  List.iter
    (fun n ->
      let flat = Common.hierarchy_population ~seed ~levels:1 ~n in
      let hier = Common.hierarchy_population ~seed:(seed + 1) ~levels:3 ~n in
      let sym = Symphony.build (Rng.create (seed + n)) flat in
      let cac = Cacophony.build (Rng.create (seed + n + 1)) (Rings.build hier) in
      let sg = mean_hops_with Router.greedy_clockwise (Rng.create 1) sym ~samples in
      let sl = mean_hops_with Router.greedy_clockwise_lookahead (Rng.create 1) sym ~samples in
      let cg = mean_hops_with Router.greedy_clockwise (Rng.create 2) cac ~samples in
      let cl = mean_hops_with Router.greedy_clockwise_lookahead (Rng.create 2) cac ~samples in
      Table.add_float_row table (string_of_int n)
        [ sg; sl; 1.0 -. (sl /. sg); cg; cl; 1.0 -. (cl /. cg) ])
    sizes;
  table
