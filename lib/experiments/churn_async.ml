open Canon_hierarchy
open Canon_overlay
open Canon_sim
open Canon_net
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table
module Stats = Canon_stats.Stats
module Metrics = Canon_telemetry.Metrics

(* Everything — membership events, lookup launches, RPC hops — lives on
   one Event_queue, so a lookup can watch its next hop leave (or a
   better successor join) before its own timeout fires. *)
type payload =
  | Membership of Churn.event
  | Launch of int
  | Rpc_event of Net.event

let m_events = Metrics.counter "churn_async.membership_events"

let m_launches = Metrics.counter "churn_async.lookups_launched"

let g_horizon = Metrics.gauge "churn_async.horizon_ms"

type phase_result = { ok : float; p50 : float; p99 : float }

(* One merged-queue run: a churn burst (or none) interleaved with
   [lookups] asynchronous lookups over live membership. [chord] selects
   the flat-Chord live link view instead of maintained Crescendo;
   [can_churn] restricts which nodes may join/leave; [restrict] narrows
   the probe candidates (e.g. to one domain's members). Seeds are
   per-concern so the membership trajectory and the probe pairs are
   identical across the two constructions. *)
let run_phase ~chord ~pop ~node_latency ~config ~can_churn ~restrict ~lookups
    ~lookup_spacing_ms ~seed =
  let view_ref = ref None in
  let on_event h = match !view_ref with None -> () | Some v -> Live_view.on_hook v h in
  let driver, schedule = Churn.prepare ~on_event ~can_churn (Rng.create (seed + 101)) pop config in
  let m = Churn.maintenance driver in
  let view = if chord then Live_view.chord m else Live_view.crescendo m in
  view_ref := Some view;
  let overlay = Maintenance.overlay m in
  let net = Net.create ~live:view ~rng:(Rng.create (seed + 202)) ~node_latency overlay in
  let q = Event_queue.create () in
  (* The prepared interarrivals, prefix-summed into a sustained Poisson
     stream of membership events (Churn.apply never reads timestamps). *)
  let churn_end = ref 0.0 in
  List.iter
    (fun (dt, ev) ->
      churn_end := !churn_end +. dt;
      Event_queue.push q ~time:!churn_end (Membership ev))
    schedule;
  let launch_times = Array.make lookups 0.0 in
  let lk_rng = Rng.create (seed + 303) in
  let tl = ref 0.0 in
  for i = 0 to lookups - 1 do
    tl := !tl +. Rng.exponential lk_rng ~mean:lookup_spacing_ms;
    launch_times.(i) <- !tl;
    Event_queue.push q ~time:!tl (Launch i)
  done;
  let pick_rng = Rng.create (seed + 404) in
  let candidates =
    match restrict with Some a -> a | None -> Array.init (Population.size pop) Fun.id
  in
  let dsts = Array.make lookups (-1) in
  let pendings = Array.make lookups None in
  let push ~time ev = Event_queue.push q ~time (Rpc_event ev) in
  let last = ref 0.0 in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (time, payload) ->
        last := time;
        (match payload with
        | Membership ev ->
            Churn.apply driver ev;
            Metrics.incr m_events
        | Launch i ->
            let live =
              Array.of_list
                (List.filter (Live_view.is_live view) (Array.to_list candidates))
            in
            if Array.length live >= 2 then begin
              let src = Rng.pick pick_rng live and dst = Rng.pick pick_rng live in
              dsts.(i) <- dst;
              Metrics.incr m_launches;
              pendings.(i) <-
                Some (Net.launch net ~now:time ~push ~src ~key:pop.Population.ids.(dst))
            end
        | Rpc_event ev -> Net.handle net ~now:time ~push ev);
        drain ()
  in
  drain ();
  Metrics.set g_horizon !last;
  let launched = ref 0 and ok = ref 0 and walls = ref [] in
  Array.iteri
    (fun i -> function
      | None -> ()
      | Some p ->
          incr launched;
          let r =
            match Net.result p with Some r -> r | None -> Net.abandon net p ~now:!last
          in
          if Async_route.delivered r && Route.destination r.Async_route.route = dsts.(i)
          then begin
            incr ok;
            walls := r.Async_route.wall_ms :: !walls
          end)
    pendings;
  let walls = Array.of_list !walls in
  {
    ok = (if !launched = 0 then 0.0 else Float.of_int !ok /. Float.of_int !launched);
    p50 = (if Array.length walls = 0 then 0.0 else Stats.percentile walls 50.0);
    p99 = (if Array.length walls = 0 then 0.0 else Stats.percentile walls 99.0);
  }

let run_with ?(churn_rate = 100.0) ?(lookup_rate = 200.0) ?events ?n ?lookups ~scale
    ~seed () =
  if churn_rate <= 0.0 then invalid_arg "Churn_async.run_with: churn_rate <= 0";
  if lookup_rate <= 0.0 then invalid_arg "Churn_async.run_with: lookup_rate <= 0";
  let n =
    match (n, scale) with Some n, _ -> n | None, `Paper -> 4096 | None, `Quick -> 1024
  in
  if n < 16 then invalid_arg "Churn_async.run_with: n < 16";
  let events =
    match (events, scale) with
    | Some e, _ -> e
    | None, `Paper -> 400
    | None, `Quick -> 120
  in
  if events < 0 then invalid_arg "Churn_async.run_with: events < 0";
  let lookups =
    match (lookups, scale) with
    | Some l, _ -> l
    | None, `Paper -> 800
    | None, `Quick -> 200
  in
  if lookups < 1 then invalid_arg "Churn_async.run_with: lookups < 1";
  let setup = Common.topology_setup ~seed in
  let pop = Common.topology_population ~seed setup ~n in
  let node_latency = Common.node_latency setup pop in
  let initial = n * 3 / 4 in
  let config =
    {
      Churn.initial_nodes = initial;
      events;
      join_fraction = 0.5;
      probes_per_event = 0;
      mean_interarrival = 1000.0 /. churn_rate;
    }
  in
  let quiescent = { config with Churn.events = 0 } in
  let lookup_spacing_ms = 1000.0 /. lookup_rate in
  (* The observed domain of the containment phase: the largest depth-1
     domain, protected from churn while the rest of the network churns
     (as in the robustness experiment). *)
  let rings = Rings.build pop in
  let domain =
    let kids = Domain_tree.children setup.Common.tree (Domain_tree.root setup.Common.tree) in
    let best = ref kids.(0) and best_size = ref 0 in
    Array.iter
      (fun d ->
        let s = Ring.size (Rings.ring rings d) in
        if s > !best_size then begin
          best := d;
          best_size := s
        end)
      kids;
    !best
  in
  let members = Ring.members (Rings.ring rings domain) in
  let inside = Array.make n false in
  Array.iter (fun v -> inside.(v) <- true) members;
  let everyone _ = true in
  let phase ~chord ~config ~can_churn ~restrict =
    run_phase ~chord ~pop ~node_latency ~config ~can_churn ~restrict ~lookups
      ~lookup_spacing_ms ~seed
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Churn x async: lookups during live churn (n = %d, initial = %d, %d events @ \
            %g/s, %d lookups @ %g/s, domain of %d nodes)"
           n initial events churn_rate lookups lookup_rate (Array.length members))
      ~columns:
        [ "phase"; "Chord ok"; "Cresc ok"; "Chord p50"; "Cresc p50"; "Chord p99"; "Cresc p99" ]
  in
  let row label ~config ~can_churn ~restrict =
    let c = phase ~chord:true ~config ~can_churn ~restrict in
    let g = phase ~chord:false ~config ~can_churn ~restrict in
    Table.add_float_row table label [ c.ok; g.ok; c.p50; g.p50; c.p99; g.p99 ]
  in
  row "quiescent" ~config:quiescent ~can_churn:everyone ~restrict:None;
  row "burst" ~config ~can_churn:everyone ~restrict:None;
  row "burst-intra" ~config
    ~can_churn:(fun v -> not inside.(v))
    ~restrict:(Some members);
  table

let run ~scale ~seed = run_with ~scale ~seed ()
