open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

(* Mean latency of proximity-routed paths between random node pairs. *)
let mean_prox_latency rng prox ~node_latency ~samples =
  let ov = Proximity.overlay prox in
  let n = Overlay.size ov in
  let total = ref 0.0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let route = Proximity.route prox ~src ~dst in
    total := !total +. Route.latency route ~node_latency
  done;
  !total /. Float.of_int samples

let run_with ?sizes ?samples ~scale ~seed () =
  let setup = Common.topology_setup ~seed in
  let sizes = match sizes with Some s -> s | None -> Common.topo_sizes scale in
  let samples =
    match (samples, scale) with
    | Some s, _ -> s
    | None, `Paper -> 4000
    | None, `Quick -> 1500
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 6: Latency (ms) and stretch vs network size (mean direct latency %.1f ms)"
           setup.Common.mean_direct)
      ~columns:
        [
          "n";
          "Chord lat";
          "Chord stretch";
          "Crescendo lat";
          "Crescendo stretch";
          "Chord(Prox) lat";
          "Chord(Prox) stretch";
          "Crescendo(Prox) lat";
          "Crescendo(Prox) stretch";
        ]
  in
  List.iter
    (fun n ->
      let pop = Common.topology_population ~seed:(seed + n) setup ~n in
      let node_latency = Common.node_latency setup pop in
      let rings = Rings.build pop in
      let chord = Chord.build pop in
      let crescendo = Crescendo.build rings in
      let chord_prox = Proximity.build_chord pop ~node_latency in
      let crescendo_prox = Proximity.build_crescendo rings ~node_latency in
      let lat_chord =
        Common.mean_route_latency (Rng.create (seed + 1)) chord ~node_latency ~samples
      in
      let lat_crescendo =
        Common.mean_route_latency (Rng.create (seed + 2)) crescendo ~node_latency ~samples
      in
      let lat_chord_prox =
        mean_prox_latency (Rng.create (seed + 3)) chord_prox ~node_latency ~samples
      in
      let lat_crescendo_prox =
        mean_prox_latency (Rng.create (seed + 4)) crescendo_prox ~node_latency ~samples
      in
      let stretch l = l /. setup.Common.mean_direct in
      Table.add_float_row table (string_of_int n)
        [
          lat_chord;
          stretch lat_chord;
          lat_crescendo;
          stretch lat_crescendo;
          lat_chord_prox;
          stretch lat_chord_prox;
          lat_crescendo_prox;
          stretch lat_crescendo_prox;
        ])
    sizes;
  table

let run ~scale ~seed = run_with ~scale ~seed ()
