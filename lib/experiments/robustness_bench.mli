(** Robustness sweep over the message-level simulator ([canon_net]):
    lookup success rate and delivered latency vs the fraction of
    abruptly crashed nodes, under message loss, for flat Chord vs
    Crescendo on the transit-stub internet.

    Two measurements per failure fraction:
    - {e global}: random live-pair lookups with crashes injected
      uniformly — overall service degradation;
    - {e intra-domain}: lookups between members of one healthy depth-1
      domain with crashes injected outside it — the paper's §2.2 fault
      containment claim, now with real timeouts/retries instead of an
      oracle. Crescendo's intra-domain rate should stay ~1.0 while flat
      Chord's decays with the failure rate.

    Deterministic: a fixed [seed] fixes every crash set, loss draw and
    backoff jitter, so two runs render byte-identical tables. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
(** The default sweep: failure fractions 0/0.05/0.1/0.2/0.3 at 1%
    message loss. *)

val run_with :
  ?fail_fracs:float list ->
  ?loss:float ->
  ?n:int ->
  ?probes:int ->
  scale:Common.scale ->
  seed:int ->
  unit ->
  Canon_stats.Table.t
(** [run] with a custom failure-fraction list and loss probability
    (the CLI's [--fail-frac] / [--loss]); [n] / [probes] override the
    scale's population and probe count (the determinism regression test
    runs a small sweep twice and compares traces byte for byte). *)
