open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let mean_hops_with router rng overlay ~samples =
  let n = Overlay.size overlay in
  let trace = Canon_telemetry.Trace.ambient () in
  let total = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    total := !total + Route.hops (router ?trace overlay ~src ~key:(Overlay.id overlay dst))
  done;
  Float.of_int !total /. Float.of_int samples

let run ~scale ~seed =
  let n = match scale with `Paper -> 16384 | `Quick -> 2048 in
  let levels = 3 in
  let samples = match scale with `Paper -> 4000 | `Quick -> 1000 in
  let flat_pop = Common.hierarchy_population ~seed ~levels:1 ~n in
  let hier_pop = Common.hierarchy_population ~seed:(seed + 1) ~levels ~n in
  let hier_rings = Rings.build hier_pop in
  let table =
    Table.create
      ~title:(Printf.sprintf "Variant parity: degree and hops, flat vs Canonical (n = %d)" n)
      ~columns:[ "System"; "Mean degree"; "Mean hops" ]
  in
  let add name overlay router seed' =
    Table.add_float_row table name
      [ Overlay.mean_degree overlay; mean_hops_with router (Rng.create seed') overlay ~samples ]
  in
  let clockwise = Router.greedy_clockwise in
  let xor = Router.greedy_xor in
  add "Chord" (Chord.build flat_pop) clockwise (seed + 10);
  add "Crescendo (3 levels)" (Crescendo.build hier_rings) clockwise (seed + 11);
  add "Symphony" (Symphony.build (Rng.create (seed + 20)) flat_pop) clockwise (seed + 12);
  add "Cacophony (3 levels)"
    (Cacophony.build (Rng.create (seed + 21)) hier_rings)
    clockwise (seed + 13);
  add "ND-Chord" (Nd_chord.build (Rng.create (seed + 22)) flat_pop) clockwise (seed + 14);
  add "ND-Crescendo (3 levels)"
    (Nd_crescendo.build (Rng.create (seed + 23)) hier_rings)
    clockwise (seed + 15);
  add "Kademlia" (Kademlia.build (Rng.create (seed + 24)) flat_pop) xor (seed + 16);
  add "Kandy (3 levels)" (Kandy.build (Rng.create (seed + 25)) hier_rings) xor (seed + 17);
  add "CAN (log-degree)" (Can.build flat_pop) xor (seed + 18);
  add "Can-Can (3 levels)" (Can_can.build hier_rings) xor (seed + 19);
  add "Pastry (b=4)" (Pastry.build (Rng.create (seed + 26)) flat_pop) xor (seed + 27);
  add "Canonical Pastry (3 levels)"
    (Pastry.build_canonical (Rng.create (seed + 28)) hier_rings)
    xor (seed + 29);
  table
