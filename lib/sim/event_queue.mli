(** A discrete-event queue: events fire in timestamp order, FIFO among
    equal timestamps. The backbone of the churn simulator. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Schedules an event. [time] must be finite and non-negative. *)

val pop : 'a t -> (float * 'a) option
(** The earliest event, or [None] when empty. Events with equal
    timestamps come out in insertion order. *)

val peek_time : 'a t -> float option

val pop_until : 'a t -> time:float -> (float * 'a) list
(** Drains every event with timestamp [<= time], earliest first, FIFO
    among equal timestamps — the batch a virtual clock advancing to
    [time] must process. The empty list when nothing is due. Raises
    [Invalid_argument] on a NaN [time]. *)
