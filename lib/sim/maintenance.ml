open Canon_idspace
open Canon_overlay
open Canon_core
module Metrics = Canon_telemetry.Metrics

(* Message-cost histograms: the simulator's time unit is messages, so
   these are the "repair latency" of the maintenance protocol. *)
let join_messages_hist = Metrics.histogram "sim.join_messages"

let repair_messages_hist = Metrics.histogram "sim.repair_messages_per_node"

type t = {
  pop : Population.t;
  rings : Rings.t;
  present : bool array;
  links : int array array;
  in_links : (int, unit) Hashtbl.t array; (* reverse adjacency *)
}

type stats = {
  routing_messages : int;
  link_messages : int;
  notify_messages : int;
}

let total s = s.routing_messages + s.link_messages + s.notify_messages

let set_links t node new_links =
  Array.iter (fun v -> Hashtbl.remove t.in_links.(v) node) t.links.(node);
  Array.iter (fun v -> Hashtbl.replace t.in_links.(v) node ()) new_links;
  t.links.(node) <- new_links

let create pop ~present =
  let n = Population.size pop in
  let rings = Rings.build_partial pop ~present in
  let t =
    {
      pop;
      rings;
      present = Array.make n false;
      links = Array.make n [||];
      in_links = Array.init n (fun _ -> Hashtbl.create 8);
    }
  in
  Array.iter (fun node -> t.present.(node) <- true) present;
  Array.iter (fun node -> set_links t node (Crescendo.links_of_node rings node)) present;
  t

let present t =
  let out = ref [] in
  Array.iteri (fun node p -> if p then out := node :: !out) t.present;
  Array.of_list !out

let is_present t node = t.present.(node)

let links t node =
  if not t.present.(node) then invalid_arg "Maintenance.links: node not present";
  t.links.(node)

let rings t = t.rings

let overlay t = Overlay.create t.pop ~links:(Array.map Array.copy t.links)

let same_link_set a b =
  Array.length a = Array.length b
  &&
  let sa = Array.copy a and sb = Array.copy b in
  Array.sort Int.compare sa;
  Array.sort Int.compare sb;
  sa = sb

(* Recompute the links of every candidate; count those that changed. *)
let refresh_candidates t candidates =
  let changed = ref 0 in
  Hashtbl.iter
    (fun node () ->
      if t.present.(node) then begin
        let fresh = Crescendo.links_of_node t.rings node in
        if not (same_link_set fresh t.links.(node)) then begin
          set_links t node fresh;
          incr changed
        end
      end)
    candidates;
  !changed

(* Nodes whose Chord-rule finger may now target [m]: per shared ring,
   members at clockwise distance delta before m's ring predecessor p
   with delta in [max(0, 2^k - d(p,m)), 2^k), for each k. *)
let finger_candidates t m ~into =
  let id_m = t.pop.Population.ids.(m) in
  Array.iter
    (fun domain ->
      let ring = Rings.ring t.rings domain in
      if Ring.size ring >= 2 then begin
        let p = Ring.predecessor_of_id ring (Id.add id_m (-1)) in
        if p <> m then begin
          let id_p = t.pop.Population.ids.(p) in
          let d_pm = Id.distance id_p id_m in
          for k = 0 to Id.bits - 1 do
            let hi = 1 lsl k in
            let lo = max 0 (hi - d_pm) in
            let len = hi - lo in
            if len > 0 then begin
              let start = Id.add id_p (-(hi - 1)) in
              let count = Ring.arc_count ring ~start ~len in
              for i = 0 to count - 1 do
                let y = Ring.arc_nth ring ~start ~len i in
                if y <> m then Hashtbl.replace into y ()
              done
            end
          done
        end
      end)
    (Rings.chain t.rings m)

let join t m =
  let n = Population.size t.pop in
  if m < 0 || m >= n then invalid_arg "Maintenance.join: node out of range";
  if t.present.(m) then invalid_arg "Maintenance.join: already present";
  let id_m = t.pop.Population.ids.(m) in
  (* Bootstrap: a live node in the lowest non-empty domain of m's chain
     (paper: the new node knows an existing node of its lowest-level
     domain, or failing that of the lowest enclosing domain with any
     node). Routing a lookup for m's own identifier visits the
     predecessor of m at every level. *)
  let bootstrap =
    Array.fold_left
      (fun acc domain ->
        match acc with
        | Some _ -> acc
        | None ->
            let ring = Rings.ring t.rings domain in
            if Ring.size ring > 0 then Some (Ring.node_at ring 0) else None)
      None (Rings.chain t.rings m)
  in
  let routing_messages =
    match bootstrap with
    | None -> 0
    | Some b ->
        let route =
          Router.greedy_clockwise_generic
            ?trace:(Canon_telemetry.Trace.ambient ())
            ~level:(fun u v ->
              Canon_hierarchy.Domain_tree.depth t.pop.Population.tree
                (Population.lca_of_nodes t.pop u v))
            ~n
            ~id:(fun v -> t.pop.Population.ids.(v))
            ~links:(fun v -> t.links.(v))
            ~src:b ~key:id_m ()
        in
        Route.hops route
  in
  Rings.add_node t.rings m;
  t.present.(m) <- true;
  let my_links = Crescendo.links_of_node t.rings m in
  set_links t m my_links;
  let candidates = Hashtbl.create 64 in
  finger_candidates t m ~into:candidates;
  let notify_messages = refresh_candidates t candidates in
  let stats = { routing_messages; link_messages = Array.length my_links; notify_messages } in
  Metrics.observe join_messages_hist (Float.of_int (total stats));
  stats

let crash t m =
  if not t.present.(m) then invalid_arg "Maintenance.crash: node not present";
  (* The corpse's outgoing links die with it, but nobody is told:
     in-links from live nodes stay stale until [repair]. *)
  Rings.remove_node t.rings m;
  t.present.(m) <- false;
  set_links t m [||]
(* note: in_links OF m are deliberately kept — they are the stale links *)

let stale_nodes t =
  let stale = Hashtbl.create 64 in
  Array.iteri
    (fun node links ->
      if t.present.(node) then
        Array.iter (fun v -> if not t.present.(v) then Hashtbl.replace stale node ()) links)
    t.links;
  Array.of_seq (Hashtbl.to_seq_keys stale)

let repair t =
  let stale = stale_nodes t in
  let link_messages = ref 0 in
  Array.iter
    (fun node ->
      let fresh = Crescendo.links_of_node t.rings node in
      link_messages := !link_messages + Array.length fresh;
      set_links t node fresh)
    stale;
  (* Clear dangling reverse entries of crashed nodes. *)
  Array.iteri (fun v present -> if not present then Hashtbl.reset t.in_links.(v)) t.present;
  let stats =
    { routing_messages = 0; link_messages = !link_messages; notify_messages = Array.length stale }
  in
  if Array.length stale > 0 then
    Metrics.observe repair_messages_hist
      (Float.of_int (total stats) /. Float.of_int (Array.length stale));
  stats

let leave t m =
  if not t.present.(m) then invalid_arg "Maintenance.leave: node not present";
  let candidates = Hashtbl.create 64 in
  (* Nodes pointing at m must re-target; per-ring predecessors may gain
     links as their distance caps widen. *)
  Hashtbl.iter (fun u () -> if u <> m then Hashtbl.replace candidates u ()) t.in_links.(m);
  let id_m = t.pop.Population.ids.(m) in
  Array.iter
    (fun domain ->
      let ring = Rings.ring t.rings domain in
      if Ring.size ring >= 2 then begin
        let p = Ring.predecessor_of_id ring (Id.add id_m (-1)) in
        if p <> m then Hashtbl.replace candidates p ()
      end)
    (Rings.chain t.rings m);
  let link_messages = Array.length t.links.(m) in
  Rings.remove_node t.rings m;
  t.present.(m) <- false;
  set_links t m [||];
  let notify_messages = refresh_candidates t candidates in
  { routing_messages = 0; link_messages; notify_messages }
