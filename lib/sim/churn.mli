(** Churn driver: a Poisson stream of joins, leaves and probe lookups
    against the maintained Crescendo overlay.

    Every probe routes between two live nodes over the {e maintained}
    link state and checks it arrives exactly; every join/leave reports
    its message cost. This exercises the §2.3 protocol end to end and
    backs the maintenance benchmark.

    The stream can also be consumed {e asynchronously}: {!prepare}
    returns the timestamped membership events without executing them, so
    a caller can merge them with other event sources (e.g.
    [Canon_net.Net] RPC hops) on one shared {!Event_queue} and {!apply}
    each event when its timestamp pops — joins and leaves then
    interleave with in-flight messages on a single sim-time axis. *)

type config = {
  initial_nodes : int;  (** nodes joined before the clock starts *)
  events : int;  (** total join/leave events to run *)
  join_fraction : float;  (** probability an event is a join *)
  probes_per_event : int;  (** routing probes after each event *)
  mean_interarrival : float;  (** seconds between events (Poisson) *)
}

type report = {
  joins : int;
  leaves : int;
  probes : int;
  failed_probes : int;
  join_message_mean : float;
  leave_message_mean : float;
  final_population : int;
  sim_time : float;
}

type event =
  | Arrival  (** the next waiting node runs the §2.3 join protocol *)
  | Departure  (** a random live node leaves gracefully *)
      (** A scheduled membership event. The affected node is decided at
          {!apply} time against the membership of that moment, not at
          scheduling time. *)

type hook =
  | Init of int array  (** the shuffled initial membership, before the clock starts *)
  | Join of int  (** a node just completed the §2.3 join protocol *)
  | Leave of int  (** a node just completed a graceful leave *)
      (** Membership events reported to [?on_event] so layers above the
          overlay (e.g. {!Canon_storage.Replicated_store} re-replication
          or a [Canon_net] live-membership view) can track the churned
          membership. Handlers run after the maintenance protocol
          settles and must not consume the churn RNG. *)

val default_config : config

val run :
  ?on_event:(hook -> unit) ->
  Canon_rng.Rng.t ->
  Canon_overlay.Population.t ->
  config ->
  report
(** The population provides the universe of potential nodes (ids and
    hierarchy positions); churn picks which are live. Requires
    [initial_nodes <= Population.size] and enough headroom for joins.
    [on_event] observes membership changes ({!hook}). Implemented as a
    thin wrapper over {!prepare}/{!apply} with a private event queue;
    the RNG stream (and therefore every report field) is byte-identical
    to the historical synchronous driver. *)

type driver
(** Execution state for an asynchronous churn run: the maintained
    overlay, the waiting room, message-cost counters and the RNG used
    for departure picks. Created by {!prepare}, advanced by {!apply}. *)

val prepare :
  ?on_event:(hook -> unit) ->
  ?can_churn:(int -> bool) ->
  Canon_rng.Rng.t ->
  Canon_overlay.Population.t ->
  config ->
  driver * (float * event) list
(** Build the initial membership (emitting [Init]) and pre-draw the
    event schedule: [config.events] pairs of [(time, kind)] with times
    drawn i.i.d. exponential([mean_interarrival]) from time 0 — a churn
    {e burst} whose intensity decays from the start, exactly the stream
    [run] executes. Callers may also prefix-sum the times to reshape the
    burst into a sustained Poisson process; {!apply} never looks at the
    timestamps. [can_churn] restricts which nodes may join or be picked
    to leave (default: all) — initial membership is not filtered, so a
    protected domain keeps its members. Raises [Invalid_argument] if
    [initial_nodes] exceeds the population. *)

val apply : driver -> event -> unit
(** Execute one membership event against the current membership: an
    [Arrival] joins the next eligible waiting node (no-op when the
    waiting room is empty), a [Departure] picks an eligible live node
    uniformly — consuming one RNG draw — and leaves it (no-op when the
    live population is at the quorum floor or no node is eligible).
    Calls [on_event] after the maintenance protocol settles. *)

val maintenance : driver -> Maintenance.t

val joins : driver -> int

val leaves : driver -> int

val join_message_mean : driver -> float

val leave_message_mean : driver -> float
