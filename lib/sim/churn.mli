(** Churn driver: a Poisson stream of joins, leaves and probe lookups
    against the maintained Crescendo overlay.

    Every probe routes between two live nodes over the {e maintained}
    link state and checks it arrives exactly; every join/leave reports
    its message cost. This exercises the §2.3 protocol end to end and
    backs the maintenance benchmark. *)

type config = {
  initial_nodes : int;  (** nodes joined before the clock starts *)
  events : int;  (** total join/leave events to run *)
  join_fraction : float;  (** probability an event is a join *)
  probes_per_event : int;  (** routing probes after each event *)
  mean_interarrival : float;  (** seconds between events (Poisson) *)
}

type report = {
  joins : int;
  leaves : int;
  probes : int;
  failed_probes : int;
  join_message_mean : float;
  leave_message_mean : float;
  final_population : int;
  sim_time : float;
}

type hook =
  | Init of int array  (** the shuffled initial membership, before the clock starts *)
  | Join of int  (** a node just completed the §2.3 join protocol *)
  | Leave of int  (** a node just completed a graceful leave *)
      (** Membership events reported to [?on_event] so layers above the
          overlay (e.g. {!Canon_storage.Replicated_store} re-replication)
          can track the churned membership. Handlers run after the
          maintenance protocol settles and must not consume the churn
          RNG. *)

val default_config : config

val run :
  ?on_event:(hook -> unit) ->
  Canon_rng.Rng.t ->
  Canon_overlay.Population.t ->
  config ->
  report
(** The population provides the universe of potential nodes (ids and
    hierarchy positions); churn picks which are live. Requires
    [initial_nodes <= Population.size] and enough headroom for joins.
    [on_event] observes membership changes ({!hook}). *)
