type 'a cell = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell option array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = Array.make 16 None; size = 0; next_seq = 0 }

let is_empty t = t.size = 0

let size t = t.size

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.heap.(i) with
  | Some c -> c
  | None -> assert false

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let push t ~time payload =
  if not (Float.is_finite time) || time < 0.0 then invalid_arg "Event_queue.push: bad time";
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) None in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  t.heap.(t.size) <- Some { time; seq = t.next_seq; payload };
  t.next_seq <- t.next_seq + 1;
  let i = ref t.size in
  t.size <- t.size + 1;
  while !i > 0 && before (get t !i) (get t ((!i - 1) / 2)) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = get t 0 in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.size && before (get t l) (get t !smallest) then smallest := l;
      if r < t.size && before (get t r) (get t !smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap t !i !smallest;
        i := !smallest
      end
    done;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some (get t 0).time

let pop_until t ~time =
  if Float.is_nan time then invalid_arg "Event_queue.pop_until: bad time";
  let rec go acc =
    match peek_time t with
    | Some earliest when earliest <= time -> (
        match pop t with
        | Some event -> go (event :: acc)
        | None -> assert false)
    | Some _ | None -> List.rev acc
  in
  go []
