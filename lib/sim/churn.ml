open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng
module Metrics = Canon_telemetry.Metrics

let joins_counter = Metrics.counter "sim.joins"

let leaves_counter = Metrics.counter "sim.leaves"

let probes_counter = Metrics.counter "sim.probes"

let failed_probes_counter = Metrics.counter "sim.failed_probes"

let probe_hops_hist = Metrics.histogram "sim.probe_hops"

type config = {
  initial_nodes : int;
  events : int;
  join_fraction : float;
  probes_per_event : int;
  mean_interarrival : float;
}

type report = {
  joins : int;
  leaves : int;
  probes : int;
  failed_probes : int;
  join_message_mean : float;
  leave_message_mean : float;
  final_population : int;
  sim_time : float;
}

let default_config =
  {
    initial_nodes = 256;
    events = 200;
    join_fraction = 0.5;
    probes_per_event = 4;
    mean_interarrival = 1.0;
  }

type event =
  | Arrival
  | Departure

type hook =
  | Init of int array
  | Join of int
  | Leave of int

let run ?(on_event = fun (_ : hook) -> ()) rng pop config =
  let n = Population.size pop in
  if config.initial_nodes > n then invalid_arg "Churn.run: initial_nodes exceeds population";
  let order = Array.init n Fun.id in
  Rng.shuffle_in_place rng order;
  let initial = Array.sub order 0 config.initial_nodes in
  let m = Maintenance.create pop ~present:initial in
  on_event (Init (Array.copy initial));
  (* Waiting room of nodes that may still join, in shuffled order. *)
  let waiting = ref (Array.to_list (Array.sub order config.initial_nodes (n - config.initial_nodes))) in
  let queue = Event_queue.create () in
  let clock = ref 0.0 in
  let schedule_next time =
    let dt = Rng.exponential rng ~mean:config.mean_interarrival in
    let kind = if Rng.float rng < config.join_fraction then Arrival else Departure in
    Event_queue.push queue ~time:(time +. dt) kind
  in
  for _ = 1 to config.events do
    schedule_next !clock
  done;
  let joins = ref 0 and leaves = ref 0 in
  let probes = ref 0 and failed = ref 0 in
  let join_msgs = ref 0 and leave_msgs = ref 0 in
  let probe () =
    let live = Maintenance.present m in
    if Array.length live >= 2 then begin
      incr probes;
      Metrics.incr probes_counter;
      let src = Rng.pick rng live and dst = Rng.pick rng live in
      let route =
        Router.greedy_clockwise_generic
          ?trace:(Canon_telemetry.Trace.ambient ())
          ~level:(fun u v ->
            Canon_hierarchy.Domain_tree.depth pop.Population.tree
              (Population.lca_of_nodes pop u v))
          ~n
          ~id:(fun v -> pop.Population.ids.(v))
          ~links:(fun v -> if Maintenance.is_present m v then Maintenance.links m v else [||])
          ~src
          ~key:pop.Population.ids.(dst) ()
      in
      Metrics.observe probe_hops_hist (Float.of_int (Canon_overlay.Route.hops route));
      if Canon_overlay.Route.destination route <> dst then begin
        incr failed;
        Metrics.incr failed_probes_counter
      end
    end
  in
  let rec drain () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, kind) ->
        clock := time;
        (match kind with
        | Arrival -> (
            match !waiting with
            | [] -> ()
            | node :: rest ->
                waiting := rest;
                let stats = Maintenance.join m node in
                join_msgs := !join_msgs + Maintenance.total stats;
                incr joins;
                Metrics.incr joins_counter;
                on_event (Join node))
        | Departure ->
            let live = Maintenance.present m in
            (* Keep a quorum so probes stay meaningful. *)
            if Array.length live > max 8 (config.initial_nodes / 4) then begin
              let node = Rng.pick rng live in
              let stats = Maintenance.leave m node in
              leave_msgs := !leave_msgs + Maintenance.total stats;
              incr leaves;
              Metrics.incr leaves_counter;
              on_event (Leave node)
            end);
        for _ = 1 to config.probes_per_event do
          probe ()
        done;
        drain ()
  in
  drain ();
  {
    joins = !joins;
    leaves = !leaves;
    probes = !probes;
    failed_probes = !failed;
    join_message_mean = (if !joins = 0 then 0.0 else Float.of_int !join_msgs /. Float.of_int !joins);
    leave_message_mean =
      (if !leaves = 0 then 0.0 else Float.of_int !leave_msgs /. Float.of_int !leaves);
    final_population = Array.length (Maintenance.present m);
    sim_time = !clock;
  }
