open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng
module Metrics = Canon_telemetry.Metrics

let joins_counter = Metrics.counter "sim.joins"

let leaves_counter = Metrics.counter "sim.leaves"

let probes_counter = Metrics.counter "sim.probes"

let failed_probes_counter = Metrics.counter "sim.failed_probes"

let probe_hops_hist = Metrics.histogram "sim.probe_hops"

type config = {
  initial_nodes : int;
  events : int;
  join_fraction : float;
  probes_per_event : int;
  mean_interarrival : float;
}

type report = {
  joins : int;
  leaves : int;
  probes : int;
  failed_probes : int;
  join_message_mean : float;
  leave_message_mean : float;
  final_population : int;
  sim_time : float;
}

let default_config =
  {
    initial_nodes = 256;
    events = 200;
    join_fraction = 0.5;
    probes_per_event = 4;
    mean_interarrival = 1.0;
  }

type event =
  | Arrival
  | Departure

type hook =
  | Init of int array
  | Join of int
  | Leave of int

type driver = {
  d_config : config;
  d_rng : Rng.t;
  d_m : Maintenance.t;
  d_can_churn : int -> bool;
  d_on_event : hook -> unit;
  mutable d_waiting : int list;
  mutable d_joins : int;
  mutable d_leaves : int;
  mutable d_join_msgs : int;
  mutable d_leave_msgs : int;
}

(* RNG draw order is part of the determinism contract: shuffle, then one
   (interarrival, kind) pair per scheduled event — all drawn before the
   clock starts — and finally one pick per executed departure. [run]
   reproduces the historical stream exactly through this split. *)
let prepare ?(on_event = fun (_ : hook) -> ()) ?(can_churn = fun (_ : int) -> true) rng pop config
    =
  let n = Population.size pop in
  if config.initial_nodes > n then invalid_arg "Churn.prepare: initial_nodes exceeds population";
  let order = Array.init n Fun.id in
  Rng.shuffle_in_place rng order;
  let initial = Array.sub order 0 config.initial_nodes in
  let m = Maintenance.create pop ~present:initial in
  on_event (Init (Array.copy initial));
  (* Waiting room of nodes that may still join, in shuffled order. *)
  let waiting =
    List.filter can_churn
      (Array.to_list (Array.sub order config.initial_nodes (n - config.initial_nodes)))
  in
  let schedule = ref [] in
  for _ = 1 to config.events do
    let dt = Rng.exponential rng ~mean:config.mean_interarrival in
    let kind = if Rng.float rng < config.join_fraction then Arrival else Departure in
    schedule := (dt, kind) :: !schedule
  done;
  let driver =
    {
      d_config = config;
      d_rng = rng;
      d_m = m;
      d_can_churn = can_churn;
      d_on_event = on_event;
      d_waiting = waiting;
      d_joins = 0;
      d_leaves = 0;
      d_join_msgs = 0;
      d_leave_msgs = 0;
    }
  in
  (driver, List.rev !schedule)

let apply d kind =
  match kind with
  | Arrival -> (
      match d.d_waiting with
      | [] -> ()
      | node :: rest ->
          d.d_waiting <- rest;
          let stats = Maintenance.join d.d_m node in
          d.d_join_msgs <- d.d_join_msgs + Maintenance.total stats;
          d.d_joins <- d.d_joins + 1;
          Metrics.incr joins_counter;
          d.d_on_event (Join node))
  | Departure ->
      let live = Maintenance.present d.d_m in
      (* Keep a quorum so probes stay meaningful. *)
      if Array.length live > max 8 (d.d_config.initial_nodes / 4) then begin
        let pool =
          Array.of_list (List.filter d.d_can_churn (Array.to_list live))
        in
        if Array.length pool > 0 then begin
          let node = Rng.pick d.d_rng pool in
          let stats = Maintenance.leave d.d_m node in
          d.d_leave_msgs <- d.d_leave_msgs + Maintenance.total stats;
          d.d_leaves <- d.d_leaves + 1;
          Metrics.incr leaves_counter;
          d.d_on_event (Leave node)
        end
      end

let maintenance d = d.d_m

let joins d = d.d_joins

let leaves d = d.d_leaves

let join_message_mean d =
  if d.d_joins = 0 then 0.0 else Float.of_int d.d_join_msgs /. Float.of_int d.d_joins

let leave_message_mean d =
  if d.d_leaves = 0 then 0.0 else Float.of_int d.d_leave_msgs /. Float.of_int d.d_leaves

let run ?on_event rng pop config =
  let n = Population.size pop in
  let d, schedule = prepare ?on_event rng pop config in
  let m = d.d_m in
  let queue = Event_queue.create () in
  (* [prepare] draws every interarrival relative to time 0, matching the
     historical scheduling loop; push order fixes the FIFO tie-break. *)
  List.iter (fun (dt, kind) -> Event_queue.push queue ~time:dt kind) schedule;
  let clock = ref 0.0 in
  let probes = ref 0 and failed = ref 0 in
  let probe () =
    let live = Maintenance.present m in
    if Array.length live >= 2 then begin
      incr probes;
      Metrics.incr probes_counter;
      let src = Rng.pick rng live and dst = Rng.pick rng live in
      let route =
        Router.greedy_clockwise_generic
          ?trace:(Canon_telemetry.Trace.ambient ())
          ~level:(fun u v ->
            Canon_hierarchy.Domain_tree.depth pop.Population.tree
              (Population.lca_of_nodes pop u v))
          ~n
          ~id:(fun v -> pop.Population.ids.(v))
          ~links:(fun v -> if Maintenance.is_present m v then Maintenance.links m v else [||])
          ~src
          ~key:pop.Population.ids.(dst) ()
      in
      Metrics.observe probe_hops_hist (Float.of_int (Canon_overlay.Route.hops route));
      if Canon_overlay.Route.destination route <> dst then begin
        incr failed;
        Metrics.incr failed_probes_counter
      end
    end
  in
  let rec drain () =
    match Event_queue.pop queue with
    | None -> ()
    | Some (time, kind) ->
        clock := time;
        apply d kind;
        for _ = 1 to config.probes_per_event do
          probe ()
        done;
        drain ()
  in
  drain ();
  {
    joins = d.d_joins;
    leaves = d.d_leaves;
    probes = !probes;
    failed_probes = !failed;
    join_message_mean = join_message_mean d;
    leave_message_mean = leave_message_mean d;
    final_population = Array.length (Maintenance.present m);
    sim_time = !clock;
  }
