module Metrics = Canon_telemetry.Metrics

(* Process-wide telemetry, bound once (see Metrics). Counters aggregate
   over every oracle in the process; the gauge tracks the most recently
   mutated oracle's resident-row count. *)
let m_rows = Metrics.counter "latency.rows_computed"
let m_hits = Metrics.counter "latency.hits"
let m_misses = Metrics.counter "latency.misses"
let m_evictions = Metrics.counter "latency.evictions"
let g_resident = Metrics.gauge "latency.rows_resident"

type row = { dist : float array; mutable last_used : int }

type t = {
  topology : Transit_stub.t;
  graph : Graph.t;
  access : float;
  rows : (int, row) Hashtbl.t; (* per-source shortest-path rows, on demand *)
  max_rows : int option;
  mutable tick : int; (* recency clock for LRU eviction *)
  mutable computed : int;
  mutable hit : int;
  mutable miss : int;
  mutable evicted : int;
}

type stats = {
  rows_computed : int;
  rows_resident : int;
  hits : int;
  misses : int;
  evictions : int;
}

let create ?max_rows ts =
  (match max_rows with
  | Some cap when cap < 1 -> invalid_arg "Latency.create: max_rows must be >= 1"
  | Some _ | None -> ());
  {
    topology = ts;
    graph = Transit_stub.graph ts;
    access = (Transit_stub.params ts).Transit_stub.access_ms;
    rows = Hashtbl.create 64;
    max_rows;
    tick = 0;
    computed = 0;
    hit = 0;
    miss = 0;
    evicted = 0;
  }

let topology t = t.topology

let evict_lru t =
  let victim = ref (-1) and oldest = ref max_int in
  Hashtbl.iter
    (fun src r ->
      if r.last_used < !oldest then begin
        victim := src;
        oldest := r.last_used
      end)
    t.rows;
  if !victim >= 0 then begin
    Hashtbl.remove t.rows !victim;
    t.evicted <- t.evicted + 1;
    Metrics.incr m_evictions
  end

let row t src =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.rows src with
  | Some r ->
      r.last_used <- t.tick;
      t.hit <- t.hit + 1;
      Metrics.incr m_hits;
      r.dist
  | None ->
      t.miss <- t.miss + 1;
      Metrics.incr m_misses;
      let dist = Graph.dijkstra t.graph src in
      (match t.max_rows with
      | Some cap when Hashtbl.length t.rows >= cap -> evict_lru t
      | Some _ | None -> ());
      Hashtbl.replace t.rows src { dist; last_used = t.tick };
      t.computed <- t.computed + 1;
      Metrics.incr m_rows;
      Metrics.set g_resident (Float.of_int (Hashtbl.length t.rows));
      dist

let create_eager ts =
  let t = create ts in
  for src = 0 to Graph.num_vertices t.graph - 1 do
    ignore (row t src)
  done;
  t

let router_latency t a b = (row t a).(b)

let node_latency t a b = t.access +. (row t a).(b) +. t.access

let stats t =
  {
    rows_computed = t.computed;
    rows_resident = Hashtbl.length t.rows;
    hits = t.hit;
    misses = t.miss;
    evictions = t.evicted;
  }

let mean_node_latency t rng ~samples =
  if samples <= 0 then invalid_arg "Latency.mean_node_latency: samples must be positive";
  let stubs = Transit_stub.stub_routers t.topology in
  (* The mean-direct normalizer is over *distinct* node pairs: drawing
     the same stub for both endpoints would charge 2 x access_ms for a
     zero-distance pair and bias the stretch denominator down. A
     single-stub topology has no distinct pair, so it keeps a = b. *)
  let distinct = Array.length stubs > 1 in
  let total = ref 0.0 in
  for _ = 1 to samples do
    let a = Canon_rng.Rng.pick rng stubs in
    let b = ref (Canon_rng.Rng.pick rng stubs) in
    while distinct && !b = a do
      b := Canon_rng.Rng.pick rng stubs
    done;
    total := !total +. node_latency t a !b
  done;
  !total /. Float.of_int samples
