(** Latency oracle over a transit-stub topology.

    Distances are computed {e on demand}: the first query from a source
    router runs one single-source Dijkstra and memoizes the whole row
    (a [float array] over destinations), so {!create} is O(1) and a
    workload that touches [k] distinct sources costs [k] Dijkstras and
    [k * V] floats — never the O(V^2) all-pairs table the eager oracle
    materialized. An optional [max_rows] cap bounds resident memory via
    least-recently-used row eviction (an evicted row is recomputed
    bit-identically on its next use, since Dijkstra is deterministic).

    Overlay nodes attach to stub routers over an access link
    ([access_ms], 1 ms in the paper), so the latency between two overlay
    nodes attached to routers [r1] and [r2] is
    [access + spt(r1, r2) + access] — 2 ms when both hang off the same
    stub router, matching the paper's observation.

    Every oracle feeds the process-wide [latency.*] telemetry counters
    (rows computed, hits, misses, evictions) and the
    [latency.rows_resident] gauge. *)

type t

val create : ?max_rows:int -> Transit_stub.t -> t
(** O(1): no shortest-path work happens until the first query. When
    [max_rows] is given (>= 1, else [Invalid_argument]), at most that
    many memoized rows stay resident, evicted LRU. *)

val create_eager : Transit_stub.t -> t
(** The pre-PR-4 behaviour: computes every row up front (one Dijkstra
    per router — on the order of a second and ~32 MB for the default
    2040-router topology, and quadratically worse beyond). Kept for
    benchmarking the lazy oracle against and for workloads that touch
    every source anyway. Queries answer identically to {!create}. *)

val topology : t -> Transit_stub.t

val router_latency : t -> int -> int -> float
(** Shortest-path latency between two routers, in ms. Memoizes the
    source's row on first use. *)

val node_latency : t -> int -> int -> float
(** [node_latency t r1 r2] is the overlay-node-to-overlay-node latency
    between nodes attached to stub routers [r1] and [r2], including both
    access links. [r1 = r2] gives twice the access latency. *)

type stats = {
  rows_computed : int;  (** Dijkstra runs, including recomputations after eviction *)
  rows_resident : int;  (** rows currently memoized (peak = cap when bounded) *)
  hits : int;  (** queries answered from a memoized row *)
  misses : int;  (** queries that had to run Dijkstra *)
  evictions : int;  (** rows dropped by the [max_rows] LRU policy *)
}

val stats : t -> stats
(** This oracle's counters since {!create}. [create_eager] reports one
    miss/row-computed per router. *)

val mean_node_latency : t -> Canon_rng.Rng.t -> samples:int -> float
(** Monte-Carlo estimate of the mean direct latency between two overlay
    nodes attached to uniformly random {e distinct} stub routers — the
    denominator of the paper's "stretch" metric. (A degenerate topology
    with a single stub router samples the same-router pair.) *)
