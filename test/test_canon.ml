let () =
  Alcotest.run "canon"
    (List.concat
       [
         Test_rng.suites;
         Test_idspace.suites;
         Test_stats.suites;
         Test_telemetry.suites;
         Test_hierarchy.suites;
         Test_topology.suites;
         Test_core.suites;
         Test_storage.suites;
         Test_balance.suites;
         Test_sim.suites;
         Test_net.suites;
         Test_workload.suites;
         Test_extensions.suites;
         Test_skipnet.suites;
         Test_random_hierarchies.suites;
         Prop.suites;
         Test_replication.suites;
         Test_experiments.suites;
       ])
