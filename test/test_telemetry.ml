(* Tests for the telemetry subsystem: histogram percentiles against a
   sorted-array oracle, span invariants on Fig. 5-style workloads,
   JSONL round-trips, sampling/retention bounds, registry reset, and
   the partial path carried by Router.Stuck. *)

open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng
module Json = Canon_telemetry.Json
module Metrics = Canon_telemetry.Metrics
module Span = Canon_telemetry.Span
module Sink = Canon_telemetry.Sink
module Trace = Canon_telemetry.Trace
module Report = Canon_telemetry.Report

let make_pop ?(seed = 1) ~levels ~n () =
  let rng = Rng.create seed in
  let tree =
    Canon_hierarchy.Domain_tree.of_spec
      (Canon_hierarchy.Domain_tree.uniform_spec ~fanout:4 ~levels)
  in
  Population.create rng ~tree ~policy:(Canon_hierarchy.Placement.Zipfian 1.25) ~n

(* --- Metrics ------------------------------------------------------ *)

let test_counters_and_gauges () =
  let c = Metrics.counter "test.counter" in
  let before = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "counter adds" (before + 5) (Metrics.value c);
  Alcotest.(check int) "same name same counter" (before + 5)
    (Metrics.value (Metrics.counter "test.counter"));
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Alcotest.(check (float 1e-9)) "gauge set" 2.5 (Metrics.gauge_value g);
  Alcotest.check_raises "kind clash rejected"
    (Invalid_argument "Metrics: \"test.counter\" is already a counter") (fun () ->
      ignore (Metrics.gauge "test.counter"))

(* The estimator interpolates inside one bucket, so its error against
   the exact nearest-rank percentile is bounded by the width of the
   bucket containing the oracle value. *)
let test_percentile_oracle () =
  let buckets = [| 1.0; 2.0; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0 |] in
  let h = Metrics.histogram ~buckets "test.percentile" in
  let rng = Rng.create 99 in
  let values =
    Array.init 5000 (fun _ -> Float.of_int (1 + Rng.int_below rng 300) /. 1.3)
  in
  Array.iter (Metrics.observe h) values;
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  List.iter
    (fun q ->
      let oracle = sorted.(max 0 (int_of_float (ceil (q *. Float.of_int n)) - 1)) in
      let est = Metrics.percentile h q in
      (* Bucket bounds enclosing the oracle value. *)
      let lo = ref 0.0 and hi = ref infinity in
      Array.iter
        (fun b ->
          if b < oracle then lo := b;
          if b >= oracle && !hi = infinity then hi := b)
        buckets;
      let hi = if !hi = infinity then sorted.(n - 1) else !hi in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f est %.3f within oracle bucket [%.3f, %.3f]" (q *. 100.0)
           est !lo hi)
        true
        (est >= !lo -. 1e-9 && est <= hi +. 1e-9))
    [ 0.5; 0.9; 0.95; 0.99 ];
  Alcotest.(check (float 1e-9)) "p0 is min" sorted.(0) (Metrics.percentile h 0.0);
  Alcotest.(check (float 1e-9)) "p100 is max" sorted.(n - 1) (Metrics.percentile h 1.0)

let test_reset_zeroes () =
  let c = Metrics.counter "test.reset_counter" in
  let g = Metrics.gauge "test.reset_gauge" in
  let h = Metrics.histogram "test.reset_hist" in
  Metrics.add c 7;
  Metrics.set g 3.0;
  Metrics.observe h 12.0;
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  List.iter
    (fun (name, v) -> Alcotest.(check int) (name ^ " zero") 0 v)
    snap.Metrics.counters;
  List.iter
    (fun (name, v) -> Alcotest.(check (float 0.0)) (name ^ " zero") 0.0 v)
    snap.Metrics.gauges;
  List.iter
    (fun (name, hs) ->
      Alcotest.(check int) (name ^ " count zero") 0 hs.Metrics.h_count;
      Alcotest.(check (float 0.0)) (name ^ " sum zero") 0.0 hs.Metrics.h_sum)
    snap.Metrics.histograms;
  (* Handles stay registered and usable after reset. *)
  Metrics.incr c;
  Alcotest.(check int) "counter alive after reset" 1 (Metrics.value c)

(* --- Spans on a Fig. 5-style workload ----------------------------- *)

let crescendo_overlay ~levels ~n =
  let pop = make_pop ~seed:(10 + levels) ~levels ~n () in
  (pop, Crescendo.build (Rings.build pop))

let test_span_invariants () =
  let _pop, overlay = crescendo_overlay ~levels:3 ~n:512 in
  (* A synthetic physical latency so cumulative latency is non-trivial. *)
  let latency u v = 1.0 +. Float.of_int ((u + v) mod 7) in
  let trace = Trace.create ~latency ~sink:(Sink.memory ()) () in
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let src = Rng.int_below rng 512 and dst = Rng.int_below rng 512 in
    let route = Router.greedy_clockwise ~trace overlay ~src ~key:(Overlay.id overlay dst) in
    let span = List.nth (Trace.spans trace) (Trace.emitted trace - 1) in
    Alcotest.(check (array int)) "span path = route path" route.Route.nodes (Span.path span);
    Alcotest.(check int) "hops = events - 1" (Route.hops route) (Span.hops span);
    Alcotest.(check int) "hops field consistency"
      (Array.length span.Span.events - 1)
      (Span.hops span);
    (* Cumulative latency is monotone and matches the oracle sum. *)
    let cum = ref 0.0 in
    Array.iteri
      (fun i e ->
        if i = 0 then begin
          Alcotest.(check int) "source level" (-1) e.Span.level;
          Alcotest.(check (float 0.0)) "source latency" 0.0 e.Span.cum_latency
        end
        else begin
          cum := !cum +. latency span.Span.events.(i - 1).Span.node e.Span.node;
          Alcotest.(check (float 1e-9)) "cumulative latency" !cum e.Span.cum_latency;
          Alcotest.(check bool) "hop level in range" true (e.Span.level >= 0 && e.Span.level <= 3)
        end)
      span.Span.events;
    Alcotest.(check (float 1e-9))
      "total latency = Route.latency" (Route.latency route ~node_latency:latency)
      (Span.total_latency span)
  done;
  Alcotest.(check int) "one span per lookup" 200 (Trace.emitted trace)

let test_span_levels_hierarchical () =
  (* On a multi-level Crescendo overlay some traced hops must use
     deeper-than-root links (intra-domain locality is the paper's whole
     point). *)
  let _pop, overlay = crescendo_overlay ~levels:3 ~n:512 in
  let trace = Trace.create () in
  let rng = Rng.create 6 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 512 and dst = Rng.int_below rng 512 in
    ignore (Router.greedy_clockwise ~trace overlay ~src ~key:(Overlay.id overlay dst))
  done;
  let deep =
    List.exists
      (fun s ->
        Array.exists (fun e -> e.Span.level > 0) s.Span.events)
      (Trace.spans trace)
  in
  Alcotest.(check bool) "some hop uses a deeper-level link" true deep

(* --- JSONL round-trip --------------------------------------------- *)

let test_jsonl_roundtrip () =
  let _pop, overlay = crescendo_overlay ~levels:2 ~n:256 in
  let latency u v = 0.5 +. Float.of_int ((3 * u + v) mod 11) in
  let trace = Trace.create ~latency () in
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    let src = Rng.int_below rng 256 and dst = Rng.int_below rng 256 in
    ignore (Router.greedy_clockwise ~trace overlay ~src ~key:(Overlay.id overlay dst))
  done;
  List.iter
    (fun span ->
      let line = Span.to_jsonl span in
      Alcotest.(check bool) "single line" false (String.contains line '\n');
      match Json.of_string line with
      | Error e -> Alcotest.failf "parse error: %s" e
      | Ok json -> (
          match Span.of_json json with
          | Error e -> Alcotest.failf "decode error: %s" e
          | Ok span' ->
              Alcotest.(check int) "id" span.Span.id span'.Span.id;
              Alcotest.(check string) "kind" span.Span.kind span'.Span.kind;
              Alcotest.(check int) "src" span.Span.src span'.Span.src;
              Alcotest.(check int) "key" span.Span.key span'.Span.key;
              Alcotest.(check bool) "outcome" true (span.Span.outcome = span'.Span.outcome);
              Alcotest.(check (array int)) "path" (Span.path span) (Span.path span');
              Array.iteri
                (fun i e ->
                  let e' = span'.Span.events.(i) in
                  Alcotest.(check int) "event level" e.Span.level e'.Span.level;
                  Alcotest.(check (float 1e-12)) "event latency" e.Span.cum_latency
                    e'.Span.cum_latency)
                span.Span.events))
    (Trace.spans trace)

let test_jsonl_file_sink () =
  let file = Filename.temp_file "canon_trace" ".jsonl" in
  let _pop, overlay = crescendo_overlay ~levels:2 ~n:128 in
  let trace = Trace.create ~sink:(Sink.jsonl_file file) () in
  let rng = Rng.create 8 in
  for _ = 1 to 25 do
    let src = Rng.int_below rng 128 and dst = Rng.int_below rng 128 in
    ignore (Router.greedy_clockwise ~trace overlay ~src ~key:(Overlay.id overlay dst))
  done;
  Trace.flush trace;
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Sys.remove file;
  Alcotest.(check int) "one line per span" 25 (List.length !lines);
  List.iter
    (fun line ->
      match Json.of_string line with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "invalid JSONL line: %s" e)
    !lines

(* --- sampling and retention --------------------------------------- *)

let test_sampling_and_capacity () =
  let trace = Trace.create ~capacity:5 ~sample_every:3 () in
  for i = 0 to 9 do
    Trace.record trace ~kind:"t" ~key:i ~outcome:Span.Arrived ~nodes:[| i |]
      ~level:(fun _ _ -> 0) ()
  done;
  Alcotest.(check int) "seen all" 10 (Trace.seen trace);
  (* Records 1, 4, 7, 10 are kept (1st, then every 3rd). *)
  Alcotest.(check int) "sampled every 3rd" 4 (Trace.emitted trace);
  let trace2 = Trace.create ~capacity:5 () in
  for i = 0 to 19 do
    Trace.record trace2 ~kind:"t" ~key:i ~outcome:Span.Arrived ~nodes:[| i |]
      ~level:(fun _ _ -> 0) ()
  done;
  Alcotest.(check int) "emitted unbounded" 20 (Trace.emitted trace2);
  let retained = Trace.spans trace2 in
  Alcotest.(check int) "retention bounded" 5 (List.length retained);
  Alcotest.(check int) "keeps most recent" 19
    (List.nth retained 4).Span.key

(* --- Stuck carries the partial path ------------------------------- *)

let test_stuck_partial_path () =
  (* A 3-node chain with an artificially tiny hop budget (n = 0 gives
     budget 1): routing 0 -> 1 -> 2 exceeds it at the second hop. *)
  let ids = [| 10; 20; 30 |] in
  let links = [| [| 1 |]; [| 2 |]; [||] |] in
  let trace = Trace.create () in
  let attempt () =
    ignore
      (Router.greedy_clockwise_generic ~trace ~n:0
         ~id:(fun v -> ids.(v))
         ~links:(fun v -> links.(v))
         ~src:0 ~key:30 ())
  in
  (try
     attempt ();
     Alcotest.fail "expected Router.Stuck"
   with Router.Stuck { at; hops; path; _ } ->
     Alcotest.(check int) "stuck at" 1 at;
     Alcotest.(check int) "stuck hops" 1 hops;
     Alcotest.(check (array int)) "partial path" [| 0; 1 |] path);
  (* The trace saw the stuck lookup as a span too. *)
  match Trace.spans trace with
  | [ span ] ->
      Alcotest.(check bool) "outcome stuck" true (span.Span.outcome = Span.Stuck);
      Alcotest.(check (array int)) "span partial path" [| 0; 1 |] (Span.path span)
  | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans)

(* --- Report ------------------------------------------------------- *)

let test_report_renders () =
  Metrics.add (Metrics.counter "test.report_counter") 3;
  Metrics.observe (Metrics.histogram "test.report_hist") 4.2;
  let table = Report.table () in
  let rows = Canon_stats.Table.rows table in
  Alcotest.(check bool) "table non-empty" true (List.length rows > 0);
  Alcotest.(check bool) "counter row present" true
    (List.exists (fun row -> List.hd row = "test.report_counter") rows);
  let json = Json.to_string (Report.metrics_json ()) in
  match Json.of_string json with
  | Error e -> Alcotest.failf "metrics json invalid: %s" e
  | Ok doc ->
      Alcotest.(check bool) "has counters" true (Json.member "counters" doc <> None);
      Alcotest.(check bool) "has histograms" true (Json.member "histograms" doc <> None)

let suites =
  [
    ( "telemetry",
      [
        Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
        Alcotest.test_case "percentiles vs sorted oracle" `Quick test_percentile_oracle;
        Alcotest.test_case "reset zeroes the registry" `Quick test_reset_zeroes;
        Alcotest.test_case "span invariants (fig5 workload)" `Quick test_span_invariants;
        Alcotest.test_case "hierarchical link levels" `Quick test_span_levels_hierarchical;
        Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
        Alcotest.test_case "jsonl file sink" `Quick test_jsonl_file_sink;
        Alcotest.test_case "sampling and retention" `Quick test_sampling_and_capacity;
        Alcotest.test_case "stuck carries partial path" `Quick test_stuck_partial_path;
        Alcotest.test_case "report rendering" `Quick test_report_renders;
      ] );
  ]
