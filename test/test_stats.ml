(* Tests for the statistics, histogram, table and Zipf helpers. *)

open Canon_stats

let feq = Alcotest.float 1e-9

let test_mean () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [| 1.0; 2.0; 3.0 |]);
  Alcotest.check feq "single" 5.0 (Stats.mean [| 5.0 |]);
  Alcotest.check feq "mean_int" 2.5 (Stats.mean_int [| 1; 2; 3; 4 |])

let test_mean_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.mean: empty sample") (fun () ->
      ignore (Stats.mean [||]))

let test_variance () =
  Alcotest.check feq "constant sample" 0.0 (Stats.variance [| 4.0; 4.0; 4.0 |]);
  Alcotest.check feq "known variance" 2.0 (Stats.variance [| 1.0; 3.0; 5.0; 3.0 |]);
  Alcotest.check feq "stddev" (sqrt 2.0) (Stats.stddev [| 1.0; 3.0; 5.0; 3.0 |])

let test_percentile () =
  let xs = Array.init 100 (fun i -> Float.of_int (i + 1)) in
  Alcotest.check feq "p50" 50.0 (Stats.percentile xs 50.0);
  Alcotest.check feq "p99" 99.0 (Stats.percentile xs 99.0);
  Alcotest.check feq "p0" 1.0 (Stats.percentile xs 0.0);
  Alcotest.check feq "p100" 100.0 (Stats.percentile xs 100.0);
  (* input must not be mutated *)
  let ys = [| 3.0; 1.0; 2.0 |] in
  ignore (Stats.percentile ys 50.0);
  Alcotest.(check (array (float 0.0))) "input untouched" [| 3.0; 1.0; 2.0 |] ys

(* Regression for the once-drifted inline rank logic: [summarize] must
   report exactly what [percentile] reports, for any sample size
   (including n = 1) — both now share one ceil-rank helper. *)
let test_summarize_matches_percentile () =
  let rng = Canon_rng.Rng.create 271 in
  List.iter
    (fun n ->
      let xs = Array.init n (fun _ -> Canon_rng.Rng.float rng *. 1000.0) in
      let s = Stats.summarize xs in
      Alcotest.check feq "p50 agrees" (Stats.percentile xs 50.0) s.Stats.p50;
      Alcotest.check feq "p90 agrees" (Stats.percentile xs 90.0) s.Stats.p90;
      Alcotest.check feq "p99 agrees" (Stats.percentile xs 99.0) s.Stats.p99;
      Alcotest.check feq "min = p0" (Stats.percentile xs 0.0) s.Stats.min;
      Alcotest.check feq "max = p100" (Stats.percentile xs 100.0) s.Stats.max)
    [ 1; 2; 3; 7; 10; 99; 100; 1000 ]

let test_summary () =
  let s = Stats.summarize_int [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] in
  Alcotest.(check int) "count" 10 s.Stats.count;
  Alcotest.check feq "mean" 5.5 s.Stats.mean;
  Alcotest.check feq "min" 1.0 s.Stats.min;
  Alcotest.check feq "max" 10.0 s.Stats.max;
  Alcotest.check feq "p50" 5.0 s.Stats.p50

let test_histogram_basic () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty total" 0 (Histogram.total h);
  Alcotest.(check int) "empty max" 0 (Histogram.max_value h);
  List.iter (Histogram.add h) [ 3; 3; 3; 7 ];
  Alcotest.(check int) "total" 4 (Histogram.total h);
  Alcotest.(check int) "count 3" 3 (Histogram.count h 3);
  Alcotest.(check int) "count 7" 1 (Histogram.count h 7);
  Alcotest.(check int) "count absent" 0 (Histogram.count h 5);
  Alcotest.(check int) "count out of range" 0 (Histogram.count h 1000);
  Alcotest.(check int) "max value" 7 (Histogram.max_value h)

let test_histogram_growth () =
  let h = Histogram.create () in
  Histogram.add h 500;
  Alcotest.(check int) "grown" 1 (Histogram.count h 500);
  Alcotest.(check int) "max" 500 (Histogram.max_value h)

let test_histogram_pdf () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1; 1; 2; 2 ];
  match Histogram.pdf h with
  | [ (1, f1); (2, f2) ] ->
      Alcotest.check feq "f1" 0.5 f1;
      Alcotest.check feq "f2" 0.5 f2
  | other -> Alcotest.failf "unexpected pdf of length %d" (List.length other)

let test_histogram_negative () =
  let h = Histogram.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add: negative value")
    (fun () -> Histogram.add h (-1))

let test_table_render () =
  let t = Table.create ~title:"demo" ~columns:[ "n"; "x" ] in
  Table.add_row t [ "1024"; "10.0" ];
  Table.add_float_row t "2048" [ 11.5 ];
  let out = Table.render t in
  Alcotest.(check bool) "has title" true
    (String.length out > 0
    &&
    let lines = String.split_on_char '\n' out in
    List.exists (fun l -> l = "== demo ==") lines);
  Alcotest.(check bool) "has row" true
    (String.split_on_char '\n' out |> List.exists (fun l ->
         (* label left-aligned, value right-aligned *)
         String.trim l = "2048  11.500"))

let test_table_arity () =
  let t = Table.create ~title:"t" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: cell count does not match columns")
    (fun () -> Table.add_row t [ "only one" ])

let test_zipf_weights () =
  let w = Zipf.weights ~n:5 ~alpha:1.25 in
  let total = Array.fold_left ( +. ) 0.0 w in
  Alcotest.check (Alcotest.float 1e-9) "normalised" 1.0 total;
  for i = 0 to 3 do
    Alcotest.(check bool) "decreasing" true (w.(i) > w.(i + 1))
  done;
  (* ratio of first to k-th weight is k^alpha *)
  Alcotest.check (Alcotest.float 1e-9) "ratio" (4.0 ** 1.25) (w.(0) /. w.(3))

let test_zipf_split_counts () =
  let counts = Zipf.split_counts ~total:1000 ~branches:10 ~alpha:1.25 in
  Alcotest.(check int) "sums to total" 1000 (Array.fold_left ( + ) 0 counts);
  for i = 0 to 8 do
    Alcotest.(check bool) "monotone" true (counts.(i) >= counts.(i + 1))
  done;
  let zero = Zipf.split_counts ~total:0 ~branches:3 ~alpha:1.0 in
  Alcotest.(check (array int)) "zero total" [| 0; 0; 0 |] zero

let test_zipf_sampler () =
  let s = Zipf.sampler ~n:100 ~alpha:1.0 in
  let rng = Canon_rng.Rng.create 12 in
  let counts = Array.make 100 0 in
  for _ = 1 to 50_000 do
    let r = Zipf.draw s rng in
    if r < 0 || r >= 100 then Alcotest.fail "rank out of range";
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true (counts.(0) > counts.(10));
  Alcotest.(check bool) "long tail present" true (Array.exists (fun c -> c > 0) (Array.sub counts 50 50))

let prop_split_counts_sum =
  QCheck.Test.make ~count:500 ~name:"zipf split_counts always sums to total"
    QCheck.(pair (int_range 0 10_000) (int_range 1 50))
    (fun (total, branches) ->
      let counts = Zipf.split_counts ~total ~branches ~alpha:1.25 in
      Array.fold_left ( + ) 0 counts = total && Array.for_all (fun c -> c >= 0) counts)

let prop_percentile_bounds =
  QCheck.Test.make ~count:500 ~name:"percentile lies within sample bounds"
    QCheck.(pair (list_of_size Gen.(int_range 1 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let a = Array.of_list xs in
      let v = Stats.percentile a p in
      let lo = Array.fold_left min a.(0) a and hi = Array.fold_left max a.(0) a in
      lo <= v && v <= hi)

let suites =
  [
    ( "stats",
      [
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "mean empty" `Quick test_mean_empty;
        Alcotest.test_case "variance" `Quick test_variance;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "summarize = percentile" `Quick test_summarize_matches_percentile;
        Alcotest.test_case "summary" `Quick test_summary;
        Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
        Alcotest.test_case "histogram growth" `Quick test_histogram_growth;
        Alcotest.test_case "histogram pdf" `Quick test_histogram_pdf;
        Alcotest.test_case "histogram negative" `Quick test_histogram_negative;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table arity" `Quick test_table_arity;
        Alcotest.test_case "zipf weights" `Quick test_zipf_weights;
        Alcotest.test_case "zipf split counts" `Quick test_zipf_split_counts;
        Alcotest.test_case "zipf sampler" `Quick test_zipf_sampler;
        QCheck_alcotest.to_alcotest prop_split_counts_sum;
        QCheck_alcotest.to_alcotest prop_percentile_bounds;
      ] );
  ]
