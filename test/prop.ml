(* A small property harness for the replication layer: deterministic
   seeded generators over random (ragged) hierarchies, populations and
   fault plans, with shrinking by halving the node count.

   Unlike the QCheck properties elsewhere in the suite, these scenarios
   need several coupled structures (tree, population, rings, crash set)
   derived from one seed, and the natural shrink is "same shape, half
   the nodes" — so the harness re-derives the whole scenario at n/2
   rather than shrinking the structures independently. Every check is
   pinned to an explicit seed; failures report the case seed and the
   smallest failing population size. *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_storage
open Canon_net
module Rng = Canon_rng.Rng

type scenario = {
  case_seed : int;
  n : int;
  tree : Domain_tree.t;
  pop : Population.t;
  rings : Rings.t;
}

(* Random ragged tree: depth at most 3, fanout 2..4, subtrees collapse
   into leaves with probability rising with depth. *)
let rec gen_spec rng ~depth =
  if depth >= 3 || (depth > 0 && Rng.float rng < 0.3 *. Float.of_int depth) then
    Domain_tree.Leaf
  else
    let fanout = 2 + Rng.int_below rng 3 in
    Domain_tree.Node (List.init fanout (fun _ -> gen_spec rng ~depth:(depth + 1)))

let scenario ~case_seed ~n =
  let rng = Rng.create case_seed in
  let tree = Domain_tree.of_spec (gen_spec rng ~depth:0) in
  let policy =
    if Rng.bool rng then Canon_hierarchy.Placement.Uniform
    else Canon_hierarchy.Placement.Zipfian 1.25
  in
  let pop = Population.create rng ~tree ~policy ~n in
  { case_seed; n; tree; pop; rings = Rings.build pop }

(* A crash set over the population: each node independently with a
   random probability in [0, 0.5), at least one node left standing. *)
let gen_crashes rng ~n =
  let crashed = Array.make n false in
  let frac = Rng.float rng *. 0.5 in
  for v = 0 to n - 1 do
    if Rng.float rng < frac then crashed.(v) <- true
  done;
  if Array.for_all Fun.id crashed then crashed.(Rng.int_below rng n) <- false;
  crashed

(* A random storage domain guaranteed non-empty: an ancestor of a random
   node's leaf, at a random depth. Also returns the node. *)
let gen_domain rng sc =
  let node = Rng.int_below rng sc.n in
  let leaf = sc.pop.Population.leaf_of_node.(node) in
  let depth = Rng.int_below rng (Domain_tree.depth sc.tree leaf + 1) in
  (node, Domain_tree.ancestor_at_depth sc.tree leaf depth)

(* Run [prop] on [count] scenarios derived from [seed]; on failure,
   halve the node count (same case seed) while the property still fails
   and report the smallest failing case. *)
let check ~count ~seed ~min_n ~max_n prop () =
  for case = 0 to count - 1 do
    let case_seed = seed + (1000 * case) in
    let n = min_n + Rng.int_below (Rng.create (case_seed lxor 0x5bd1)) (max_n - min_n + 1) in
    let fails n =
      match prop (scenario ~case_seed ~n) with
      | Ok () -> None
      | Error msg -> Some msg
      | exception e -> Some (Printexc.to_string e)
    in
    match fails n with
    | None -> ()
    | Some first_msg ->
        let rec shrink n msg =
          let half = n / 2 in
          if half < min_n then (n, msg)
          else match fails half with Some msg' -> shrink half msg' | None -> (n, msg)
        in
        let smallest, msg = shrink n first_msg in
        Alcotest.failf "case seed %d: fails at n = %d (shrunk from n = %d): %s"
          case_seed smallest n msg
  done

let distinct_count xs =
  List.length (List.sort_uniq compare (Array.to_list xs))

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

(* --- placement ----------------------------------------------------- *)

(* Flat: |holders| = min k (live members of the domain ring), all live,
   all distinct. *)
let prop_flat_count sc =
  let rng = Rng.create (sc.case_seed + 1) in
  let crashed = gen_crashes rng ~n:sc.n in
  let alive v = not crashed.(v) in
  let k = 1 + Rng.int_below rng 6 in
  let _, domain = gen_domain rng sc in
  let key = Id.random rng in
  let holders =
    Replica_set.compute ~alive sc.rings ~spread:Replica_set.Flat ~k ~domain ~key
  in
  let live_members =
    Array.fold_left
      (fun acc v -> if alive v then acc + 1 else acc)
      0
      (Ring.members (Rings.ring sc.rings domain))
  in
  if distinct_count holders <> Array.length holders then err "duplicate holders"
  else if not (Array.for_all alive holders) then err "crashed holder"
  else if Array.length holders <> min k live_members then
    err "flat: %d holders, expected min %d %d" (Array.length holders) k live_members
  else Ok ()

(* Sibling: the universe is every live node (the global-ring fallback
   guarantees it), so |holders| = min k (all live). *)
let prop_sibling_count sc =
  let rng = Rng.create (sc.case_seed + 2) in
  let crashed = gen_crashes rng ~n:sc.n in
  let alive v = not crashed.(v) in
  let k = 1 + Rng.int_below rng 6 in
  let _, domain = gen_domain rng sc in
  let key = Id.random rng in
  let holders =
    Replica_set.compute ~alive sc.rings ~spread:Replica_set.Sibling ~k ~domain ~key
  in
  let live = Array.fold_left (fun acc c -> if c then acc else acc + 1) 0 crashed in
  if distinct_count holders <> Array.length holders then err "duplicate holders"
  else if not (Array.for_all alive holders) then err "crashed holder"
  else if Array.length holders <> min k live then
    err "sibling: %d holders, expected min %d %d" (Array.length holders) k live
  else Ok ()

(* No two forced-spread replicas share a leaf domain: the holders occupy
   min |holders| (leaf domains with a live node) distinct leaves. *)
let prop_sibling_distinct_leaves sc =
  let rng = Rng.create (sc.case_seed + 3) in
  let crashed = gen_crashes rng ~n:sc.n in
  let alive v = not crashed.(v) in
  let k = 1 + Rng.int_below rng 6 in
  let _, domain = gen_domain rng sc in
  let key = Id.random rng in
  let holders =
    Replica_set.compute ~alive sc.rings ~spread:Replica_set.Sibling ~k ~domain ~key
  in
  let holder_leaves = Array.map (fun v -> sc.pop.Population.leaf_of_node.(v)) holders in
  let live_leaves =
    Array.fold_left
      (fun acc l ->
        if Array.exists alive (Ring.members (Rings.ring sc.rings l)) then acc + 1
        else acc)
      0 (Domain_tree.leaves sc.tree)
  in
  let expected = min (Array.length holders) live_leaves in
  if distinct_count holder_leaves <> expected then
    err "sibling spread: %d distinct leaves for %d holders, expected %d"
      (distinct_count holder_leaves) (Array.length holders) expected
  else Ok ()

(* Flat placement is exactly the run of live successors starting at the
   closest-at-or-below member — recomputed here from the sorted id list
   rather than through the ring walk. *)
let prop_flat_is_successor_run sc =
  let rng = Rng.create (sc.case_seed + 4) in
  let crashed = gen_crashes rng ~n:sc.n in
  let alive v = not crashed.(v) in
  let k = 1 + Rng.int_below rng 6 in
  let _, domain = gen_domain rng sc in
  let key = Id.random rng in
  let holders =
    Replica_set.compute ~alive sc.rings ~spread:Replica_set.Flat ~k ~domain ~key
  in
  let live_members =
    Array.of_list
      (List.filter alive (Array.to_list (Ring.members (Rings.ring sc.rings domain))))
  in
  (* members are in increasing id order; the primary is the last one
     with id <= key, wrapping to the largest id when none is. *)
  let m = Array.length live_members in
  let expected =
    if m = 0 then [||]
    else begin
      let start = ref (m - 1) in
      Array.iteri
        (fun i v -> if Id.compare sc.pop.Population.ids.(v) key <= 0 then start := i)
        live_members;
      (* [start] is the last index with id <= key thanks to the upward
         scan; when none qualifies it stays at m - 1 (the wrap). *)
      Array.init (min k m) (fun i -> live_members.((!start + i) mod m))
    end
  in
  if holders <> expected then
    err "flat successor run mismatch: [%s] vs expected [%s]"
      (String.concat ";" (List.map string_of_int (Array.to_list holders)))
      (String.concat ";" (List.map string_of_int (Array.to_list expected)))
  else Ok ()

(* Placement is a pure function: recomputing (even after unrelated RNG
   draws) yields the identical array, and the sibling primary is the
   domain's responsible node whenever that node is alive. *)
let prop_placement_deterministic sc =
  let rng = Rng.create (sc.case_seed + 5) in
  let crashed = gen_crashes rng ~n:sc.n in
  let alive v = not crashed.(v) in
  let k = 1 + Rng.int_below rng 6 in
  let _, domain = gen_domain rng sc in
  let key = Id.random rng in
  let compute spread = Replica_set.compute ~alive sc.rings ~spread ~k ~domain ~key in
  let flat1 = compute Replica_set.Flat and sib1 = compute Replica_set.Sibling in
  ignore (Rng.float rng);
  let flat2 = compute Replica_set.Flat and sib2 = compute Replica_set.Sibling in
  let responsible = Rings.responsible sc.rings ~domain ~key in
  if flat1 <> flat2 || sib1 <> sib2 then err "placement not deterministic"
  else if
    alive responsible
    && (flat1.(0) <> responsible || sib1.(0) <> responsible)
  then err "live responsible node %d is not the primary" responsible
  else Ok ()

(* --- the replicated store ------------------------------------------ *)

(* Fault-free round trip in direct mode: every put is fully
   acknowledged, every get returns the latest value, and the copy set
   equals the holder set. *)
let prop_put_get_roundtrip sc =
  let rng = Rng.create (sc.case_seed + 6) in
  let k = 1 + Rng.int_below rng 4 in
  let spread = if Rng.bool rng then Replica_set.Flat else Replica_set.Sibling in
  let store = Replicated_store.create ~k ~spread sc.rings in
  let check_one i =
    let writer, domain = gen_domain rng sc in
    let key = Id.random rng in
    let value = Printf.sprintf "v%d" i in
    let acks = Replicated_store.put store ~writer ~key ~value ~storage_domain:domain in
    let acks2 =
      Replicated_store.put store ~writer ~key ~value:(value ^ "'") ~storage_domain:domain
    in
    let holders = Replicated_store.holders store ~key in
    let querier = Rng.int_below rng sc.n in
    if acks <> Array.length holders || acks2 <> acks then
      err "key %d: %d/%d acks for %d holders" i acks acks2 (Array.length holders)
    else if acks = 0 then err "key %d: unacknowledged in a fault-free universe" i
    else if Replicated_store.get store ~querier ~key <> Some (value ^ "'") then
      err "key %d: stale or missing read" i
    else if Replicated_store.copies store ~key <> Array.of_list (List.sort compare (Array.to_list holders))
    then err "key %d: copies diverge from holders" i
    else Ok ()
  in
  let rec go i = if i >= 8 then Ok () else match check_one i with Ok () -> go (i + 1) | e -> e in
  go 0

let oracle u v = if u = v then 0.0 else 10.0 +. Float.of_int (((u * 13) + (v * 7)) mod 20)

let fast_policy =
  {
    Rpc.timeout_ms = 100.0;
    max_retries = 1;
    backoff_base_ms = 10.0;
    backoff_factor = 2.0;
    jitter = 0.0;
    deadline_ms = 60_000.0;
  }

(* After any single fault-plan event (one node crash or one whole-leaf
   outage), a read of every key succeeds from a live querier and
   read-repair restores the invariant: the live copy holders are exactly
   the current ideal replica set, all at the latest version. *)
let prop_read_repair_restores_invariant sc =
  let rng = Rng.create (sc.case_seed + 7) in
  let plan = Fault_plan.none ~n:sc.n in
  let net =
    Net.create ~policy:fast_policy ~plan ~rings:sc.rings ~rng:(Rng.split rng)
      ~node_latency:oracle
      (Crescendo.build sc.rings)
  in
  let k = 2 + Rng.int_below rng 2 in
  let store = Replicated_store.create ~net ~k ~spread:Replica_set.Sibling sc.rings in
  let keys =
    Array.init 6 (fun i ->
        let writer = Rng.int_below rng sc.n in
        let key = Id.random rng in
        let domain = sc.pop.Population.leaf_of_node.(writer) in
        let acks =
          Replicated_store.put store ~writer ~key
            ~value:(Printf.sprintf "v%d" i)
            ~storage_domain:domain
        in
        if acks = 0 then failwith "fault-free put not acknowledged";
        (key, Printf.sprintf "v%d" i))
  in
  (* the single fault event *)
  if Rng.bool rng then Fault_plan.crash plan (Rng.int_below rng sc.n)
  else begin
    let leaves = Domain_tree.leaves sc.tree in
    let victim = leaves.(Rng.int_below rng (Array.length leaves)) in
    Fault_plan.crash_domain plan sc.pop ~domain:victim
  end;
  let live =
    Array.of_list
      (List.filter
         (fun v -> not (Fault_plan.is_crashed plan v))
         (List.init sc.n Fun.id))
  in
  if Array.length live = 0 then Ok () (* n = 1 and its node crashed *)
  else begin
    let check_key (key, value) =
      let querier = Rng.pick rng live in
      match Replicated_store.get store ~querier ~key with
      | None -> err "key unreadable after a single fault event"
      | Some got when got <> value -> err "read %S, expected %S" got value
      | Some _ ->
          let holders = Replicated_store.holders store ~key in
          let latest = Replicated_store.version store ~key in
          let all_fresh =
            Array.for_all
              (fun h ->
                Replicated_store.stored store ~node:h ~key = Some (value, latest))
              holders
          in
          let live_copies =
            List.filter
              (fun c -> not (Fault_plan.is_crashed plan c))
              (Array.to_list (Replicated_store.copies store ~key))
          in
          if not all_fresh then err "a current holder is stale after read-repair"
          else if live_copies <> List.sort compare (Array.to_list holders) then
            err "live copies [%s] differ from holders [%s]"
              (String.concat ";" (List.map string_of_int live_copies))
              (String.concat ";"
                 (List.map string_of_int (Array.to_list holders)))
          else Ok ()
    in
    Array.fold_left
      (fun acc kv -> match acc with Ok () -> check_key kv | e -> e)
      (Ok ()) keys
  end

(* --- the latency oracle and percentile edges ----------------------- *)

module Transit_stub = Canon_topology.Transit_stub
module Latency = Canon_topology.Latency
module Stats = Canon_stats.Stats

(* Lazy, memory-capped-lazy and eager oracles answer bit-identically for
   random pairs on random seeded transit-stub topologies — the query
   order (which drives memoization and LRU eviction) must never leak
   into the answers. *)
let prop_lazy_eager_identical () =
  for case = 0 to 19 do
    let seed = 4242 + (case * 17) in
    let rng = Rng.create seed in
    let params =
      {
        Transit_stub.default_params with
        Transit_stub.transit_domains = 1 + Rng.int_below rng 3;
        transit_nodes_per_domain = 1 + Rng.int_below rng 3;
        stub_domains_per_transit_node = 1 + Rng.int_below rng 3;
        stub_routers_per_domain = 2 + Rng.int_below rng 4;
      }
    in
    let ts = Transit_stub.generate rng params in
    let n = Transit_stub.num_routers ts in
    let lazy_ = Latency.create ts in
    let capped = Latency.create ~max_rows:(1 + Rng.int_below rng 3) ts in
    let eager = Latency.create_eager ts in
    for _ = 1 to 200 do
      let a = Rng.int_below rng n and b = Rng.int_below rng n in
      let e = Latency.router_latency eager a b in
      if not (Float.equal (Latency.router_latency lazy_ a b) e) then
        Alcotest.failf "seed %d: lazy <> eager at (%d, %d)" seed a b;
      if not (Float.equal (Latency.router_latency capped a b) e) then
        Alcotest.failf "seed %d: capped <> eager at (%d, %d)" seed a b;
      if
        not
          (Float.equal
             (Latency.node_latency lazy_ a b)
             (Latency.node_latency eager a b))
      then Alcotest.failf "seed %d: node latency lazy <> eager at (%d, %d)" seed a b
    done;
    if (Latency.stats capped).Latency.rows_resident > n then
      Alcotest.failf "seed %d: capped oracle exceeded its row budget" seed
  done

(* Percentile edge cases on random samples: p = 0 is the minimum,
   p = 100 the maximum, and any p of a singleton is the element. *)
let prop_percentile_edges () =
  for case = 0 to 49 do
    let rng = Rng.create (7001 + case) in
    let n = 1 + Rng.int_below rng 40 in
    let xs = Array.init n (fun _ -> (Rng.float rng *. 200.0) -. 100.0) in
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    if not (Float.equal (Stats.percentile xs 0.0) sorted.(0)) then
      Alcotest.failf "case %d: p0 <> min" case;
    if not (Float.equal (Stats.percentile xs 100.0) sorted.(n - 1)) then
      Alcotest.failf "case %d: p100 <> max" case;
    let singleton = [| xs.(0) |] in
    List.iter
      (fun p ->
        if not (Float.equal (Stats.percentile singleton p) xs.(0)) then
          Alcotest.failf "case %d: n = 1 percentile %.1f <> the element" case p)
      [ 0.0; 37.5; 50.0; 99.0; 100.0 ]
  done

(* --- churn x async ------------------------------------------------- *)

module Churn = Canon_sim.Churn
module Maintenance = Canon_sim.Maintenance
module Event_queue = Canon_sim.Event_queue

(* Integer-valued oracle + integer launch times keep every float sum
   exact, so "same wall clock" below is exact equality, not tolerance. *)
let int_oracle u v =
  if u = v then 0.0 else 5.0 +. Float.of_int (((u * 13) + (v * 7)) mod 40)

(* With a fault-free plan and zero churn events, lookups interleaved on
   one merged queue (live-membership mode) are byte-identical to the
   two-phase path: same status, same hops, same sim time, same message
   count. *)
let prop_merged_zero_churn_fidelity sc =
  if sc.n < 4 then Ok ()
  else begin
    let config =
      {
        Churn.initial_nodes = max 2 (3 * sc.n / 4);
        events = 0;
        join_fraction = 0.5;
        probes_per_event = 0;
        mean_interarrival = 1.0;
      }
    in
    let driver, schedule = Churn.prepare (Rng.create (sc.case_seed + 31)) sc.pop config in
    if schedule <> [] then err "zero-event schedule is not empty"
    else begin
      let m = Churn.maintenance driver in
      let view = Live_view.crescendo m in
      let overlay = Maintenance.overlay m in
      let live_net =
        Net.create ~live:view
          ~rng:(Rng.create (sc.case_seed + 32))
          ~node_latency:int_oracle overlay
      in
      let snap_net =
        Net.create ~rings:(Maintenance.rings m)
          ~rng:(Rng.create (sc.case_seed + 33))
          ~node_latency:int_oracle overlay
      in
      let live = Maintenance.present m in
      let prng = Rng.create (sc.case_seed + 34) in
      let k = 6 in
      let pairs = Array.make k (0, 0) in
      for i = 0 to k - 1 do
        let s = Rng.pick prng live in
        let d = Rng.pick prng live in
        pairs.(i) <- (s, d)
      done;
      let q = Event_queue.create () in
      let push ~time ev = Event_queue.push q ~time ev in
      let pendings =
        Array.mapi
          (fun i (s, d) ->
            Net.launch live_net ~now:(Float.of_int (13 * i)) ~push ~src:s
              ~key:sc.pop.Population.ids.(d))
          pairs
      in
      let rec drain () =
        match Event_queue.pop q with
        | None -> ()
        | Some (t, ev) ->
            Net.handle live_net ~now:t ~push ev;
            drain ()
      in
      drain ();
      let bad = ref None in
      Array.iteri
        (fun i (s, d) ->
          if !bad = None then
            match Net.result pendings.(i) with
            | None -> bad := Some (Printf.sprintf "lookup %d unresolved" i)
            | Some rm ->
                let rs = Net.lookup snap_net ~src:s ~key:sc.pop.Population.ids.(d) in
                if rm.Async_route.status <> rs.Async_route.status then
                  bad := Some (Printf.sprintf "lookup %d: status differs" i)
                else if
                  rm.Async_route.route.Route.nodes <> rs.Async_route.route.Route.nodes
                then bad := Some (Printf.sprintf "lookup %d: path differs" i)
                else if not (Float.equal rm.Async_route.wall_ms rs.Async_route.wall_ms)
                then
                  bad :=
                    Some
                      (Printf.sprintf "lookup %d: wall %.17g <> %.17g" i
                         rm.Async_route.wall_ms rs.Async_route.wall_ms)
                else if rm.Async_route.messages <> rs.Async_route.messages then
                  bad := Some (Printf.sprintf "lookup %d: messages differ" i)
                else if rm.Async_route.retries <> 0 || rm.Async_route.timeouts <> 0 then
                  bad := Some (Printf.sprintf "lookup %d: fault-free lookup paid retries" i))
        pairs;
      match !bad with None -> Ok () | Some msg -> err "%s" msg
    end
  end

(* After any interleaved run, the live membership view equals the set
   implied by replaying the Init/Join/Leave hook stream. Shrinks on the
   event list: halves the event count while the mismatch persists. *)
let prop_view_matches_hook_replay () =
  for case = 0 to 11 do
    let case_seed = 7900 + (911 * case) in
    let n = 24 + Rng.int_below (Rng.create (case_seed lxor 0x2ce)) 96 in
    let sc = scenario ~case_seed ~n in
    let run_events events =
      let hooks = ref [] in
      let config =
        {
          Churn.initial_nodes = max 2 (n / 2);
          events;
          join_fraction = 0.5;
          probes_per_event = 0;
          mean_interarrival = 2.0;
        }
      in
      let driver, schedule =
        Churn.prepare
          ~on_event:(fun h -> hooks := h :: !hooks)
          (Rng.create (case_seed + 5))
          sc.pop config
      in
      let view = Live_view.crescendo (Churn.maintenance driver) in
      let q = Event_queue.create () in
      List.iter (fun (t, ev) -> Event_queue.push q ~time:t ev) schedule;
      let rec drain () =
        match Event_queue.pop q with
        | None -> ()
        | Some (_, ev) ->
            Churn.apply driver ev;
            drain ()
      in
      drain ();
      let implied = Array.make n false in
      List.iter
        (function
          | Churn.Init a -> Array.iter (fun v -> implied.(v) <- true) a
          | Churn.Join v -> implied.(v) <- true
          | Churn.Leave v -> implied.(v) <- false)
        (List.rev !hooks);
      let mismatch = ref None in
      for v = n - 1 downto 0 do
        if Live_view.is_live view v <> implied.(v) then mismatch := Some v
      done;
      !mismatch
    in
    match run_events 50 with
    | None -> ()
    | Some v0 ->
        let rec shrink events v =
          let half = events / 2 in
          if half < 1 then (events, v)
          else
            match run_events half with Some v' -> shrink half v' | None -> (events, v)
        in
        let events, v = shrink 50 v0 in
        Alcotest.failf
          "case seed %d: live view <> hook replay at node %d (smallest failing event \
           count %d)"
          case_seed v events
  done

let suites =
  [
    ( "prop.latency",
      [
        Alcotest.test_case "lazy/capped/eager oracles identical" `Quick
          prop_lazy_eager_identical;
        Alcotest.test_case "percentile edges p0/p100/n=1" `Quick prop_percentile_edges;
      ] );
    ( "prop.replication",
      [
        Alcotest.test_case "flat holder count = min k live" `Quick
          (check ~count:50 ~seed:9101 ~min_n:4 ~max_n:160 prop_flat_count);
        Alcotest.test_case "sibling holder count = min k live" `Quick
          (check ~count:50 ~seed:9202 ~min_n:4 ~max_n:160 prop_sibling_count);
        Alcotest.test_case "sibling replicas in distinct leaf domains" `Quick
          (check ~count:50 ~seed:9303 ~min_n:4 ~max_n:160 prop_sibling_distinct_leaves);
        Alcotest.test_case "flat placement = live successor run" `Quick
          (check ~count:50 ~seed:9404 ~min_n:4 ~max_n:160 prop_flat_is_successor_run);
        Alcotest.test_case "placement deterministic, primary = responsible" `Quick
          (check ~count:50 ~seed:9505 ~min_n:4 ~max_n:160 prop_placement_deterministic);
        Alcotest.test_case "put/get round trip, copies = holders" `Quick
          (check ~count:25 ~seed:9606 ~min_n:4 ~max_n:120 prop_put_get_roundtrip);
        Alcotest.test_case "read-repair restores invariant after one fault" `Quick
          (check ~count:12 ~seed:9707 ~min_n:8 ~max_n:96
             prop_read_repair_restores_invariant);
      ] );
    ( "prop.churn-async",
      [
        Alcotest.test_case "zero churn: merged queue = two-phase" `Quick
          (check ~count:20 ~seed:9808 ~min_n:8 ~max_n:120
             prop_merged_zero_churn_fidelity);
        Alcotest.test_case "live view = hook replay" `Quick
          prop_view_matches_hook_replay;
      ] );
  ]
