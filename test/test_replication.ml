(* Tests for the replication layer: Replica_set placement, the
   Replicated_store write-through / read-repair protocol, re-replication
   on churn, and the durability containment claim — with sibling-spread
   and k >= 2, a whole-leaf-domain outage loses no key, while flat
   k-successor replication (all copies inside the storage domain) does. *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_storage
open Canon_net
open Canon_sim
module Rng = Canon_rng.Rng
module Metrics = Canon_telemetry.Metrics

let oracle u v = if u = v then 0.0 else 10.0 +. Float.of_int (((u * 13) + (v * 7)) mod 20)

let fast_policy =
  {
    Rpc.timeout_ms = 100.0;
    max_retries = 1;
    backoff_base_ms = 10.0;
    backoff_factor = 2.0;
    jitter = 0.0;
    deadline_ms = 60_000.0;
  }

let make_universe ?(fanout = 4) ?(levels = 2) ~n seed =
  let rng = Rng.create seed in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout ~levels) in
  Population.create rng ~tree ~policy:(Placement.Zipfian 1.25) ~n

let sorted xs =
  let xs = Array.to_list xs in
  List.sort compare xs

let counter name = Metrics.value (Metrics.counter name)

(* --- Replica_set --------------------------------------------------- *)

let test_replica_set_validates () =
  let pop = make_universe ~n:20 3 in
  let rings = Rings.build pop in
  Alcotest.check_raises "k < 1" (Invalid_argument "Replica_set.compute: k must be >= 1")
    (fun () ->
      ignore (Replica_set.compute rings ~spread:Replica_set.Flat ~k:0 ~domain:0 ~key:5));
  Alcotest.check_raises "bad domain"
    (Invalid_argument "Replica_set.compute: domain out of range") (fun () ->
      ignore
        (Replica_set.compute rings ~spread:Replica_set.Sibling ~k:2 ~domain:999 ~key:5));
  Alcotest.(check (option string)) "spread round trip" (Some "sibling")
    (Option.map Replica_set.spread_to_string (Replica_set.spread_of_string "sibling"));
  Alcotest.(check bool) "unknown spread" true (Replica_set.spread_of_string "ring" = None)

let test_flat_k1_is_responsible () =
  let pop = make_universe ~n:60 5 in
  let rings = Rings.build pop in
  let rng = Rng.create 6 in
  for _ = 1 to 50 do
    let node = Rng.int_below rng 60 in
    let domain = pop.Population.leaf_of_node.(node) in
    let key = Id.random rng in
    let holders = Replica_set.compute rings ~spread:Replica_set.Flat ~k:1 ~domain ~key in
    Alcotest.(check (list int)) "primary = responsible"
      [ Rings.responsible rings ~domain ~key ]
      (Array.to_list holders)
  done

let test_flat_stays_inside_domain () =
  let pop = make_universe ~n:120 7 in
  let rings = Rings.build pop in
  let rng = Rng.create 8 in
  let tree = pop.Population.tree in
  for _ = 1 to 30 do
    let node = Rng.int_below rng 120 in
    let domain = pop.Population.leaf_of_node.(node) in
    let key = Id.random rng in
    let holders = Replica_set.compute rings ~spread:Replica_set.Flat ~k:3 ~domain ~key in
    Array.iter
      (fun h ->
        if not (Domain_tree.is_ancestor tree ~anc:domain ~desc:pop.Population.leaf_of_node.(h))
        then Alcotest.failf "flat holder %d escaped the storage domain" h)
      holders
  done

let test_sibling_nearest_first () =
  let pop = make_universe ~fanout:3 ~levels:2 ~n:120 9 in
  let rings = Rings.build pop in
  let tree = pop.Population.tree in
  let rng = Rng.create 10 in
  for _ = 1 to 30 do
    let node = Rng.int_below rng 120 in
    let domain = pop.Population.leaf_of_node.(node) in
    let key = Id.random rng in
    let holders =
      Replica_set.compute rings ~spread:Replica_set.Sibling ~k:2 ~domain ~key
    in
    Alcotest.(check int) "two holders" 2 (Array.length holders);
    let l0 = pop.Population.leaf_of_node.(holders.(0))
    and l1 = pop.Population.leaf_of_node.(holders.(1)) in
    if l0 = l1 then Alcotest.fail "sibling replicas share a leaf";
    (* Fanout-3 uniform tree and >> 3 nodes per parent: some leaf under
       the same parent is populated, so the spread must stay under it. *)
    let parent = Domain_tree.parent tree l0 in
    let sibling_populated =
      Array.exists
        (fun c -> c <> l0 && Ring.size (Rings.ring rings c) > 0)
        (Domain_tree.children tree parent)
    in
    if sibling_populated && Domain_tree.parent tree l1 <> parent then
      Alcotest.failf "second replica leaf %d is not the nearest populated sibling" l1
  done

let test_sibling_skips_dead_leaves () =
  let pop = make_universe ~fanout:3 ~levels:2 ~n:120 11 in
  let rings = Rings.build pop in
  let rng = Rng.create 12 in
  let node = Rng.int_below rng 120 in
  let domain = pop.Population.leaf_of_node.(node) in
  let key = Id.random rng in
  let holders = Replica_set.compute rings ~spread:Replica_set.Sibling ~k:2 ~domain ~key in
  let second_leaf = pop.Population.leaf_of_node.(holders.(1)) in
  (* Kill the whole leaf the second replica lives in: placement must
     re-spread into a different leaf, never fall back inside it. *)
  let alive v = pop.Population.leaf_of_node.(v) <> second_leaf in
  let holders' =
    Replica_set.compute ~alive rings ~spread:Replica_set.Sibling ~k:2 ~domain ~key
  in
  Alcotest.(check int) "still two holders" 2 (Array.length holders');
  Array.iter
    (fun h ->
      if pop.Population.leaf_of_node.(h) = second_leaf then
        Alcotest.fail "placed a replica in a dead leaf")
    holders'

let test_sibling_single_leaf_degrades_to_flat () =
  let pop = make_universe ~fanout:1 ~levels:1 ~n:40 13 in
  let rings = Rings.build pop in
  let rng = Rng.create 14 in
  for _ = 1 to 20 do
    let key = Id.random rng in
    let domain = pop.Population.leaf_of_node.(0) in
    let flat = Replica_set.compute rings ~spread:Replica_set.Flat ~k:3 ~domain ~key in
    let sib = Replica_set.compute rings ~spread:Replica_set.Sibling ~k:3 ~domain ~key in
    Alcotest.(check (list int)) "one leaf: sibling = flat" (Array.to_list flat)
      (Array.to_list sib)
  done

(* --- Replicated_store, direct mode --------------------------------- *)

let test_store_validates () =
  let pop = make_universe ~n:30 15 in
  let all = Array.init 30 Fun.id in
  let absent = 7 in
  let present = Array.of_list (List.filter (( <> ) absent) (Array.to_list all)) in
  let rings = Rings.build_partial pop ~present in
  Alcotest.check_raises "k < 1" (Invalid_argument "Replicated_store.create: k must be >= 1")
    (fun () -> ignore (Replicated_store.create ~k:0 rings));
  let store = Replicated_store.create ~k:2 rings in
  Alcotest.(check (list int)) "members from rings" (Array.to_list present)
    (Array.to_list (Replicated_store.members store));
  Alcotest.(check bool) "absent node not live" false (Replicated_store.live store absent);
  Alcotest.check_raises "absent writer"
    (Invalid_argument "Replicated_store.put: writer not live") (fun () ->
      ignore
        (Replicated_store.put store ~writer:absent ~key:1 ~value:"x"
           ~storage_domain:(pop.Population.leaf_of_node.(absent))));
  let writer = present.(0) in
  let foreign_leaf =
    let leaves = Domain_tree.leaves pop.Population.tree in
    let mine = pop.Population.leaf_of_node.(writer) in
    Array.to_list leaves |> List.find (( <> ) mine)
  in
  Alcotest.check_raises "storage domain excludes writer"
    (Invalid_argument "Replicated_store.put: storage domain does not contain the writer")
    (fun () ->
      ignore
        (Replicated_store.put store ~writer ~key:1 ~value:"x"
           ~storage_domain:foreign_leaf));
  let root = Domain_tree.root pop.Population.tree in
  ignore (Replicated_store.put store ~writer ~key:1 ~value:"x" ~storage_domain:root);
  Alcotest.check_raises "storage domain rebind"
    (Invalid_argument "Replicated_store.put: key already bound to another storage domain")
    (fun () ->
      ignore
        (Replicated_store.put store ~writer ~key:1 ~value:"y"
           ~storage_domain:(pop.Population.leaf_of_node.(writer))));
  Alcotest.check_raises "absent querier"
    (Invalid_argument "Replicated_store.get: querier not live") (fun () ->
      ignore (Replicated_store.get store ~querier:absent ~key:1))

let test_put_get_versions () =
  let pop = make_universe ~n:50 16 in
  let rings = Rings.build pop in
  let store = Replicated_store.create ~k:3 ~spread:Replica_set.Sibling rings in
  let reads0 = counter "replication.reads" in
  let failures0 = counter "replication.read_failures" in
  let key = 12345 in
  Alcotest.(check (option string)) "unknown key" None
    (Replicated_store.get store ~querier:0 ~key);
  Alcotest.(check int) "read failure counted" (failures0 + 1)
    (counter "replication.read_failures");
  let domain = pop.Population.leaf_of_node.(4) in
  let acks = Replicated_store.put store ~writer:4 ~key ~value:"v1" ~storage_domain:domain in
  Alcotest.(check int) "k acks" 3 acks;
  Alcotest.(check int) "version 1" 1 (Replicated_store.version store ~key);
  ignore (Replicated_store.put store ~writer:4 ~key ~value:"v2" ~storage_domain:domain);
  Alcotest.(check int) "version 2" 2 (Replicated_store.version store ~key);
  Alcotest.(check (option string)) "latest value" (Some "v2")
    (Replicated_store.get store ~querier:40 ~key);
  Alcotest.(check (list int)) "copies = holders"
    (sorted (Replicated_store.holders store ~key))
    (Array.to_list (Replicated_store.copies store ~key));
  Alcotest.(check int) "reads counted" (reads0 + 2) (counter "replication.reads")

let assert_copies_match_holders store keys =
  List.iter
    (fun key ->
      let holders = sorted (Replicated_store.holders store ~key) in
      let copies = Array.to_list (Replicated_store.copies store ~key) in
      if copies <> holders then
        Alcotest.failf "key %d: copies [%s] <> holders [%s]" key
          (String.concat ";" (List.map string_of_int copies))
          (String.concat ";" (List.map string_of_int holders)))
    keys

let test_join_rereplicates () =
  let pop = make_universe ~n:40 17 in
  let rings = Rings.build pop in
  let store = Replicated_store.create ~k:2 ~spread:Replica_set.Sibling rings in
  let rng = Rng.create 18 in
  let keys =
    List.init 30 (fun _ ->
        let writer = Rng.int_below rng 40 in
        let key = Id.random rng in
        let acks =
          Replicated_store.put store ~writer ~key ~value:"v"
            ~storage_domain:(pop.Population.leaf_of_node.(writer))
        in
        Alcotest.(check int) "write-through acks" 2 acks;
        key)
  in
  (* Depart a known holder of the first key, then bring it back: the
     ring content is identical to the original full membership, so
     placement — and hence its copy of that key — must be restored. *)
  let victim = (Replicated_store.copies store ~key:(List.hd keys)).(0) in
  Replicated_store.leave store victim;
  assert_copies_match_holders store keys;
  Alcotest.(check bool) "copy handed off on leave" true
    (Replicated_store.stored store ~node:victim ~key:(List.hd keys) = None);
  let moved0 = counter "replication.rereplications" in
  Replicated_store.join store victim;
  Alcotest.(check bool) "rejoined node live" true (Replicated_store.live store victim);
  assert_copies_match_holders store keys;
  Alcotest.(check bool) "rejoined node recovered its copy" true
    (Replicated_store.stored store ~node:victim ~key:(List.hd keys) <> None);
  Alcotest.(check bool) "re-replication counted" true
    (counter "replication.rereplications" > moved0)

let test_leave_hands_off () =
  let pop = make_universe ~n:40 19 in
  let rings = Rings.build pop in
  let store = Replicated_store.create ~k:2 ~spread:Replica_set.Sibling rings in
  let rng = Rng.create 20 in
  let keys =
    List.init 20 (fun _ ->
        let writer = Rng.int_below rng 40 in
        let key = Id.random rng in
        ignore
          (Replicated_store.put store ~writer ~key ~value:"v"
             ~storage_domain:(pop.Population.leaf_of_node.(writer)));
        key)
  in
  (* Depart a node that holds the first key. *)
  let victim = (Replicated_store.copies store ~key:(List.hd keys)).(0) in
  Replicated_store.leave store victim;
  Alcotest.(check bool) "gone" false (Replicated_store.live store victim);
  assert_copies_match_holders store keys;
  List.iter
    (fun key ->
      Alcotest.(check (option string)) "still readable" (Some "v")
        (Replicated_store.get store ~querier:(Replicated_store.members store).(0) ~key);
      if Replicated_store.stored store ~node:victim ~key <> None then
        Alcotest.fail "departed node still holds a copy")
    keys

let test_leave_sole_holder_hands_off () =
  let pop = make_universe ~n:60 21 in
  let rings = Rings.build pop in
  (* k = 1, flat: exactly one copy; a graceful leave must still not lose
     the acknowledged write. *)
  let store = Replicated_store.create ~k:1 ~spread:Replica_set.Flat rings in
  let key = Id.random (Rng.create 22) in
  let writer = 5 in
  let domain = Domain_tree.root pop.Population.tree in
  ignore (Replicated_store.put store ~writer ~key ~value:"only" ~storage_domain:domain);
  let holder = (Replicated_store.copies store ~key).(0) in
  Replicated_store.leave store holder;
  let holder' = (Replicated_store.copies store ~key).(0) in
  Alcotest.(check bool) "copy moved" true (holder' <> holder);
  let querier = (Replicated_store.members store).(0) in
  Alcotest.(check (option string)) "survived the handoff" (Some "only")
    (Replicated_store.get store ~querier ~key)

let test_net_mode_forbids_churn () =
  let pop = make_universe ~n:30 23 in
  let rings = Rings.build pop in
  let net =
    Net.create ~policy:fast_policy ~rings ~rng:(Rng.create 24) ~node_latency:oracle
      (Crescendo.build rings)
  in
  let store = Replicated_store.create ~net ~k:2 rings in
  Alcotest.check_raises "join"
    (Invalid_argument
       "Replicated_store.join: membership churn is direct-mode only (use the fault \
        plan in net mode)")
    (fun () -> Replicated_store.join store 0);
  Alcotest.check_raises "leave"
    (Invalid_argument
       "Replicated_store.leave: membership churn is direct-mode only (use the fault \
        plan in net mode)")
    (fun () -> Replicated_store.leave store 0)

(* --- read-repair over the simulated network ------------------------ *)

(* The pinned hand-counted scenario: a holder crashes, misses a write,
   revives — the next read returns the fresh value, repairs exactly that
   one stale replica, and drops the stand-in's now-superfluous copy;
   a second read touches nothing. *)
let test_read_repair_pinned_metrics () =
  let pop = make_universe ~n:24 25 in
  let rings = Rings.build pop in
  let plan = Fault_plan.none ~n:24 in
  let net =
    Net.create ~policy:fast_policy ~plan ~rings ~rng:(Rng.create 26) ~node_latency:oracle
      (Crescendo.build rings)
  in
  let store = Replicated_store.create ~net ~k:2 ~spread:Replica_set.Sibling rings in
  let key = Id.random (Rng.create 27) in
  let holders = Replicated_store.holders store ~key in
  (* unknown key: no placement yet *)
  Alcotest.(check int) "no placement before first put" 0 (Array.length holders);
  (* Write from the key's primary so reachability is trivial. *)
  let probe = Replica_set.compute rings ~spread:Replica_set.Sibling ~k:2 ~domain:0 ~key in
  let a = probe.(0) and b = probe.(1) in
  let acks =
    Replicated_store.put store ~writer:a ~key ~value:"v1" ~storage_domain:0
  in
  Alcotest.(check int) "both replicas written" 2 acks;
  (* b crashes and misses version 2; a stand-in c takes its place. *)
  Fault_plan.crash plan b;
  let acks2 = Replicated_store.put store ~writer:a ~key ~value:"v2" ~storage_domain:0 in
  Alcotest.(check int) "stand-in written" 2 acks2;
  let c =
    match List.filter (fun v -> v <> a && v <> b) (sorted (Replicated_store.copies store ~key)) with
    | [ c ] -> c
    | l -> Alcotest.failf "expected one stand-in, got %d" (List.length l)
  in
  Alcotest.(check (option (pair string int))) "b stale at v1" (Some ("v1", 1))
    (Replicated_store.stored store ~node:b ~key);
  (* b revives: the next read finds v2, repairs b, GCs c. *)
  Fault_plan.revive plan b;
  Net.clear_suspicions net;
  let reads0 = counter "replication.reads"
  and stale0 = counter "replication.stale_reads"
  and repairs0 = counter "replication.read_repairs"
  and gc0 = counter "replication.gc_copies" in
  Alcotest.(check (option string)) "read returns the fresh value" (Some "v2")
    (Replicated_store.get store ~querier:a ~key);
  Alcotest.(check int) "one read" (reads0 + 1) (counter "replication.reads");
  Alcotest.(check int) "one stale read" (stale0 + 1) (counter "replication.stale_reads");
  Alcotest.(check int) "one repair" (repairs0 + 1) (counter "replication.read_repairs");
  Alcotest.(check int) "stand-in collected" (gc0 + 1) (counter "replication.gc_copies");
  Alcotest.(check (option (pair string int))) "b repaired to v2" (Some ("v2", 2))
    (Replicated_store.stored store ~node:b ~key);
  Alcotest.(check (option (pair string int))) "c dropped its copy" None
    (Replicated_store.stored store ~node:c ~key);
  Alcotest.(check (list int)) "copies back to the ideal set" (List.sort compare [ a; b ])
    (Array.to_list (Replicated_store.copies store ~key));
  (* Second read: nothing stale, nothing to repair. *)
  Alcotest.(check (option string)) "second read" (Some "v2")
    (Replicated_store.get store ~querier:a ~key);
  Alcotest.(check int) "no further stale reads" (stale0 + 1)
    (counter "replication.stale_reads");
  Alcotest.(check int) "no further repairs" (repairs0 + 1)
    (counter "replication.read_repairs");
  Alcotest.(check int) "no further GC" (gc0 + 1) (counter "replication.gc_copies")

(* A read that reaches no current holder must not collect an ex-holder's
   copy — it may be the only copy of the acknowledged version. GC waits
   until a read re-homes the fresh version on a reachable holder. *)
let test_gc_waits_for_rehoming () =
  let pop = make_universe ~n:24 31 in
  let rings = Rings.build pop in
  let plan = Fault_plan.none ~n:24 in
  let net =
    Net.create ~policy:fast_policy ~plan ~rings ~rng:(Rng.create 32) ~node_latency:oracle
      (Crescendo.build rings)
  in
  let store = Replicated_store.create ~net ~k:2 ~spread:Replica_set.Sibling rings in
  let key = Id.random (Rng.create 33) in
  let probe = Replica_set.compute rings ~spread:Replica_set.Sibling ~k:2 ~domain:0 ~key in
  let a = probe.(0) and b = probe.(1) in
  ignore (Replicated_store.put store ~writer:a ~key ~value:"v1" ~storage_domain:0);
  (* b crashes and misses version 2; a stand-in c takes its place. *)
  Fault_plan.crash plan b;
  ignore (Replicated_store.put store ~writer:a ~key ~value:"v2" ~storage_domain:0);
  let c =
    match
      List.filter (fun v -> v <> a && v <> b) (sorted (Replicated_store.copies store ~key))
    with
    | [ c ] -> c
    | l -> Alcotest.failf "expected one stand-in, got %d" (List.length l)
  in
  Fault_plan.revive plan b;
  Net.clear_suspicions net;
  (* Total message loss: current holders a and b are live but
     unreachable; ex-holder c still reads its own copy. *)
  Fault_plan.set_loss plan 1.0;
  let gc0 = counter "replication.gc_copies"
  and fails0 = counter "replication.read_failures" in
  Alcotest.(check (option string)) "read served from the ex-holder" (Some "v2")
    (Replicated_store.get store ~querier:c ~key);
  Alcotest.(check int) "no read failure" fails0 (counter "replication.read_failures");
  Alcotest.(check int) "nothing collected while holders were unreachable" gc0
    (counter "replication.gc_copies");
  Alcotest.(check (option (pair string int))) "ex-holder keeps its copy" (Some ("v2", 2))
    (Replicated_store.stored store ~node:c ~key);
  (* Loss lifts: the next read re-homes v2 on the holders, then GCs c. *)
  Fault_plan.set_loss plan 0.0;
  Net.clear_suspicions net;
  Alcotest.(check (option string)) "read after recovery" (Some "v2")
    (Replicated_store.get store ~querier:a ~key);
  Alcotest.(check int) "stand-in collected after re-homing" (gc0 + 1)
    (counter "replication.gc_copies");
  Alcotest.(check (option (pair string int))) "ex-holder copy dropped" None
    (Replicated_store.stored store ~node:c ~key);
  Alcotest.(check (list int)) "copies back to the ideal set" (List.sort compare [ a; b ])
    (Array.to_list (Replicated_store.copies store ~key))

(* --- containment (the acceptance-criterion test) -------------------- *)

let publish_keys store pop ~count ~seed =
  let rng = Rng.create seed in
  let n = Population.size pop in
  List.init count (fun _ ->
      let writer = Rng.int_below rng n in
      let key = Id.random rng in
      let domain = pop.Population.leaf_of_node.(writer) in
      ignore (Replicated_store.put store ~writer ~key ~value:"d" ~storage_domain:domain);
      (key, domain))

let test_crash_domain_containment () =
  let pop = make_universe ~fanout:4 ~levels:2 ~n:200 28 in
  let rings = Rings.build pop in
  let sibling = Replicated_store.create ~k:2 ~spread:Replica_set.Sibling rings in
  let flat = Replicated_store.create ~k:2 ~spread:Replica_set.Flat rings in
  let keys = publish_keys sibling pop ~count:100 ~seed:29 in
  ignore (publish_keys flat pop ~count:100 ~seed:29);
  let tree = pop.Population.tree in
  let lost store ~outage =
    List.length
      (List.filter
         (fun (key, _) ->
           Array.for_all
             (fun c ->
               Domain_tree.is_ancestor tree ~anc:outage
                 ~desc:pop.Population.leaf_of_node.(c))
             (Replicated_store.copies store ~key))
         keys)
  in
  (* Sibling spread, k = 2: the outage of ANY single leaf domain loses
     nothing. *)
  Array.iter
    (fun leaf ->
      let l = lost sibling ~outage:leaf in
      if l > 0 then Alcotest.failf "sibling spread lost %d keys to leaf %d outage" l leaf)
    (Domain_tree.leaves tree);
  (* Flat k-successor keeps every copy inside the (leaf) storage domain:
     crashing the leaf that stores the first key must lose it. *)
  let _, loaded_leaf = List.hd keys in
  let l = lost flat ~outage:loaded_leaf in
  Alcotest.(check bool) "flat loses keys to its own-domain outage" true (l > 0)

(* Same claim on the live read path: with one leaf domain down, every
   key is still readable through the simulated network. *)
let test_outage_read_path () =
  let pop = make_universe ~fanout:4 ~levels:2 ~n:200 30 in
  let rings = Rings.build pop in
  let plan = Fault_plan.none ~n:200 in
  let net =
    Net.create ~policy:fast_policy ~plan ~rings ~rng:(Rng.create 31) ~node_latency:oracle
      (Crescendo.build rings)
  in
  let store = Replicated_store.create ~net ~k:2 ~spread:Replica_set.Sibling rings in
  let keys = publish_keys store pop ~count:30 ~seed:32 in
  let victim = pop.Population.leaf_of_node.(0) in
  Fault_plan.crash_domain plan pop ~domain:victim;
  let rng = Rng.create 33 in
  let live =
    Array.of_list
      (List.filter (fun v -> not (Fault_plan.is_crashed plan v)) (List.init 200 Fun.id))
  in
  List.iter
    (fun (key, _) ->
      let querier = Rng.pick rng live in
      match Replicated_store.get store ~querier ~key with
      | Some "d" -> ()
      | Some v -> Alcotest.failf "key %d: read %S" key v
      | None -> Alcotest.failf "key %d unreadable during the outage" key)
    keys

(* --- churn soak ----------------------------------------------------- *)

(* 200 interleaved join/leave/write/read events on the virtual clock:
   no acknowledged write is ever lost, and the replica invariant holds
   at the end for every key. *)
let test_churn_soak () =
  let pop = make_universe ~fanout:3 ~levels:2 ~n:400 34 in
  let rings = Rings.build_partial pop ~present:[||] in
  let store = Replicated_store.create ~k:3 ~spread:Replica_set.Sibling rings in
  let root = Domain_tree.root pop.Population.tree in
  let test_rng = Rng.create 35 in
  let model = Hashtbl.create 64 in
  let known = ref [||] in
  let lost = ref [] in
  let on_event ev =
    Replicated_store.churn_hook store ev;
    match ev with
    | Churn.Init _ -> ()
    | Churn.Join _ | Churn.Leave _ ->
        let mem = Replicated_store.members store in
        if Array.length mem > 0 then begin
          (* one write: a fresh key or an overwrite of a known one *)
          let writer = Rng.pick test_rng mem in
          let key =
            if Array.length !known > 0 && Rng.bool test_rng then Rng.pick test_rng !known
            else begin
              let key = Id.random test_rng in
              known := Array.append !known [| key |];
              key
            end
          in
          let value = Printf.sprintf "%d.%d" key (Rng.int_below test_rng 1000) in
          let acks =
            Replicated_store.put store ~writer ~key ~value ~storage_domain:root
          in
          if acks > 0 then Hashtbl.replace model key value;
          (* one read of a random known key *)
          let probe = Rng.pick test_rng !known in
          match (Replicated_store.get store ~querier:(Rng.pick test_rng mem) ~key:probe,
                 Hashtbl.find_opt model probe)
          with
          | Some got, Some want when got = want -> ()
          | None, None -> ()
          | got, want ->
              lost :=
                Printf.sprintf "key %d: read %s, acknowledged %s" probe
                  (Option.value ~default:"-" got)
                  (Option.value ~default:"-" want)
                :: !lost
        end
  in
  let config =
    {
      Churn.initial_nodes = 120;
      events = 200;
      join_fraction = 0.5;
      probes_per_event = 0;
      mean_interarrival = 1.0;
    }
  in
  let report = Churn.run ~on_event (Rng.create 36) pop config in
  Alcotest.(check int) "200 events ran" 200 (report.Churn.joins + report.Churn.leaves);
  (match !lost with [] -> () | l -> Alcotest.failf "%d bad reads; first: %s" (List.length l) (List.hd l));
  (* Every acknowledged write is still readable at its latest value. *)
  let querier = (Replicated_store.members store).(0) in
  Hashtbl.iter
    (fun key value ->
      match Replicated_store.get store ~querier ~key with
      | Some got when got = value -> ()
      | got ->
          Alcotest.failf "lost acknowledged write: key %d holds %s, expected %s" key
            (Option.value ~default:"-" got) value)
    model;
  (* And the replica invariant holds for every key. *)
  let live = Array.length (Replicated_store.members store) in
  Hashtbl.iter
    (fun key _ ->
      let copies = Replicated_store.copies store ~key in
      if Array.length copies <> min 3 live then
        Alcotest.failf "key %d: %d copies, expected %d" key (Array.length copies)
          (min 3 live))
    model;
  Alcotest.(check bool) "churn moved replicas" true
    (counter "replication.rereplications" > 0)

let test_churn_hook_init_joins () =
  let pop = make_universe ~n:30 37 in
  let rings = Rings.build_partial pop ~present:[||] in
  let store = Replicated_store.create ~k:2 rings in
  Alcotest.(check int) "starts empty" 0 (Array.length (Replicated_store.members store));
  Replicated_store.churn_hook store (Churn.Init [| 3; 9; 21 |]);
  Alcotest.(check (list int)) "initial members joined" [ 3; 9; 21 ]
    (Array.to_list (Replicated_store.members store));
  (* Idempotent for already-present nodes, additive for new ones. *)
  Replicated_store.churn_hook store (Churn.Init [| 3; 5 |]);
  Alcotest.(check (list int)) "re-init only adds" [ 3; 5; 9; 21 ]
    (Array.to_list (Replicated_store.members store))

let suites =
  [
    ( "replica-set",
      [
        Alcotest.test_case "validation and spread names" `Quick test_replica_set_validates;
        Alcotest.test_case "flat k=1 = responsible node" `Quick test_flat_k1_is_responsible;
        Alcotest.test_case "flat stays inside the domain" `Quick test_flat_stays_inside_domain;
        Alcotest.test_case "sibling spreads to the nearest sibling leaf" `Quick
          test_sibling_nearest_first;
        Alcotest.test_case "sibling skips dead leaves" `Quick test_sibling_skips_dead_leaves;
        Alcotest.test_case "single leaf degrades to flat" `Quick
          test_sibling_single_leaf_degrades_to_flat;
      ] );
    ( "replicated-store",
      [
        Alcotest.test_case "validation" `Quick test_store_validates;
        Alcotest.test_case "put/get with versions" `Quick test_put_get_versions;
        Alcotest.test_case "join re-replicates" `Quick test_join_rereplicates;
        Alcotest.test_case "leave hands off" `Quick test_leave_hands_off;
        Alcotest.test_case "k=1 leave keeps the only copy" `Quick
          test_leave_sole_holder_hands_off;
        Alcotest.test_case "net mode forbids join/leave" `Quick test_net_mode_forbids_churn;
        Alcotest.test_case "read-repair: pinned hand-counted metrics" `Quick
          test_read_repair_pinned_metrics;
        Alcotest.test_case "GC spares the last reachable copy" `Quick
          test_gc_waits_for_rehoming;
      ] );
    ( "durability-containment",
      [
        Alcotest.test_case "crash_domain loses 0 keys with sibling spread" `Quick
          test_crash_domain_containment;
        Alcotest.test_case "reads survive a whole-domain outage" `Quick
          test_outage_read_path;
      ] );
    ( "replication-churn",
      [
        Alcotest.test_case "200-event soak: no acknowledged write lost" `Quick
          test_churn_soak;
        Alcotest.test_case "churn_hook Init joins the initial membership" `Quick
          test_churn_hook_init_joins;
      ] );
  ]
