(* Tests for the graph substrate and the transit-stub topology. *)

open Canon_topology
module Rng = Canon_rng.Rng

let test_graph_basics () =
  let g = Graph.create 4 in
  Alcotest.(check int) "vertices" 4 (Graph.num_vertices g);
  Alcotest.(check int) "no edges" 0 (Graph.num_edges g);
  Graph.add_edge g 0 1 5.0;
  Graph.add_edge g 1 2 7.0;
  Alcotest.(check int) "edges" 2 (Graph.num_edges g);
  Alcotest.(check bool) "has edge" true (Graph.has_edge g 0 1);
  Alcotest.(check bool) "symmetric" true (Graph.has_edge g 1 0);
  Alcotest.(check bool) "absent" false (Graph.has_edge g 0 2);
  Alcotest.(check int) "degree" 2 (Graph.degree g 1)

let test_graph_invalid () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop") (fun () ->
      Graph.add_edge g 1 1 1.0);
  Alcotest.check_raises "duplicate" (Invalid_argument "Graph.add_edge: duplicate edge") (fun () ->
      Graph.add_edge g 1 0 2.0);
  Alcotest.check_raises "bad weight" (Invalid_argument "Graph.add_edge: non-positive weight")
    (fun () -> Graph.add_edge g 1 2 0.0);
  Alcotest.check_raises "empty graph" (Invalid_argument "Graph.create: need at least one vertex")
    (fun () -> ignore (Graph.create 0))

let test_dijkstra_line () =
  let g = Graph.create 4 in
  Graph.add_edge g 0 1 1.0;
  Graph.add_edge g 1 2 2.0;
  Graph.add_edge g 2 3 3.0;
  let d = Graph.dijkstra g 0 in
  Alcotest.(check (array (float 1e-9))) "line distances" [| 0.0; 1.0; 3.0; 6.0 |] d

let test_dijkstra_shortcut () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 10.0;
  Graph.add_edge g 0 2 1.0;
  Graph.add_edge g 2 1 1.0;
  let d = Graph.dijkstra g 0 in
  Alcotest.(check (float 1e-9)) "takes shortcut" 2.0 d.(1)

let test_dijkstra_unreachable () =
  let g = Graph.create 3 in
  Graph.add_edge g 0 1 1.0;
  let d = Graph.dijkstra g 0 in
  Alcotest.(check bool) "unreachable" true (d.(2) = infinity);
  Alcotest.(check bool) "not connected" false (Graph.is_connected g)

let prop_dijkstra_triangle =
  QCheck.Test.make ~count:50 ~name:"dijkstra satisfies triangle inequality"
    QCheck.(int_range 1 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 8 + Rng.int_below rng 12 in
      let g = Graph.create n in
      (* random connected graph: ring + chords *)
      for i = 0 to n - 1 do
        Graph.add_edge g i ((i + 1) mod n) (1.0 +. Rng.float rng)
      done;
      for _ = 1 to n do
        let a = Rng.int_below rng n and b = Rng.int_below rng n in
        if a <> b && not (Graph.has_edge g a b) then
          Graph.add_edge g a b (1.0 +. (10.0 *. Rng.float rng))
      done;
      let dist = Array.init n (fun v -> Graph.dijkstra g v) in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          for c = 0 to n - 1 do
            if dist.(a).(b) > dist.(a).(c) +. dist.(c).(b) +. 1e-9 then ok := false
          done;
          if Float.abs (dist.(a).(b) -. dist.(b).(a)) > 1e-9 then ok := false
        done
      done;
      !ok)

let ts_fixture = lazy (Transit_stub.generate (Rng.create 5) Transit_stub.default_params)

let test_transit_stub_shape () =
  let ts = Lazy.force ts_fixture in
  Alcotest.(check int) "2040 routers" 2040 (Transit_stub.num_routers ts);
  Alcotest.(check int) "40 transit" 40 (Transit_stub.transit_count ts);
  Alcotest.(check int) "2000 stubs" 2000 (Array.length (Transit_stub.stub_routers ts));
  Alcotest.(check bool) "connected" true (Graph.is_connected (Transit_stub.graph ts))

let test_transit_stub_hierarchy () =
  let ts = Lazy.force ts_fixture in
  let tree = Transit_stub.hierarchy ts in
  let module D = Canon_hierarchy.Domain_tree in
  Alcotest.(check int) "2000 leaves" 2000 (D.num_leaves tree);
  Alcotest.(check int) "height 4" 4 (D.height tree);
  (* leaf <-> stub router mapping roundtrips *)
  Array.iter
    (fun v ->
      let leaf = Transit_stub.leaf_of_stub_router ts v in
      Alcotest.(check int) "roundtrip" v (Transit_stub.stub_router_of_leaf ts leaf))
    (Transit_stub.stub_routers ts);
  Alcotest.(check bool) "transit vertex rejected" true
    (try
       ignore (Transit_stub.leaf_of_stub_router ts 0);
       false
     with Invalid_argument _ -> true)

let test_latency_classes () =
  let ts = Lazy.force ts_fixture in
  let lat = Latency.create ts in
  let stubs = Transit_stub.stub_routers ts in
  (* same stub router: just the two access links *)
  Alcotest.(check (float 1e-9)) "same stub" 2.0 (Latency.node_latency lat stubs.(0) stubs.(0));
  (* node latencies are symmetric and positive *)
  let rng = Rng.create 17 in
  for _ = 1 to 200 do
    let a = Rng.pick rng stubs and b = Rng.pick rng stubs in
    let l1 = Latency.node_latency lat a b and l2 = Latency.node_latency lat b a in
    Alcotest.(check (float 1e-6)) "symmetric" l1 l2;
    if l1 < 2.0 then Alcotest.fail "latency below access floor"
  done;
  (* stub routers within one stub domain are close (at most a few 5 ms
     hops plus access links) *)
  let same_domain_max = ref 0.0 in
  let params = Transit_stub.params ts in
  let per_domain = params.Transit_stub.stub_routers_per_domain in
  for i = 0 to per_domain - 1 do
    let l = Latency.node_latency lat stubs.(0) stubs.(i) in
    if l > !same_domain_max then same_domain_max := l
  done;
  Alcotest.(check bool) "same stub domain cheap" true
    (!same_domain_max <= 2.0 +. (5.0 *. Float.of_int per_domain));
  (* mean latency across the whole internet is dominated by transit links *)
  let mean = Latency.mean_node_latency lat (Rng.create 23) ~samples:2000 in
  Alcotest.(check bool) "mean in plausible band" true (mean > 100.0 && mean < 1500.0)

(* --- the lazy memoized oracle -------------------------------------- *)

let small_params =
  {
    Transit_stub.default_params with
    Transit_stub.transit_domains = 2;
    transit_nodes_per_domain = 2;
    stub_domains_per_transit_node = 2;
    stub_routers_per_domain = 3;
  }

(* The tentpole equality pin: on a seeded topology the lazy oracle (and
   a memory-capped one that must recompute evicted rows) answers
   bit-identically to the eager all-pairs table, and [create] runs no
   Dijkstra up front. *)
let test_lazy_matches_eager () =
  let ts = Transit_stub.generate (Rng.create 11) small_params in
  let n = Transit_stub.num_routers ts in
  let lazy_ = Latency.create ts in
  let capped = Latency.create ~max_rows:2 ts in
  Alcotest.(check int) "no Dijkstra at create" 0 (Latency.stats lazy_).Latency.rows_computed;
  let eager = Latency.create_eager ts in
  Alcotest.(check int) "eager computed every row" n
    (Latency.stats eager).Latency.rows_computed;
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      let e = Latency.router_latency eager a b in
      if not (Float.equal (Latency.router_latency lazy_ a b) e) then
        Alcotest.failf "lazy <> eager at (%d, %d)" a b;
      if not (Float.equal (Latency.router_latency capped a b) e) then
        Alcotest.failf "capped <> eager at (%d, %d)" a b;
      if not (Float.equal (Latency.node_latency lazy_ a b) (Latency.node_latency eager a b))
      then Alcotest.failf "node latency lazy <> eager at (%d, %d)" a b
    done
  done;
  let st = Latency.stats lazy_ in
  Alcotest.(check int) "lazy computed each row once" n st.Latency.rows_computed;
  Alcotest.(check int) "all rows resident" n st.Latency.rows_resident;
  Alcotest.(check int) "no evictions unbounded" 0 st.Latency.evictions;
  Alcotest.(check bool) "row reuse counted as hits" true (st.Latency.hits > 0);
  (* row 0 was evicted long ago under the cap of 2; touching it again
     must recompute it bit-identically. *)
  Alcotest.(check bool) "evicted row recomputes identically" true
    (Float.equal (Latency.router_latency capped 0 (n - 1))
       (Latency.router_latency eager 0 (n - 1)));
  let stc = Latency.stats capped in
  Alcotest.(check int) "cap bounds residency" 2 stc.Latency.rows_resident;
  Alcotest.(check bool) "cap evicts" true (stc.Latency.evictions > 0);
  Alcotest.(check bool) "cap recomputes evicted rows" true (stc.Latency.rows_computed > n)

let test_lazy_create_invalid () =
  let ts = Transit_stub.generate (Rng.create 11) small_params in
  Alcotest.check_raises "bad cap" (Invalid_argument "Latency.create: max_rows must be >= 1")
    (fun () -> ignore (Latency.create ~max_rows:0 ts))

(* On a two-stub topology every sampled pair must be the distinct one,
   so the estimate is exactly that pair's latency — the old sampler drew
   a = b half the time and dragged the mean toward 2 ms. *)
let test_mean_node_latency_distinct_pairs () =
  let params =
    {
      Transit_stub.default_params with
      Transit_stub.transit_domains = 1;
      transit_nodes_per_domain = 1;
      stub_domains_per_transit_node = 1;
      stub_routers_per_domain = 2;
    }
  in
  let ts = Transit_stub.generate (Rng.create 3) params in
  let lat = Latency.create ts in
  let stubs = Transit_stub.stub_routers ts in
  let pair = Latency.node_latency lat stubs.(0) stubs.(1) in
  Alcotest.(check bool) "distinct pair above access floor" true (pair > 2.0);
  let mean = Latency.mean_node_latency lat (Rng.create 29) ~samples:500 in
  Alcotest.(check (float 1e-9)) "mean = the one distinct pair" pair mean

let test_mean_node_latency_single_stub () =
  let params =
    {
      Transit_stub.default_params with
      Transit_stub.transit_domains = 1;
      transit_nodes_per_domain = 1;
      stub_domains_per_transit_node = 1;
      stub_routers_per_domain = 1;
    }
  in
  let ts = Transit_stub.generate (Rng.create 3) params in
  let lat = Latency.create ts in
  let mean = Latency.mean_node_latency lat (Rng.create 31) ~samples:100 in
  Alcotest.(check (float 1e-9)) "degenerate single stub = 2 x access" 2.0 mean

(* Large-n setup smoke (the CI budget guard): lazy create at ~16k
   routers is instant, and 1000 lookups only pay for the rows they
   touch. The eager path (16k Dijkstras, ~2 GiB matrix) is deliberately
   not exercised. *)
let test_lazy_large_n_smoke () =
  let params =
    { Transit_stub.default_params with Transit_stub.stub_routers_per_domain = 82 }
  in
  let t0 = Sys.time () in
  let ts = Transit_stub.generate (Rng.create 13) params in
  let lat = Latency.create ts in
  Alcotest.(check bool) "16k+ routers" true (Transit_stub.num_routers ts > 16384);
  Alcotest.(check int) "no Dijkstra at create" 0 (Latency.stats lat).Latency.rows_computed;
  let stubs = Transit_stub.stub_routers ts in
  let rng = Rng.create 37 in
  for _ = 1 to 1000 do
    let a = Rng.pick rng stubs and b = Rng.pick rng stubs in
    let l = Latency.node_latency lat a b in
    if l < 2.0 then Alcotest.fail "latency below access floor"
  done;
  let st = Latency.stats lat in
  Alcotest.(check bool) "at most one row per lookup" true (st.Latency.rows_computed <= 1000);
  Alcotest.(check bool) "setup + 1k lookups within budget" true (Sys.time () -. t0 < 60.0)

let test_custom_params () =
  let params =
    {
      Transit_stub.default_params with
      Transit_stub.transit_domains = 2;
      transit_nodes_per_domain = 2;
      stub_domains_per_transit_node = 2;
      stub_routers_per_domain = 3;
    }
  in
  let ts = Transit_stub.generate (Rng.create 7) params in
  Alcotest.(check int) "routers" (4 + 24) (Transit_stub.num_routers ts);
  Alcotest.(check bool) "connected" true (Graph.is_connected (Transit_stub.graph ts))

let suites =
  [
    ( "topology",
      [
        Alcotest.test_case "graph basics" `Quick test_graph_basics;
        Alcotest.test_case "graph invalid" `Quick test_graph_invalid;
        Alcotest.test_case "dijkstra line" `Quick test_dijkstra_line;
        Alcotest.test_case "dijkstra shortcut" `Quick test_dijkstra_shortcut;
        Alcotest.test_case "dijkstra unreachable" `Quick test_dijkstra_unreachable;
        QCheck_alcotest.to_alcotest prop_dijkstra_triangle;
        Alcotest.test_case "transit-stub shape" `Quick test_transit_stub_shape;
        Alcotest.test_case "transit-stub hierarchy" `Quick test_transit_stub_hierarchy;
        Alcotest.test_case "latency classes" `Slow test_latency_classes;
        Alcotest.test_case "lazy oracle = eager table" `Quick test_lazy_matches_eager;
        Alcotest.test_case "lazy oracle bad cap" `Quick test_lazy_create_invalid;
        Alcotest.test_case "mean latency excludes self-pairs" `Quick
          test_mean_node_latency_distinct_pairs;
        Alcotest.test_case "mean latency single-stub degenerate" `Quick
          test_mean_node_latency_single_stub;
        Alcotest.test_case "lazy oracle 16k-router smoke" `Slow test_lazy_large_n_smoke;
        Alcotest.test_case "custom params" `Quick test_custom_params;
      ] );
  ]
