(* Tests for the DHT constructions and routing engines: these check the
   paper's structural claims directly — Chord equivalence, Canon merge
   conditions, intra-domain path locality, inter-domain path
   convergence, and the degree/hop bounds of Theorems 1-5. *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng

let make_pop ?(seed = 1) ?(policy = Placement.Zipfian 1.25) ~fanout ~levels ~n () =
  let rng = Rng.create seed in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout ~levels) in
  Population.create rng ~tree ~policy ~n

let log2f x = log x /. log 2.0

(* --- Ring --------------------------------------------------------- *)

let mini_ring () =
  (* ids: node 0 -> 10, node 1 -> 20, node 2 -> 30, node 3 -> 4000000000 *)
  let ids = [| 10; 20; 30; 4000000000 |] in
  (Ring.of_members ~ids ~members:[| 0; 1; 2; 3 |], ids)

let test_ring_searches () =
  let ring, _ids = mini_ring () in
  Alcotest.(check int) "size" 4 (Ring.size ring);
  Alcotest.(check int) "first at-or-after exact" 1 (Ring.first_at_or_after ring 20);
  Alcotest.(check int) "first at-or-after between" 2 (Ring.first_at_or_after ring 21);
  Alcotest.(check int) "first at-or-after wraps" 0 (Ring.first_at_or_after ring 4000000001);
  Alcotest.(check int) "successor skips self" 2 (Ring.successor_of_id ring 20);
  Alcotest.(check int) "predecessor exact" 1 (Ring.predecessor_of_id ring 20);
  Alcotest.(check int) "predecessor between" 1 (Ring.predecessor_of_id ring 29);
  Alcotest.(check int) "predecessor wraps" 3 (Ring.predecessor_of_id ring 5);
  Alcotest.(check bool) "contains" true (Ring.contains ring 30);
  Alcotest.(check bool) "not contains" false (Ring.contains ring 31)

let test_ring_successor_distance () =
  let ring, _ = mini_ring () in
  Alcotest.(check int) "simple" 10 (Ring.successor_distance ring 10);
  Alcotest.(check int) "wrapping" (Id.space - 4000000000 + 10) (Ring.successor_distance ring 4000000000);
  let single = Ring.of_members ~ids:[| 42 |] ~members:[| 0 |] in
  Alcotest.(check int) "singleton" Id.space (Ring.successor_distance single 42)

let test_ring_finger () =
  let ring, _ = mini_ring () in
  (* from id 10: closest node at least 16 away is node 2 (id 30, d 20) *)
  Alcotest.(check (option int)) "finger 16" (Some 2) (Ring.finger ring 10 16);
  Alcotest.(check (option int)) "finger 1" (Some 1) (Ring.finger ring 10 1);
  (* from a singleton ring the walk wraps to self *)
  let single = Ring.of_members ~ids:[| 42 |] ~members:[| 0 |] in
  Alcotest.(check (option int)) "singleton none" None (Ring.finger single 42 1)

let test_ring_arcs () =
  let ring, _ = mini_ring () in
  Alcotest.(check int) "arc simple" 2 (Ring.arc_count ring ~start:10 ~len:15);
  Alcotest.(check int) "arc all" 4 (Ring.arc_count ring ~start:0 ~len:Id.space);
  Alcotest.(check int) "arc empty" 0 (Ring.arc_count ring ~start:31 ~len:100);
  (* wrapping arc from near the top: [4000000001, 2^32) U [0, ~5000000) *)
  Alcotest.(check int) "arc wrap" 3 (Ring.arc_count ring ~start:4000000001 ~len:300_000_000);
  Alcotest.(check int) "arc nth" 1 (Ring.arc_nth ring ~start:10 ~len:15 1);
  Alcotest.(check int) "arc nth wrap" 1 (Ring.arc_nth ring ~start:4000000001 ~len:300_000_000 1)

let test_ring_duplicate_ids () =
  Alcotest.(check bool) "duplicate rejected" true
    (try
       ignore (Ring.of_members ~ids:[| 5; 5 |] ~members:[| 0; 1 |]);
       false
     with Invalid_argument _ -> true)

let prop_ring_predecessor_successor =
  QCheck.Test.make ~count:300 ~name:"ring: predecessor/successor bracket every key"
    QCheck.(pair small_int (int_bound 1_000_000))
    (fun (seed, key0) ->
      let rng = Rng.create (seed + 1) in
      let n = 2 + Rng.int_below rng 60 in
      let ids = Population.unique_ids rng n in
      let ring = Ring.of_members ~ids ~members:(Array.init n Fun.id) in
      let key = (key0 * 4001) land (Id.space - 1) in
      let pred = Ring.predecessor_of_id ring key in
      let next = Ring.first_at_or_after ring (Id.add key 1) in
      (* The predecessor manages [key]: no member lies strictly between
         pred and key. *)
      Array.for_all
        (fun node ->
          node = pred
          || not
               (Id.in_clockwise_interval ids.(node) ~lo:ids.(pred) ~hi:key
               && ids.(node) <> ids.(pred)))
        (Array.init n Fun.id)
      && Id.distance ids.(pred) key < Id.space
      && ids.(next) = ids.(next))

(* --- Chord -------------------------------------------------------- *)

let chord_fixture =
  lazy
    (let pop = make_pop ~fanout:10 ~levels:1 ~n:1024 () in
     (pop, Chord.build pop))

let test_chord_successor_links () =
  let pop, ov = Lazy.force chord_fixture in
  let n = Population.size pop in
  let ring = Ring.of_members ~ids:pop.Population.ids ~members:(Array.init n Fun.id) in
  for node = 0 to n - 1 do
    let succ = Ring.successor_of_id ring pop.Population.ids.(node) in
    if not (Overlay.has_link ov node succ) then
      Alcotest.failf "node %d lacks successor link" node
  done

let test_chord_routing_reaches () =
  let _pop, ov = Lazy.force chord_fixture in
  let rng = Rng.create 7 in
  for _ = 1 to 500 do
    let src = Rng.int_below rng (Overlay.size ov) in
    let dst = Rng.int_below rng (Overlay.size ov) in
    let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches dst" dst (Route.destination route);
    Alcotest.(check int) "starts at src" src (Route.source route)
  done

let test_chord_key_routing_hits_predecessor () =
  let pop, ov = Lazy.force chord_fixture in
  let n = Population.size pop in
  let ring = Ring.of_members ~ids:pop.Population.ids ~members:(Array.init n Fun.id) in
  let rng = Rng.create 11 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng n in
    let key = Id.random rng in
    let route = Router.greedy_clockwise ov ~src ~key in
    Alcotest.(check int) "ends at key predecessor" (Ring.predecessor_of_id ring key)
      (Route.destination route)
  done

let test_chord_degree_bound () =
  let pop, ov = Lazy.force chord_fixture in
  let n = Population.size pop in
  (* Theorem 1: E[degree] <= log2(n-1) + 1. The empirical mean over 1024
     nodes concentrates tightly; allow a small sampling margin. *)
  let bound = log2f (Float.of_int (n - 1)) +. 1.0 in
  let mean = Overlay.mean_degree ov in
  if mean > bound +. 0.25 then Alcotest.failf "mean degree %.3f exceeds bound %.3f" mean bound;
  if mean < 0.6 *. bound then Alcotest.failf "mean degree %.3f suspiciously low" mean

let test_chord_hops_bound () =
  let _pop, ov = Lazy.force chord_fixture in
  let n = Overlay.size ov in
  let rng = Rng.create 13 in
  let samples = 2000 in
  let total = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    total := !total + Route.hops (Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst))
  done;
  let mean = Float.of_int !total /. Float.of_int samples in
  (* Theorem 4: E[hops] <= 0.5 log2(n-1) + 0.5  (~5.5 at n=1024). *)
  let bound = (0.5 *. log2f (Float.of_int (n - 1))) +. 0.5 in
  if mean > bound +. 0.3 then Alcotest.failf "mean hops %.3f exceeds bound %.3f" mean bound;
  if mean < 2.0 then Alcotest.failf "mean hops %.3f suspiciously low" mean

let test_chord_deterministic () =
  let pop = make_pop ~seed:5 ~fanout:10 ~levels:1 ~n:256 () in
  let a = Chord.build pop and b = Chord.build pop in
  for node = 0 to Population.size pop - 1 do
    let sort l = let l = Array.copy l in Array.sort Int.compare l; l in
    Alcotest.(check (array int)) "same links" (sort (Overlay.links a node)) (sort (Overlay.links b node))
  done

(* --- Crescendo ---------------------------------------------------- *)

let crescendo_fixture =
  lazy
    (let pop = make_pop ~seed:2 ~fanout:5 ~levels:3 ~n:2000 () in
     let rings = Rings.build pop in
     (pop, rings, Crescendo.build rings))

let test_crescendo_flat_equals_chord () =
  let pop = make_pop ~seed:3 ~fanout:10 ~levels:1 ~n:512 () in
  let chord = Chord.build pop in
  let crescendo = Crescendo.build (Rings.build pop) in
  for node = 0 to Population.size pop - 1 do
    let sort l = let l = Array.copy l in Array.sort Int.compare l; l in
    Alcotest.(check (array int)) "flat crescendo = chord"
      (sort (Overlay.links chord node))
      (sort (Overlay.links crescendo node))
  done

let test_crescendo_successor_at_every_level () =
  let pop, rings, ov = Lazy.force crescendo_fixture in
  for node = 0 to Population.size pop - 1 do
    let id = pop.Population.ids.(node) in
    Array.iter
      (fun domain ->
        let ring = Rings.ring rings domain in
        if Ring.size ring >= 2 then begin
          let succ = Ring.successor_of_id ring id in
          if not (Overlay.has_link ov node succ) then
            Alcotest.failf "node %d lacks level successor in domain %d" node domain
        end)
      (Rings.chain rings node)
  done

let test_crescendo_condition_b () =
  (* Every link leaving the node's leaf domain must be strictly closer
     than the closest node of the child ring at the level where the
     link was created (the lca level). *)
  let pop, rings, ov = Lazy.force crescendo_fixture in
  let tree = pop.Population.tree in
  Overlay.iter_links ov (fun src dst ->
      let leaf_src = pop.Population.leaf_of_node.(src) in
      let leaf_dst = pop.Population.leaf_of_node.(dst) in
      if leaf_src <> leaf_dst then begin
        let lca = Domain_tree.lca tree leaf_src leaf_dst in
        (* src's child domain under the lca *)
        let child = Domain_tree.ancestor_at_depth tree leaf_src (Domain_tree.depth tree lca + 1) in
        let child_ring = Rings.ring rings child in
        let d_own = Ring.successor_distance child_ring pop.Population.ids.(src) in
        let d = Id.distance pop.Population.ids.(src) pop.Population.ids.(dst) in
        if d >= d_own then
          Alcotest.failf "link %d->%d violates condition (b): d=%d d_own=%d" src dst d d_own
      end)

let test_crescendo_routing_reaches () =
  let _pop, _rings, ov = Lazy.force crescendo_fixture in
  let rng = Rng.create 17 in
  for _ = 1 to 500 do
    let src = Rng.int_below rng (Overlay.size ov) in
    let dst = Rng.int_below rng (Overlay.size ov) in
    let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches dst" dst (Route.destination route)
  done

let test_crescendo_intra_domain_locality () =
  (* Paper §2.2: the route between two nodes of a domain never leaves
     the lowest domain containing both. *)
  let pop, _rings, ov = Lazy.force crescendo_fixture in
  let tree = pop.Population.tree in
  let rng = Rng.create 19 in
  let checked = ref 0 in
  let n = Population.size pop in
  while !checked < 300 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    if src <> dst then begin
      let lca = Population.lca_of_nodes pop src dst in
      if Domain_tree.depth tree lca >= 1 then begin
        incr checked;
        let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
        Array.iter
          (fun node ->
            let leaf = pop.Population.leaf_of_node.(node) in
            if not (Domain_tree.is_ancestor tree ~anc:lca ~desc:leaf) then
              Alcotest.failf "route %d->%d leaves lca domain %d at node %d" src dst lca node)
          route.Route.nodes
      end
    end
  done

let test_crescendo_inter_domain_convergence () =
  (* Paper §2.2: all routes from nodes of a domain D to an outside node
     t exit D through the closest predecessor of t within D. *)
  let pop, rings, ov = Lazy.force crescendo_fixture in
  let tree = pop.Population.tree in
  let rng = Rng.create 23 in
  let n = Population.size pop in
  let trials = ref 0 in
  while !trials < 40 do
    let dst = Rng.int_below rng n in
    (* pick a depth-1 domain not containing dst *)
    let domains = Domain_tree.children tree (Domain_tree.root tree) in
    let d = domains.(Rng.int_below rng (Array.length domains)) in
    let dst_dom = Population.domain_of_node_at_depth pop dst 1 in
    let ring = Rings.ring rings d in
    if d <> dst_dom && Ring.size ring >= 2 then begin
      incr trials;
      let proxy = Ring.predecessor_of_id ring (Overlay.id ov dst) in
      (* route from several random members of d *)
      for _ = 1 to 10 do
        let src = Ring.node_at ring (Rng.int_below rng (Ring.size ring)) in
        let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
        (* last node of the path that lies inside d *)
        let exit = ref (-1) in
        Array.iter
          (fun node ->
            if Population.domain_of_node_at_depth pop node 1 = d then exit := node)
          route.Route.nodes;
        Alcotest.(check int) "exit through proxy" proxy !exit
      done
    end
  done

let test_crescendo_degree_bound () =
  let pop, _rings, ov = Lazy.force crescendo_fixture in
  let n = Population.size pop in
  let tree = pop.Population.tree in
  let l = Float.of_int (Domain_tree.height tree + 1) in
  (* Theorem 2: E[degree] <= log2(n-1) + min(l, log2 n). *)
  let bound = log2f (Float.of_int (n - 1)) +. Float.min l (log2f (Float.of_int n)) in
  let mean = Overlay.mean_degree ov in
  if mean > bound then Alcotest.failf "mean degree %.3f exceeds Theorem 2 bound %.3f" mean bound;
  (* Paper's stronger experimental observation: hierarchical degree is
     *below* flat Chord's log2(n-1)+1. *)
  let chord_bound = log2f (Float.of_int (n - 1)) +. 1.0 in
  if mean > chord_bound then
    Alcotest.failf "mean degree %.3f above Chord bound %.3f (paper: should be below)" mean chord_bound

let test_crescendo_hops_bound () =
  let _pop, _rings, ov = Lazy.force crescendo_fixture in
  let n = Overlay.size ov in
  let rng = Rng.create 29 in
  let samples = 1000 in
  let total = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    total := !total + Route.hops (Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst))
  done;
  let mean = Float.of_int !total /. Float.of_int samples in
  (* Theorem 5: E[hops] <= log2(n-1) + 1; experimentally ~0.5 log n + c. *)
  let bound = log2f (Float.of_int (n - 1)) +. 1.0 in
  if mean > bound then Alcotest.failf "mean hops %.3f exceeds Theorem 5 bound %.3f" mean bound;
  let chord_like = (0.5 *. log2f (Float.of_int (n - 1))) +. 0.5 in
  if mean > chord_like +. 0.7 +. 0.3 then
    Alcotest.failf "mean hops %.3f more than 0.7 above Chord's %.3f (paper Fig 5)" mean chord_like

let test_crescendo_zero_and_one_node () =
  let pop0 = make_pop ~seed:4 ~fanout:3 ~levels:2 ~n:0 () in
  let ov0 = Crescendo.build (Rings.build pop0) in
  Alcotest.(check int) "empty overlay" 0 (Overlay.size ov0);
  let pop1 = make_pop ~seed:4 ~fanout:3 ~levels:2 ~n:1 () in
  let ov1 = Crescendo.build (Rings.build pop1) in
  Alcotest.(check int) "one node, no links" 0 (Overlay.degree ov1 0);
  let r = Router.greedy_clockwise ov1 ~src:0 ~key:12345 in
  Alcotest.(check int) "routes to self-predecessor" 0 (Route.destination r)

(* --- Symphony / Cacophony ---------------------------------------- *)

let test_symphony_routing_reaches () =
  let pop = make_pop ~seed:6 ~fanout:10 ~levels:1 ~n:1024 () in
  let ov = Symphony.build (Rng.create 100) pop in
  let rng = Rng.create 31 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1024 and dst = Rng.int_below rng 1024 in
    let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done

let test_symphony_degree () =
  let pop = make_pop ~seed:6 ~fanout:10 ~levels:1 ~n:1024 () in
  let ov = Symphony.build (Rng.create 100) pop in
  let mean = Overlay.mean_degree ov in
  (* 1 successor + floor(log2 1024) = 10 long links, minus collisions. *)
  if mean > 11.0 || mean < 7.0 then Alcotest.failf "symphony mean degree %.2f out of range" mean

let test_symphony_harmonic_distribution () =
  let rng = Rng.create 41 in
  let n = 1024 in
  let small = ref 0 and total = 10_000 in
  for _ = 1 to total do
    let d = Symphony.harmonic_distance rng ~n in
    if d <= Id.space / 32 then incr small
  done;
  (* P(x <= 1/32) = ln(n/32)/ln n = (10-5)/10 = 0.5 for n = 2^10. *)
  let frac = Float.of_int !small /. Float.of_int total in
  if Float.abs (frac -. 0.5) > 0.05 then
    Alcotest.failf "harmonic draw fraction %.3f, expected ~0.5" frac

let test_lookahead_reaches_and_helps () =
  let pop = make_pop ~seed:8 ~fanout:10 ~levels:1 ~n:2048 () in
  let ov = Symphony.build (Rng.create 200) pop in
  let rng = Rng.create 43 in
  let samples = 600 in
  let plain = ref 0 and look = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int_below rng 2048 and dst = Rng.int_below rng 2048 in
    let key = Overlay.id ov dst in
    let r1 = Router.greedy_clockwise ov ~src ~key in
    let r2 = Router.greedy_clockwise_lookahead ov ~src ~key in
    Alcotest.(check int) "lookahead reaches" dst (Route.destination r2);
    plain := !plain + Route.hops r1;
    look := !look + Route.hops r2
  done;
  (* §3.1: lookahead gives ~40% fewer hops; require at least 15%. *)
  if Float.of_int !look > 0.85 *. Float.of_int !plain then
    Alcotest.failf "lookahead %d hops not clearly better than plain %d" !look !plain

let cacophony_fixture =
  lazy
    (let pop = make_pop ~seed:9 ~fanout:5 ~levels:3 ~n:1500 () in
     let rings = Rings.build pop in
     (pop, rings, Cacophony.build (Rng.create 300) rings))

let test_cacophony_routing_reaches () =
  let _pop, _rings, ov = Lazy.force cacophony_fixture in
  let rng = Rng.create 47 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng (Overlay.size ov) in
    let dst = Rng.int_below rng (Overlay.size ov) in
    let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done

let test_cacophony_locality () =
  let pop, _rings, ov = Lazy.force cacophony_fixture in
  let tree = pop.Population.tree in
  let rng = Rng.create 53 in
  let n = Population.size pop in
  let checked = ref 0 in
  while !checked < 200 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    if src <> dst then begin
      let lca = Population.lca_of_nodes pop src dst in
      if Domain_tree.depth tree lca >= 1 then begin
        incr checked;
        let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
        Array.iter
          (fun node ->
            if not (Domain_tree.is_ancestor tree ~anc:lca ~desc:pop.Population.leaf_of_node.(node))
            then Alcotest.failf "cacophony route %d->%d escapes its domain" src dst)
          route.Route.nodes
      end
    end
  done

let test_cacophony_degree () =
  let _pop, _rings, ov = Lazy.force cacophony_fixture in
  let mean = Overlay.mean_degree ov in
  let bound = log2f 1500.0 +. 3.0 in
  if mean > bound || mean < 3.0 then Alcotest.failf "cacophony mean degree %.2f out of range" mean

(* --- Nondeterministic Chord / Crescendo --------------------------- *)

let test_nd_chord_reaches_and_degree () =
  let pop = make_pop ~seed:10 ~fanout:10 ~levels:1 ~n:1024 () in
  let ov = Nd_chord.build (Rng.create 400) pop in
  let rng = Rng.create 59 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1024 and dst = Rng.int_below rng 1024 in
    let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done;
  let mean = Overlay.mean_degree ov in
  if mean > 12.0 || mean < 7.0 then Alcotest.failf "nd-chord mean degree %.2f out of range" mean

let test_nd_chord_bucket_structure () =
  (* Every link other than the successor must fall into a [2^k, 2^(k+1))
     bucket — trivially true — and no bucket may hold two links. *)
  let pop = make_pop ~seed:11 ~fanout:10 ~levels:1 ~n:512 () in
  let ov = Nd_chord.build (Rng.create 500) pop in
  let n = Population.size pop in
  let ring = Ring.of_members ~ids:pop.Population.ids ~members:(Array.init n Fun.id) in
  for node = 0 to n - 1 do
    let id = pop.Population.ids.(node) in
    let succ = Ring.successor_of_id ring id in
    let buckets = Array.make Id.bits 0 in
    Array.iter
      (fun v ->
        if v <> succ then begin
          let k = Id.log2_floor (Id.distance id pop.Population.ids.(v)) in
          buckets.(k) <- buckets.(k) + 1
        end)
      (Overlay.links ov node);
    Array.iteri
      (fun k c -> if c > 1 then Alcotest.failf "node %d has %d links in bucket %d" node c k)
      buckets
  done

let nd_crescendo_fixture =
  lazy
    (let pop = make_pop ~seed:12 ~fanout:5 ~levels:3 ~n:1500 () in
     let rings = Rings.build pop in
     (pop, rings, Nd_crescendo.build (Rng.create 600) rings))

let test_nd_crescendo_reaches () =
  let _pop, _rings, ov = Lazy.force nd_crescendo_fixture in
  let rng = Rng.create 61 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng (Overlay.size ov) in
    let dst = Rng.int_below rng (Overlay.size ov) in
    let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done

let test_nd_crescendo_locality () =
  let pop, _rings, ov = Lazy.force nd_crescendo_fixture in
  let tree = pop.Population.tree in
  let rng = Rng.create 67 in
  let n = Population.size pop in
  let checked = ref 0 in
  while !checked < 200 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    if src <> dst then begin
      let lca = Population.lca_of_nodes pop src dst in
      if Domain_tree.depth tree lca >= 1 then begin
        incr checked;
        let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
        Array.iter
          (fun node ->
            if not (Domain_tree.is_ancestor tree ~anc:lca ~desc:pop.Population.leaf_of_node.(node))
            then Alcotest.failf "nd-crescendo route %d->%d escapes its domain" src dst)
          route.Route.nodes
      end
    end
  done

let test_nd_crescendo_condition_b () =
  let pop, rings, ov = Lazy.force nd_crescendo_fixture in
  let tree = pop.Population.tree in
  Overlay.iter_links ov (fun src dst ->
      let leaf_src = pop.Population.leaf_of_node.(src) in
      let leaf_dst = pop.Population.leaf_of_node.(dst) in
      if leaf_src <> leaf_dst then begin
        let lca = Domain_tree.lca tree leaf_src leaf_dst in
        let child = Domain_tree.ancestor_at_depth tree leaf_src (Domain_tree.depth tree lca + 1) in
        let d_own = Ring.successor_distance (Rings.ring rings child) pop.Population.ids.(src) in
        let d = Id.distance pop.Population.ids.(src) pop.Population.ids.(dst) in
        if d > d_own then
          Alcotest.failf "nd link %d->%d violates condition (b): d=%d d_own=%d" src dst d d_own
      end)

(* --- Kademlia / Kandy / CAN / Can-Can ----------------------------- *)

let test_kademlia_reaches () =
  let pop = make_pop ~seed:13 ~fanout:10 ~levels:1 ~n:1024 () in
  let ov = Kademlia.build (Rng.create 700) pop in
  let rng = Rng.create 71 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1024 and dst = Rng.int_below rng 1024 in
    let route = Router.greedy_xor ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done

let test_kademlia_bucket_invariant () =
  let pop = make_pop ~seed:14 ~fanout:10 ~levels:1 ~n:512 () in
  let ov = Kademlia.build (Rng.create 800) pop in
  let n = Population.size pop in
  let ids = pop.Population.ids in
  for node = 0 to n - 1 do
    let covered = Array.make Id.bits false in
    Array.iter
      (fun v -> covered.(Id.log2_floor (Id.xor_distance ids.(node) ids.(v))) <- true)
      (Overlay.links ov node);
    (* every non-empty bucket must be covered *)
    for other = 0 to n - 1 do
      if other <> node then begin
        let k = Id.log2_floor (Id.xor_distance ids.(node) ids.(other)) in
        if not covered.(k) then Alcotest.failf "node %d misses non-empty bucket %d" node k
      end
    done
  done

let xor_hier_fixture =
  lazy
    (let pop = make_pop ~seed:15 ~fanout:5 ~levels:3 ~n:1200 () in
     let rings = Rings.build pop in
     (pop, rings))

let test_kandy_reaches_and_locality () =
  let pop, rings = Lazy.force xor_hier_fixture in
  let ov = Kandy.build (Rng.create 900) rings in
  let tree = pop.Population.tree in
  let rng = Rng.create 73 in
  let n = Population.size pop in
  for _ = 1 to 300 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let route = Router.greedy_xor ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route);
    (* XOR locality: greedy descent stays within the lca domain. *)
    let lca = Population.lca_of_nodes pop src dst in
    Array.iter
      (fun node ->
        if not (Domain_tree.is_ancestor tree ~anc:lca ~desc:pop.Population.leaf_of_node.(node))
        then Alcotest.failf "kandy route %d->%d escapes its lca domain" src dst)
      route.Route.nodes
  done

let test_kandy_domain_bucket_invariant () =
  (* For every domain D containing m and every bucket of m non-empty
     within D, m links to a node of D in that bucket. *)
  let pop, rings = Lazy.force xor_hier_fixture in
  let ov = Kandy.build (Rng.create 901) rings in
  let ids = pop.Population.ids in
  let rng = Rng.create 79 in
  for _ = 1 to 100 do
    let node = Rng.int_below rng (Population.size pop) in
    Array.iter
      (fun domain ->
        let ring = Rings.ring rings domain in
        let members = Ring.members ring in
        let needed = Array.make Id.bits false in
        Array.iter
          (fun m ->
            if m <> node then
              needed.(Id.log2_floor (Id.xor_distance ids.(node) ids.(m))) <- true)
          members;
        let covered = Array.make Id.bits false in
        Array.iter
          (fun v ->
            (* only links into this domain count *)
            if Array.exists (Int.equal v) members then
              covered.(Id.log2_floor (Id.xor_distance ids.(node) ids.(v))) <- true)
          (Overlay.links ov node);
        Array.iteri
          (fun k need ->
            if need && not covered.(k) then
              Alcotest.failf "node %d: bucket %d non-empty in domain %d but unlinked" node k domain)
          needed)
      (Rings.chain rings node)
  done

let test_can_deterministic_and_reaches () =
  let pop = make_pop ~seed:16 ~fanout:10 ~levels:1 ~n:777 () in
  let a = Can.build pop and b = Can.build pop in
  for node = 0 to 776 do
    Alcotest.(check (array int)) "deterministic" (Overlay.links a node) (Overlay.links b node)
  done;
  let rng = Rng.create 83 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 777 and dst = Rng.int_below rng 777 in
    let route = Router.greedy_xor a ~src ~key:(Overlay.id a dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done

let test_can_closest_choice () =
  (* The deterministic rule picks, per bucket, the XOR-closest member. *)
  let pop = make_pop ~seed:17 ~fanout:10 ~levels:1 ~n:300 () in
  let ov = Can.build pop in
  let n = 300 in
  let ids = pop.Population.ids in
  for node = 0 to n - 1 do
    Array.iter
      (fun v ->
        let d = Id.xor_distance ids.(node) ids.(v) in
        let k = Id.log2_floor d in
        (* no other node in the same bucket may be strictly closer *)
        for other = 0 to n - 1 do
          if other <> node && other <> v then begin
            let d' = Id.xor_distance ids.(node) ids.(other) in
            if Id.log2_floor d' = k && d' < d then
              Alcotest.failf "node %d bucket %d: linked %d (d=%d) but %d closer (d=%d)" node k v d
                other d'
          end
        done)
      (Overlay.links ov node)
  done

let test_can_can_reaches () =
  let _pop, rings = Lazy.force xor_hier_fixture in
  let ov = Can_can.build rings in
  let rng = Rng.create 89 in
  let n = Overlay.size ov in
  for _ = 1 to 300 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let route = Router.greedy_xor ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done

let test_xor_hier_degree () =
  let _pop, rings = Lazy.force xor_hier_fixture in
  let kandy = Kandy.build (Rng.create 902) rings in
  let cancan = Can_can.build rings in
  let bound = log2f 1200.0 +. 3.0 in
  if Overlay.mean_degree kandy > bound then
    Alcotest.failf "kandy mean degree %.2f too high" (Overlay.mean_degree kandy);
  if Overlay.mean_degree cancan > bound then
    Alcotest.failf "can-can mean degree %.2f too high" (Overlay.mean_degree cancan)

(* --- Proximity ---------------------------------------------------- *)

(* A synthetic latency oracle: nodes are placed on a line by leaf
   domain; latency is the absolute distance. It rewards proximity-aware
   choices deterministically. *)
let line_latency pop a b =
  let pa = pop.Population.leaf_of_node.(a) and pb = pop.Population.leaf_of_node.(b) in
  1.0 +. Float.abs (Float.of_int pa -. Float.of_int pb)

let test_chord_prox_reaches () =
  let pop = make_pop ~seed:18 ~fanout:10 ~levels:2 ~n:1024 () in
  let prox = Proximity.build_chord pop ~node_latency:(line_latency pop) in
  let rng = Rng.create 97 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1024 and dst = Rng.int_below rng 1024 in
    let route = Proximity.route prox ~src ~dst in
    Alcotest.(check int) "reaches" dst (Route.destination route);
    Alcotest.(check int) "from src" src (Route.source route)
  done

let test_chord_prox_clique () =
  let pop = make_pop ~seed:19 ~fanout:10 ~levels:1 ~n:512 () in
  let prox = Proximity.build_chord pop ~node_latency:(line_latency pop) in
  let ov = Proximity.overlay prox in
  let t_bits = Proximity.group_bits ~n:512 ~group_size:Proximity.default_group_size in
  for a = 0 to 511 do
    for b = 0 to 511 do
      if a <> b
         && Id.prefix (Overlay.id ov a) t_bits = Id.prefix (Overlay.id ov b) t_bits
         && not (Overlay.has_link ov a b)
      then Alcotest.failf "group peers %d %d not linked" a b
    done
  done

let test_crescendo_prox_reaches_and_locality () =
  let pop = make_pop ~seed:20 ~fanout:5 ~levels:3 ~n:1024 () in
  let rings = Rings.build pop in
  let prox = Proximity.build_crescendo rings ~node_latency:(line_latency pop) in
  let tree = pop.Population.tree in
  let rng = Rng.create 101 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1024 and dst = Rng.int_below rng 1024 in
    let route = Proximity.route prox ~src ~dst in
    Alcotest.(check int) "reaches" dst (Route.destination route);
    let lca = Population.lca_of_nodes pop src dst in
    Array.iter
      (fun node ->
        if not (Domain_tree.is_ancestor tree ~anc:lca ~desc:pop.Population.leaf_of_node.(node))
        then Alcotest.failf "crescendo-prox route %d->%d escapes its domain" src dst)
      route.Route.nodes
  done

let test_group_bits () =
  Alcotest.(check int) "small n" 0 (Proximity.group_bits ~n:8 ~group_size:16);
  Alcotest.(check int) "1024/16" 6 (Proximity.group_bits ~n:1024 ~group_size:16);
  Alcotest.(check int) "nonpow2" 6 (Proximity.group_bits ~n:1100 ~group_size:16)

(* --- Route metrics ------------------------------------------------ *)

let test_route_metrics () =
  let r = Route.{ nodes = [| 3; 5; 9 |] } in
  Alcotest.(check int) "hops" 2 (Route.hops r);
  Alcotest.(check int) "src" 3 (Route.source r);
  Alcotest.(check int) "dst" 9 (Route.destination r);
  Alcotest.(check bool) "mem" true (Route.mem r 5);
  Alcotest.(check bool) "not mem" false (Route.mem r 4);
  let lat = Route.latency r ~node_latency:(fun a b -> Float.of_int (abs (a - b))) in
  Alcotest.(check (float 1e-9)) "latency" 6.0 lat;
  let single = Route.singleton 7 in
  Alcotest.(check int) "singleton hops" 0 (Route.hops single);
  Alcotest.(check (float 1e-9)) "singleton latency" 0.0
    (Route.latency single ~node_latency:(fun _ _ -> 1.0))

let test_route_overlap () =
  let p1 = Route.{ nodes = [| 1; 2; 3; 4 |] } in
  let p2 = Route.{ nodes = [| 9; 2; 3; 4 |] } in
  Alcotest.(check (float 1e-9)) "hop overlap" (2.0 /. 3.0)
    (Route.overlap_fraction ~reference:p1 p2 `Hops);
  let oracle a b = if (a, b) = (2, 3) || (b, a) = (2, 3) then 10.0 else 1.0 in
  Alcotest.(check (float 1e-9)) "latency overlap" (11.0 /. 12.0)
    (Route.overlap_fraction ~reference:p1 p2 (`Latency oracle));
  Alcotest.(check (float 1e-9)) "disjoint" 0.0
    (Route.overlap_fraction ~reference:p1 Route.{ nodes = [| 7; 8 |] } `Hops);
  Alcotest.(check (float 1e-9)) "self overlap" 1.0
    (Route.overlap_fraction ~reference:p1 p1 `Hops)

let test_route_domain_crossings () =
  let r = Route.{ nodes = [| 0; 1; 2; 3 |] } in
  let dom = function 0 -> 0 | 1 -> 0 | 2 -> 1 | 3 -> 1 | _ -> assert false in
  Alcotest.(check int) "crossings" 1 (Route.domain_crossings r ~domain_of_node:dom)

(* Edge cases the message-level simulator leans on: zero-hop paths and
   fully-disjoint paths must yield well-defined (zero) metrics, never
   NaN or a division by zero. *)
let test_route_metric_edge_cases () =
  let zero = Route.singleton 5 in
  let multi = Route.{ nodes = [| 1; 2; 3; 4 |] } in
  let oracle _ _ = 1.0 in
  Alcotest.(check (float 1e-9)) "zero-hop path vs any reference" 0.0
    (Route.overlap_fraction ~reference:multi zero `Hops);
  Alcotest.(check (float 1e-9)) "zero-hop path, latency metric" 0.0
    (Route.overlap_fraction ~reference:multi zero (`Latency oracle));
  Alcotest.(check (float 1e-9)) "zero-hop reference" 0.0
    (Route.overlap_fraction ~reference:zero multi `Hops);
  Alcotest.(check (float 1e-9)) "both zero-hop" 0.0
    (Route.overlap_fraction ~reference:zero zero `Hops);
  let disjoint = Route.{ nodes = [| 10; 11; 12; 13 |] } in
  Alcotest.(check (float 1e-9)) "fully disjoint, hops" 0.0
    (Route.overlap_fraction ~reference:multi disjoint `Hops);
  Alcotest.(check (float 1e-9)) "fully disjoint, latency" 0.0
    (Route.overlap_fraction ~reference:multi disjoint (`Latency oracle));
  (* Same nodes, opposite direction: edges are directed, so no overlap. *)
  let reversed = Route.{ nodes = [| 4; 3; 2; 1 |] } in
  Alcotest.(check (float 1e-9)) "reversed path shares no directed edge" 0.0
    (Route.overlap_fraction ~reference:multi reversed `Hops);
  (* Zero-latency edges must not divide by zero. *)
  Alcotest.(check (float 1e-9)) "all-zero oracle" 0.0
    (Route.overlap_fraction ~reference:multi multi (`Latency (fun _ _ -> 0.0)));
  Alcotest.(check int) "zero-hop crossings" 0
    (Route.domain_crossings zero ~domain_of_node:(fun _ -> 0));
  Alcotest.(check int) "every hop crosses" (Route.hops multi)
    (Route.domain_crossings multi ~domain_of_node:Fun.id);
  Alcotest.(check int) "no hop crosses" 0
    (Route.domain_crossings multi ~domain_of_node:(fun _ -> 42))

let suites =
  [
    ( "ring",
      [
        Alcotest.test_case "searches" `Quick test_ring_searches;
        Alcotest.test_case "successor distance" `Quick test_ring_successor_distance;
        Alcotest.test_case "finger" `Quick test_ring_finger;
        Alcotest.test_case "arcs" `Quick test_ring_arcs;
        Alcotest.test_case "duplicate ids" `Quick test_ring_duplicate_ids;
        QCheck_alcotest.to_alcotest prop_ring_predecessor_successor;
      ] );
    ( "chord",
      [
        Alcotest.test_case "successor links" `Quick test_chord_successor_links;
        Alcotest.test_case "routing reaches" `Quick test_chord_routing_reaches;
        Alcotest.test_case "key routing -> predecessor" `Quick test_chord_key_routing_hits_predecessor;
        Alcotest.test_case "degree bound (Thm 1)" `Quick test_chord_degree_bound;
        Alcotest.test_case "hops bound (Thm 4)" `Quick test_chord_hops_bound;
        Alcotest.test_case "deterministic" `Quick test_chord_deterministic;
      ] );
    ( "crescendo",
      [
        Alcotest.test_case "flat = chord" `Quick test_crescendo_flat_equals_chord;
        Alcotest.test_case "successor at every level" `Quick test_crescendo_successor_at_every_level;
        Alcotest.test_case "condition (b)" `Quick test_crescendo_condition_b;
        Alcotest.test_case "routing reaches" `Quick test_crescendo_routing_reaches;
        Alcotest.test_case "intra-domain locality" `Quick test_crescendo_intra_domain_locality;
        Alcotest.test_case "inter-domain convergence" `Quick test_crescendo_inter_domain_convergence;
        Alcotest.test_case "degree bound (Thm 2)" `Quick test_crescendo_degree_bound;
        Alcotest.test_case "hops bound (Thm 5)" `Quick test_crescendo_hops_bound;
        Alcotest.test_case "degenerate sizes" `Quick test_crescendo_zero_and_one_node;
      ] );
    ( "symphony",
      [
        Alcotest.test_case "routing reaches" `Quick test_symphony_routing_reaches;
        Alcotest.test_case "degree" `Quick test_symphony_degree;
        Alcotest.test_case "harmonic distribution" `Quick test_symphony_harmonic_distribution;
        Alcotest.test_case "lookahead reaches and helps" `Quick test_lookahead_reaches_and_helps;
      ] );
    ( "cacophony",
      [
        Alcotest.test_case "routing reaches" `Quick test_cacophony_routing_reaches;
        Alcotest.test_case "locality" `Quick test_cacophony_locality;
        Alcotest.test_case "degree" `Quick test_cacophony_degree;
      ] );
    ( "nd-chord",
      [
        Alcotest.test_case "reaches + degree" `Quick test_nd_chord_reaches_and_degree;
        Alcotest.test_case "bucket structure" `Quick test_nd_chord_bucket_structure;
        Alcotest.test_case "nd-crescendo reaches" `Quick test_nd_crescendo_reaches;
        Alcotest.test_case "nd-crescendo locality" `Quick test_nd_crescendo_locality;
        Alcotest.test_case "nd-crescendo condition (b)" `Quick test_nd_crescendo_condition_b;
      ] );
    ( "xor-dhts",
      [
        Alcotest.test_case "kademlia reaches" `Quick test_kademlia_reaches;
        Alcotest.test_case "kademlia bucket invariant" `Quick test_kademlia_bucket_invariant;
        Alcotest.test_case "kandy reaches + locality" `Quick test_kandy_reaches_and_locality;
        Alcotest.test_case "kandy domain bucket invariant" `Quick test_kandy_domain_bucket_invariant;
        Alcotest.test_case "can deterministic + reaches" `Quick test_can_deterministic_and_reaches;
        Alcotest.test_case "can closest choice" `Quick test_can_closest_choice;
        Alcotest.test_case "can-can reaches" `Quick test_can_can_reaches;
        Alcotest.test_case "hierarchical xor degree" `Quick test_xor_hier_degree;
      ] );
    ( "proximity",
      [
        Alcotest.test_case "chord-prox reaches" `Quick test_chord_prox_reaches;
        Alcotest.test_case "chord-prox clique" `Quick test_chord_prox_clique;
        Alcotest.test_case "crescendo-prox reaches + locality" `Quick
          test_crescendo_prox_reaches_and_locality;
        Alcotest.test_case "group bits" `Quick test_group_bits;
      ] );
    ( "route",
      [
        Alcotest.test_case "metrics" `Quick test_route_metrics;
        Alcotest.test_case "overlap" `Quick test_route_overlap;
        Alcotest.test_case "domain crossings" `Quick test_route_domain_crossings;
        Alcotest.test_case "zero-hop and disjoint edge cases" `Quick
          test_route_metric_edge_cases;
      ] );
  ]

(* --- Overlay validation -------------------------------------------- *)

let test_overlay_validation () =
  let pop = make_pop ~seed:99 ~fanout:3 ~levels:1 ~n:4 () in
  Alcotest.(check bool) "self link rejected" true
    (try ignore (Overlay.create pop ~links:[| [| 0 |]; [||]; [||]; [||] |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "duplicate rejected" true
    (try ignore (Overlay.create pop ~links:[| [| 1; 1 |]; [||]; [||]; [||] |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range rejected" true
    (try ignore (Overlay.create pop ~links:[| [| 9 |]; [||]; [||]; [||] |]); false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "size mismatch rejected" true
    (try ignore (Overlay.create pop ~links:[| [||] |]); false
     with Invalid_argument _ -> true);
  let ov = Overlay.create pop ~links:[| [| 1 |]; [| 0; 2 |]; [||]; [||] |] in
  Alcotest.(check int) "degree" 2 (Overlay.degree ov 1);
  Alcotest.(check (float 1e-9)) "mean degree" 0.75 (Overlay.mean_degree ov);
  let count = ref 0 in
  Overlay.iter_links ov (fun _ _ -> incr count);
  Alcotest.(check int) "iter_links count" 3 !count

let validation_suites =
  [ ("overlay", [ Alcotest.test_case "validation" `Quick test_overlay_validation ]) ]

let suites = suites @ validation_suites
