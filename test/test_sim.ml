(* Tests for the event queue, the dynamic-maintenance protocol and the
   churn driver. The central assertion: the maintained link state always
   equals the static Crescendo construction over the live population. *)

open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_sim
module Rng = Canon_rng.Rng

(* --- Event queue --------------------------------------------------- *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  Alcotest.(check int) "size" 3 (Event_queue.size q);
  Alcotest.(check (option (float 1e-9))) "peek" (Some 1.0) (Event_queue.peek_time q);
  let order = List.init 3 (fun _ -> match Event_queue.pop q with Some (_, x) -> x | None -> "?") in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order;
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun x -> Event_queue.push q ~time:5.0 x) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> match Event_queue.pop q with Some (_, x) -> x | None -> -1) in
  Alcotest.(check (list int)) "fifo among ties" [ 1; 2; 3; 4 ] order

let test_event_queue_invalid () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Event_queue.push: bad time") (fun () ->
      Event_queue.push q ~time:(-1.0) ());
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: bad time") (fun () ->
      Event_queue.push q ~time:Float.nan ())

let test_event_queue_pop_until () =
  let q = Event_queue.create () in
  List.iter
    (fun (t, x) -> Event_queue.push q ~time:t x)
    [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (2.0, "b2"); (5.0, "e") ];
  Alcotest.(check (list string)) "nothing due" []
    (List.map snd (Event_queue.pop_until q ~time:0.5));
  Alcotest.(check int) "nothing popped" 5 (Event_queue.size q);
  Alcotest.(check (list string)) "due batch, FIFO among ties" [ "a"; "b"; "b2" ]
    (List.map snd (Event_queue.pop_until q ~time:2.0));
  Alcotest.(check int) "two left" 2 (Event_queue.size q);
  Alcotest.(check (list string)) "rest" [ "c"; "e" ]
    (List.map snd (Event_queue.pop_until q ~time:infinity));
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q);
  Alcotest.(check (list string)) "empty queue" []
    (List.map snd (Event_queue.pop_until q ~time:10.0));
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.pop_until: bad time")
    (fun () -> ignore (Event_queue.pop_until q ~time:Float.nan))

(* Randomized permutations of a batch with heavy ties: each round
   shuffles (timestamp, payload) pairs where every timestamp is shared
   by at least three events, pushes them in the shuffled order, and
   drains through pop_until in two cuts. Among equal timestamps the
   drain must reproduce the (shuffled) insertion order exactly. *)
let test_pop_until_permuted_ties () =
  let rng = Rng.create 41 in
  for round = 0 to 49 do
    let events =
      Array.init 12 (fun i -> (Float.of_int (i / 4), i) (* 3 times x 4 ties *))
    in
    Rng.shuffle_in_place rng events;
    let q = Event_queue.create () in
    Array.iter (fun (t, x) -> Event_queue.push q ~time:t x) events;
    let drained =
      Event_queue.pop_until q ~time:1.0 @ Event_queue.pop_until q ~time:infinity
    in
    let expected =
      List.stable_sort
        (fun (a, _) (b, _) -> Float.compare a b)
        (Array.to_list events)
    in
    if drained <> expected then
      Alcotest.failf "round %d: pop_until broke FIFO order among >= 3-way ties" round
  done

(* The FIFO tie-break pin: draining through pop_until must equal a
   stable sort of the insertion sequence by timestamp — equal
   timestamps stay in insertion order. Timestamps are drawn from a tiny
   set so ties are plentiful. *)
let prop_pop_until_is_stable_sort =
  QCheck.Test.make ~count:300 ~name:"pop_until = stable sort by time"
    QCheck.(pair (list (int_bound 3)) (int_bound 3))
    (fun (times, cut) ->
      let q = Event_queue.create () in
      let events = List.mapi (fun i t -> (Float.of_int t, i)) times in
      List.iter (fun (t, i) -> Event_queue.push q ~time:t i) events;
      let cut = Float.of_int cut in
      let drained =
        Event_queue.pop_until q ~time:cut @ Event_queue.pop_until q ~time:infinity
      in
      let expected = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) events in
      drained = expected)

let test_event_queue_stress () =
  let q = Event_queue.create () in
  let rng = Rng.create 3 in
  for i = 0 to 999 do
    Event_queue.push q ~time:(Rng.float rng) i
  done;
  let last = ref (-1.0) in
  let count = ref 0 in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, _) ->
        if t < !last then Alcotest.fail "out of order";
        last := t;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" 1000 !count

(* --- Maintenance --------------------------------------------------- *)

let make_universe ~n seed =
  let rng = Rng.create seed in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:4 ~levels:3) in
  Population.create rng ~tree ~policy:(Placement.Zipfian 1.25) ~n

(* The maintained state must equal the static construction over the
   live nodes. *)
let check_equivalence m pop =
  let live = Maintenance.present m in
  let fresh_rings = Rings.build_partial pop ~present:live in
  Array.iter
    (fun node ->
      let expected = Crescendo.links_of_node fresh_rings node in
      let actual = Maintenance.links m node in
      let sort a = let a = Array.copy a in Array.sort Int.compare a; a in
      if sort expected <> sort actual then
        Alcotest.failf "node %d: maintained links diverge from static construction" node)
    live

let test_join_equivalence () =
  let pop = make_universe ~n:300 10 in
  let order = Array.init 300 Fun.id in
  Rng.shuffle_in_place (Rng.create 11) order;
  let m = Maintenance.create pop ~present:(Array.sub order 0 50) in
  check_equivalence m pop;
  (* join 60 more, checking periodically *)
  for i = 50 to 109 do
    let stats = Maintenance.join m order.(i) in
    if Maintenance.total stats <= 0 then Alcotest.fail "join must cost messages";
    if i mod 10 = 0 then check_equivalence m pop
  done;
  check_equivalence m pop

let test_leave_equivalence () =
  let pop = make_universe ~n:200 12 in
  let order = Array.init 200 Fun.id in
  Rng.shuffle_in_place (Rng.create 13) order;
  let m = Maintenance.create pop ~present:(Array.sub order 0 150) in
  for i = 0 to 59 do
    ignore (Maintenance.leave m order.(i));
    if i mod 10 = 0 then check_equivalence m pop
  done;
  check_equivalence m pop

let test_mixed_churn_equivalence () =
  let pop = make_universe ~n:250 14 in
  let order = Array.init 250 Fun.id in
  Rng.shuffle_in_place (Rng.create 15) order;
  let m = Maintenance.create pop ~present:(Array.sub order 0 100) in
  let rng = Rng.create 16 in
  for step = 1 to 80 do
    let live = Maintenance.present m in
    let absent =
      Array.to_list order |> List.filter (fun v -> not (Maintenance.is_present m v))
    in
    if (Rng.bool rng && absent <> []) || Array.length live <= 10 then begin
      match absent with
      | [] -> ()
      | node :: _ -> ignore (Maintenance.join m node)
    end
    else ignore (Maintenance.leave m (Rng.pick rng live));
    if step mod 16 = 0 then check_equivalence m pop
  done;
  check_equivalence m pop

let test_join_message_cost_logarithmic () =
  let pop = make_universe ~n:600 17 in
  let order = Array.init 600 Fun.id in
  Rng.shuffle_in_place (Rng.create 18) order;
  let m = Maintenance.create pop ~present:(Array.sub order 0 500) in
  let total = ref 0 in
  for i = 500 to 559 do
    total := !total + Maintenance.total (Maintenance.join m order.(i))
  done;
  let mean = Float.of_int !total /. 60.0 in
  (* O(log n): log2 500 ~ 9; allow a generous constant factor. *)
  Alcotest.(check bool) (Printf.sprintf "mean join cost %.1f = O(log n)" mean) true (mean < 60.0)

let test_routing_after_churn () =
  let pop = make_universe ~n:300 19 in
  let order = Array.init 300 Fun.id in
  Rng.shuffle_in_place (Rng.create 20) order;
  let m = Maintenance.create pop ~present:(Array.sub order 0 200) in
  let rng = Rng.create 21 in
  for _ = 1 to 40 do
    let live = Maintenance.present m in
    if Rng.bool rng then begin
      match
        Array.to_list order |> List.filter (fun v -> not (Maintenance.is_present m v))
      with
      | [] -> ()
      | node :: _ -> ignore (Maintenance.join m node)
    end
    else if Array.length live > 50 then ignore (Maintenance.leave m (Rng.pick rng live))
  done;
  let overlay = Maintenance.overlay m in
  let live = Maintenance.present m in
  for _ = 1 to 200 do
    let src = Rng.pick rng live and dst = Rng.pick rng live in
    let route = Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst) in
    Alcotest.(check int) "routes reach after churn" dst (Route.destination route)
  done

let test_join_validation () =
  let pop = make_universe ~n:50 22 in
  let m = Maintenance.create pop ~present:[| 0; 1; 2 |] in
  Alcotest.check_raises "double join" (Invalid_argument "Maintenance.join: already present")
    (fun () -> ignore (Maintenance.join m 0));
  Alcotest.check_raises "leave absent" (Invalid_argument "Maintenance.leave: node not present")
    (fun () -> ignore (Maintenance.leave m 10));
  Alcotest.check_raises "join out of range" (Invalid_argument "Maintenance.join: node out of range")
    (fun () -> ignore (Maintenance.join m 50))

let test_first_node_join () =
  let pop = make_universe ~n:10 23 in
  let m = Maintenance.create pop ~present:[||] in
  let stats = Maintenance.join m 0 in
  Alcotest.(check int) "no routing for the first node" 0 stats.Maintenance.routing_messages;
  Alcotest.(check int) "one live node" 1 (Array.length (Maintenance.present m));
  let stats2 = Maintenance.join m 1 in
  Alcotest.(check bool) "second join links up" true (stats2.Maintenance.link_messages > 0);
  check_equivalence m pop

(* Two producers (think: churn events and RPC hops) interleaving pushes
   at one timestamp share the queue's single FIFO order — global
   insertion order, blind to who produced what. *)
let test_event_queue_two_producer_ties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:7.0 "churn:leave";
  Event_queue.push q ~time:7.0 "rpc:deliver";
  Event_queue.push q ~time:7.0 "churn:join";
  Event_queue.push q ~time:7.0 "rpc:timeout";
  Event_queue.push q ~time:3.0 "rpc:send";
  let order =
    List.init 5 (fun _ -> match Event_queue.pop q with Some (_, x) -> x | None -> "?")
  in
  Alcotest.(check (list string))
    "earlier time first, then global insertion order"
    [ "rpc:send"; "churn:leave"; "rpc:deliver"; "churn:join"; "rpc:timeout" ]
    order

let test_event_queue_pop_until_boundary () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b1";
  Event_queue.push q ~time:2.0 "b2";
  Event_queue.push q ~time:3.0 "c";
  let batch = Event_queue.pop_until q ~time:2.0 in
  Alcotest.(check (list string))
    "boundary exactly equal to an event time is inclusive" [ "a"; "b1"; "b2" ]
    (List.map snd batch);
  Alcotest.(check (list string))
    "same boundary again drains nothing" []
    (List.map snd (Event_queue.pop_until q ~time:2.0));
  Alcotest.(check (option (float 1e-9))) "later event untouched" (Some 3.0)
    (Event_queue.peek_time q)

(* --- Churn driver -------------------------------------------------- *)

let test_churn_run () =
  let pop = make_universe ~n:400 24 in
  let config =
    {
      Churn.initial_nodes = 120;
      events = 60;
      join_fraction = 0.5;
      probes_per_event = 2;
      mean_interarrival = 0.5;
    }
  in
  let report = Churn.run (Rng.create 25) pop config in
  Alcotest.(check int) "no failed probes" 0 report.Churn.failed_probes;
  Alcotest.(check bool) "probes happened" true (report.Churn.probes > 0);
  Alcotest.(check bool) "events happened" true (report.Churn.joins + report.Churn.leaves > 0);
  Alcotest.(check bool) "time advanced" true (report.Churn.sim_time > 0.0);
  Alcotest.(check bool) "population sane" true
    (report.Churn.final_population > 0 && report.Churn.final_population <= 400)

(* [run] is a thin wrapper over [prepare]/[apply]: with the same seed
   (and no probes, so no extra draws) a manual prepare + queue-drained
   apply reproduces its joins, leaves and final membership exactly. *)
let test_churn_prepare_apply_matches_run () =
  let pop = make_universe ~n:400 24 in
  let config =
    {
      Churn.initial_nodes = 120;
      events = 60;
      join_fraction = 0.5;
      probes_per_event = 0;
      mean_interarrival = 0.5;
    }
  in
  let report = Churn.run (Rng.create 77) pop config in
  let hooks = ref 0 in
  let driver, schedule =
    Churn.prepare ~on_event:(fun _ -> incr hooks) (Rng.create 77) pop config
  in
  Alcotest.(check int) "schedule length = config.events" 60 (List.length schedule);
  let q = Event_queue.create () in
  List.iter (fun (t, ev) -> Event_queue.push q ~time:t ev) schedule;
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, ev) ->
        Churn.apply driver ev;
        drain ()
  in
  drain ();
  Alcotest.(check int) "joins" report.Churn.joins (Churn.joins driver);
  Alcotest.(check int) "leaves" report.Churn.leaves (Churn.leaves driver);
  let m = Churn.maintenance driver in
  Alcotest.(check int) "final population" report.Churn.final_population
    (Array.length (Maintenance.present m));
  Alcotest.(check int) "every event fired a hook (plus Init)" 61 !hooks;
  check_equivalence m pop

let suites =
  [
    ( "event-queue",
      [
        Alcotest.test_case "order" `Quick test_event_queue_order;
        Alcotest.test_case "fifo ties" `Quick test_event_queue_fifo_ties;
        Alcotest.test_case "invalid times" `Quick test_event_queue_invalid;
        Alcotest.test_case "pop_until" `Quick test_event_queue_pop_until;
        Alcotest.test_case "pop_until permuted ties" `Quick test_pop_until_permuted_ties;
        QCheck_alcotest.to_alcotest prop_pop_until_is_stable_sort;
        Alcotest.test_case "stress" `Quick test_event_queue_stress;
        Alcotest.test_case "two-producer ties" `Quick test_event_queue_two_producer_ties;
        Alcotest.test_case "pop_until exact boundary" `Quick
          test_event_queue_pop_until_boundary;
      ] );
    ( "maintenance",
      [
        Alcotest.test_case "join equivalence" `Quick test_join_equivalence;
        Alcotest.test_case "leave equivalence" `Quick test_leave_equivalence;
        Alcotest.test_case "mixed churn equivalence" `Quick test_mixed_churn_equivalence;
        Alcotest.test_case "join cost O(log n)" `Quick test_join_message_cost_logarithmic;
        Alcotest.test_case "routing after churn" `Quick test_routing_after_churn;
        Alcotest.test_case "validation" `Quick test_join_validation;
        Alcotest.test_case "first node" `Quick test_first_node_join;
      ] );
    ( "churn",
      [
        Alcotest.test_case "driver run" `Quick test_churn_run;
        Alcotest.test_case "prepare/apply = run" `Quick
          test_churn_prepare_apply_matches_run;
      ] );
  ]

(* --- Leaf sets and crash recovery ---------------------------------- *)

let test_leaf_sets_structure () =
  let pop = make_universe ~n:200 30 in
  let rings = Rings.build pop in
  for node = 0 to 199 do
    let sets = Leaf_sets.successors rings ~node ~width:4 in
    let chain = Rings.chain rings node in
    Alcotest.(check int) "one set per level" (Array.length chain) (Array.length sets);
    Array.iteri
      (fun level set ->
        let ring = Rings.ring rings chain.(level) in
        (* first entry is the level successor *)
        if Ring.size ring >= 2 then
          Alcotest.(check int) "first = level successor"
            (Ring.successor_of_id ring pop.Population.ids.(node))
            set.(0);
        Array.iter (fun v -> if v = node then Alcotest.fail "self in leaf set") set;
        (* entries are distinct *)
        let seen = Hashtbl.create 8 in
        Array.iter
          (fun v ->
            if Hashtbl.mem seen v then Alcotest.fail "duplicate leaf-set entry";
            Hashtbl.add seen v ())
          set)
      sets
  done

let test_leaf_sets_small_ring () =
  let pop = make_universe ~n:3 31 in
  let rings = Rings.build pop in
  let sets = Leaf_sets.successors rings ~node:0 ~width:10 in
  (* never more entries than other ring members *)
  Array.iter (fun set -> Alcotest.(check bool) "bounded" true (Array.length set <= 2)) sets;
  Alcotest.(check bool) "contains works" true
    (Leaf_sets.contains sets 1 || Leaf_sets.contains sets 2 || Array.for_all (fun s -> Array.length s = 0) sets)

let test_crash_leaves_stale_links_and_repair_fixes () =
  let pop = make_universe ~n:300 32 in
  let order = Array.init 300 Fun.id in
  Rng.shuffle_in_place (Rng.create 33) order;
  let m = Maintenance.create pop ~present:(Array.sub order 0 200) in
  (* crash 20 nodes abruptly *)
  let victims = Array.sub order 0 20 in
  Array.iter (fun v -> Maintenance.crash m v) victims;
  let stale = Maintenance.stale_nodes m in
  Alcotest.(check bool) "someone holds stale links" true (Array.length stale > 0);
  (* repair restores exact equivalence with the static construction *)
  let stats = Maintenance.repair m in
  Alcotest.(check int) "repair notified each stale node" (Array.length stale)
    stats.Maintenance.notify_messages;
  Alcotest.(check int) "no stale links remain" 0 (Array.length (Maintenance.stale_nodes m));
  check_equivalence m pop

let test_routing_during_crash_window () =
  (* Between crash and repair, failure-avoiding routing still delivers
     intra-domain lookups when the failures are outside the domain. *)
  let pop = make_universe ~n:400 34 in
  let all = Array.init 400 Fun.id in
  let m = Maintenance.create pop ~present:all in
  let tree = pop.Population.tree in
  let domain = (Canon_hierarchy.Domain_tree.children tree 0).(0) in
  let in_domain node =
    Canon_hierarchy.Domain_tree.is_ancestor tree ~anc:domain
      ~desc:pop.Population.leaf_of_node.(node)
  in
  (* crash a third of the outside world *)
  let rng = Rng.create 35 in
  Array.iter
    (fun node ->
      if (not (in_domain node)) && Rng.float rng < 0.33 && Maintenance.is_present m node then
        Maintenance.crash m node)
    all;
  let overlay = Maintenance.overlay m in
  let members = Array.of_list (List.filter in_domain (Array.to_list all)) in
  if Array.length members >= 2 then
    for _ = 1 to 100 do
      let src = Rng.pick rng members and dst = Rng.pick rng members in
      match
        Router.greedy_clockwise_avoiding overlay
          ~dead:(fun v -> not (Maintenance.is_present m v))
          ~src ~key:(Overlay.id overlay dst)
      with
      | Some route -> Alcotest.(check int) "delivered in crash window" dst (Route.destination route)
      | None -> Alcotest.fail "intra-domain lookup lost during outside crashes"
    done;
  (* and repair re-establishes full global service *)
  ignore (Maintenance.repair m);
  check_equivalence m pop

let test_repair_idempotent () =
  let pop = make_universe ~n:100 36 in
  let m = Maintenance.create pop ~present:(Array.init 100 Fun.id) in
  Maintenance.crash m 5;
  ignore (Maintenance.repair m);
  let stats = Maintenance.repair m in
  Alcotest.(check int) "second repair is free" 0 (Maintenance.total stats)

let extra_suites =
  [
    ( "leaf-sets",
      [
        Alcotest.test_case "structure" `Quick test_leaf_sets_structure;
        Alcotest.test_case "small rings" `Quick test_leaf_sets_small_ring;
      ] );
    ( "crash-recovery",
      [
        Alcotest.test_case "crash + repair equivalence" `Quick
          test_crash_leaves_stale_links_and_repair_fixes;
        Alcotest.test_case "routing in crash window" `Quick test_routing_during_crash_window;
        Alcotest.test_case "repair idempotent" `Quick test_repair_idempotent;
      ] );
  ]

let suites = suites @ extra_suites
