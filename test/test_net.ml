(* Tests for canon_net: the virtual clock, RPC policy, fault plans, and
   the message-level lookup simulator. The central assertions: with no
   faults the async lookup is byte-for-byte the synchronous greedy
   route (same path, wall clock = physical latency); with faults it
   degrades exactly through retry -> reroute -> leaf-set re-anchor. *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_net
module Rng = Canon_rng.Rng
module Metrics = Canon_telemetry.Metrics
module Trace = Canon_telemetry.Trace
module Span = Canon_telemetry.Span

(* A deterministic synthetic latency oracle, 10..29 ms per edge. *)
let oracle u v = if u = v then 0.0 else 10.0 +. Float.of_int (((u * 13) + (v * 7)) mod 20)

let make_universe ?(fanout = 4) ?(levels = 3) ~n seed =
  let rng = Rng.create seed in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout ~levels) in
  Population.create rng ~tree ~policy:(Placement.Zipfian 1.25) ~n

(* --- Clock --------------------------------------------------------- *)

let test_clock () =
  let c = Clock.create () in
  Alcotest.(check (float 1e-9)) "starts at 0" 0.0 (Clock.now c);
  Clock.advance_to c 5.0;
  Clock.advance_to c 5.0;
  Clock.advance_to c 7.5;
  Alcotest.(check (float 1e-9)) "now" 7.5 (Clock.now c);
  Alcotest.(check (float 1e-9)) "elapsed" 7.5 (Clock.elapsed c);
  Alcotest.check_raises "backwards" (Invalid_argument "Clock.advance_to: time moved backwards")
    (fun () -> Clock.advance_to c 6.0);
  Alcotest.check_raises "nan" (Invalid_argument "Clock.advance_to: bad time") (fun () ->
      Clock.advance_to c Float.nan);
  let c2 = Clock.create ~start:100.0 () in
  Clock.advance_to c2 130.0;
  Alcotest.(check (float 1e-9)) "elapsed from start" 30.0 (Clock.elapsed c2);
  Alcotest.check_raises "bad start" (Invalid_argument "Clock.create: bad start time")
    (fun () -> ignore (Clock.create ~start:(-1.0) ()))

(* --- Rpc ----------------------------------------------------------- *)

let test_rpc_validate () =
  Rpc.validate Rpc.default;
  let bad field p =
    Alcotest.check_raises field (Invalid_argument ("Rpc.validate: " ^ field)) (fun () ->
        Rpc.validate p)
  in
  bad "timeout_ms must be positive" { Rpc.default with Rpc.timeout_ms = 0.0 };
  bad "max_retries must be >= 0" { Rpc.default with Rpc.max_retries = -1 };
  bad "backoff_base_ms must be positive" { Rpc.default with Rpc.backoff_base_ms = -3.0 };
  bad "backoff_factor must be >= 1" { Rpc.default with Rpc.backoff_factor = 0.5 };
  bad "jitter must be in [0, 1)" { Rpc.default with Rpc.jitter = 1.0 };
  bad "deadline_ms must exceed timeout_ms"
    { Rpc.default with Rpc.deadline_ms = Rpc.default.Rpc.timeout_ms }

let test_rpc_backoff () =
  let p = { Rpc.default with Rpc.backoff_base_ms = 100.0; backoff_factor = 2.0; jitter = 0.0 } in
  let rng = Rng.create 1 in
  Alcotest.(check (float 1e-9)) "first" 100.0 (Rpc.backoff_ms p ~retry:1 rng);
  Alcotest.(check (float 1e-9)) "second doubles" 200.0 (Rpc.backoff_ms p ~retry:2 rng);
  Alcotest.(check (float 1e-9)) "fourth" 800.0 (Rpc.backoff_ms p ~retry:4 rng);
  let j = { p with Rpc.jitter = 0.25 } in
  for retry = 1 to 5 do
    let base = 100.0 *. (2.0 ** Float.of_int (retry - 1)) in
    let d = Rpc.backoff_ms j ~retry rng in
    if d < base *. 0.75 || d > base *. 1.25 then
      Alcotest.failf "jittered backoff %.1f outside [%.1f, %.1f]" d (base *. 0.75)
        (base *. 1.25)
  done;
  Alcotest.check_raises "retry 0" (Invalid_argument "Rpc.backoff_ms: retry must be >= 1")
    (fun () -> ignore (Rpc.backoff_ms p ~retry:0 rng))

(* --- Fault_plan ---------------------------------------------------- *)

let test_fault_plan_basics () =
  let p = Fault_plan.create ~loss:0.25 ~n:10 () in
  Alcotest.(check int) "size" 10 (Fault_plan.size p);
  Alcotest.(check (float 1e-9)) "loss" 0.25 (Fault_plan.loss p);
  Alcotest.(check int) "none crashed" 0 (Fault_plan.crashed_count p);
  Fault_plan.crash p 3;
  Fault_plan.crash p 3;
  Fault_plan.crash p 7;
  Alcotest.(check bool) "crashed" true (Fault_plan.is_crashed p 3);
  Alcotest.(check int) "idempotent" 2 (Fault_plan.crashed_count p);
  Alcotest.(check (array int)) "sorted list" [| 3; 7 |] (Fault_plan.crashed_nodes p);
  Fault_plan.revive p 3;
  Alcotest.(check bool) "revived" false (Fault_plan.is_crashed p 3);
  Fault_plan.slow p 2 ~factor:5.0;
  Alcotest.(check (float 1e-9)) "multiplier" 5.0 (Fault_plan.multiplier p 2);
  Alcotest.(check (float 1e-9)) "edge multiplier" 5.0 (Fault_plan.edge_multiplier p 2 4);
  Fault_plan.slow p 4 ~factor:3.0;
  Alcotest.(check (float 1e-9)) "both ends" 15.0 (Fault_plan.edge_multiplier p 2 4);
  Alcotest.check_raises "bad loss" (Invalid_argument "Fault_plan: loss must be in [0, 1]")
    (fun () -> Fault_plan.set_loss p 1.5);
  Alcotest.check_raises "bad factor" (Invalid_argument "Fault_plan.slow: factor must be >= 1")
    (fun () -> Fault_plan.slow p 0 ~factor:0.5);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Fault_plan.crash: node out of range") (fun () ->
      Fault_plan.crash p 10)

let test_fault_plan_draw_lost () =
  let p = Fault_plan.none ~n:4 in
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    if Fault_plan.draw_lost p rng then Alcotest.fail "loss 0 must never lose"
  done;
  Fault_plan.set_loss p 1.0;
  for _ = 1 to 50 do
    if not (Fault_plan.draw_lost p rng) then Alcotest.fail "loss 1 must always lose"
  done

let test_fault_plan_crash_domain () =
  let pop = make_universe ~n:120 40 in
  let tree = pop.Population.tree in
  let domain = (Domain_tree.children tree (Domain_tree.root tree)).(1) in
  let p = Fault_plan.none ~n:120 in
  Fault_plan.crash_domain p pop ~domain;
  for v = 0 to 119 do
    let inside =
      Domain_tree.is_ancestor tree ~anc:domain ~desc:pop.Population.leaf_of_node.(v)
    in
    Alcotest.(check bool)
      (Printf.sprintf "node %d crash matches membership" v)
      inside (Fault_plan.is_crashed p v)
  done;
  Alcotest.(check bool) "someone crashed" true (Fault_plan.crashed_count p > 0);
  Alcotest.(check bool) "not everyone" true (Fault_plan.crashed_count p < 120)

let test_fault_plan_crash_random_protect () =
  let p = Fault_plan.none ~n:200 in
  Fault_plan.crash_random p (Rng.create 6) ~fraction:0.5 ~protect:(fun v -> v < 100) ();
  for v = 0 to 99 do
    if Fault_plan.is_crashed p v then Alcotest.fail "protected node crashed"
  done;
  let crashed = Fault_plan.crashed_count p in
  Alcotest.(check bool) "roughly half of the rest" true (crashed > 20 && crashed < 80)

(* --- Net: fault-free fidelity -------------------------------------- *)

let build_crescendo ~n seed =
  let pop = make_universe ~n seed in
  let rings = Rings.build pop in
  (pop, rings, Crescendo.build rings)

let test_net_fault_free_matches_sync () =
  let _, rings, overlay = build_crescendo ~n:200 50 in
  let net = Net.create ~rings ~rng:(Rng.create 51) ~node_latency:oracle overlay in
  let rng = Rng.create 52 in
  for _ = 1 to 100 do
    let src = Rng.int_below rng 200 and dst = Rng.int_below rng 200 in
    let key = Overlay.id overlay dst in
    let sync = Router.greedy_clockwise overlay ~src ~key in
    let r = Net.lookup net ~src ~key in
    Alcotest.(check bool) "delivered" true (r.Async_route.status = Async_route.Delivered);
    Alcotest.(check (array int)) "path matches sync engine" sync.Route.nodes
      r.Async_route.route.Route.nodes;
    Alcotest.(check (float 1e-6)) "wall clock = physical path latency"
      (Route.latency sync ~node_latency:oracle)
      r.Async_route.wall_ms;
    Alcotest.(check int) "one message per hop" (Route.hops sync) r.Async_route.messages;
    Alcotest.(check int) "no retries" 0 r.Async_route.retries;
    Alcotest.(check int) "no timeouts" 0 r.Async_route.timeouts;
    Alcotest.(check int) "no losses" 0 r.Async_route.losses;
    Alcotest.(check int) "no reanchors" 0 r.Async_route.reanchors
  done

let test_net_self_lookup () =
  let _, rings, overlay = build_crescendo ~n:64 53 in
  let net = Net.create ~rings ~rng:(Rng.create 54) ~node_latency:oracle overlay in
  (* Looking up your own id terminates immediately: zero messages. *)
  let r = Net.lookup net ~src:5 ~key:(Overlay.id overlay 5) in
  Alcotest.(check bool) "delivered" true (Async_route.delivered r);
  Alcotest.(check int) "zero hops" 0 (Route.hops r.Async_route.route);
  Alcotest.(check int) "zero messages" 0 r.Async_route.messages;
  Alcotest.(check (float 1e-9)) "zero wall" 0.0 r.Async_route.wall_ms

(* --- Net: crash recovery ------------------------------------------- *)

(* A (src, dst) pair whose fault-free route has at least [min_hops]
   hops, by deterministic scan. *)
let multi_hop_pair overlay ~n ~min_hops =
  let found = ref None in
  (try
     for src = 0 to n - 1 do
       for dst = 0 to n - 1 do
         let route = Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst) in
         if Route.hops route >= min_hops && Route.destination route = dst then begin
           found := Some (src, dst, route);
           raise Exit
         end
       done
     done
   with Exit -> ());
  match !found with Some x -> x | None -> Alcotest.fail "no multi-hop pair found"

let fast_policy =
  {
    Rpc.timeout_ms = 100.0;
    max_retries = 1;
    backoff_base_ms = 10.0;
    backoff_factor = 2.0;
    jitter = 0.0;
    deadline_ms = 60_000.0;
  }

(* The FIFO tie rule (net.ml pushes Deliver before Timeout): a hop
   whose latency is *exactly* timeout_ms is Delivered, not Timed out.
   Every edge of this oracle costs precisely the timeout, so any tie
   broken the other way would surface as timeouts (and, with
   max_retries = 0, as a reroute off the fault-free path). *)
let test_net_latency_exactly_timeout_delivered () =
  let _, rings, overlay = build_crescendo ~n:64 58 in
  let timeout_ms = 100.0 in
  let policy =
    { Rpc.default with Rpc.timeout_ms; max_retries = 0; deadline_ms = 1_000_000.0 }
  in
  let at_timeout u v = if u = v then 0.0 else timeout_ms in
  let net =
    Net.create ~policy ~rings ~rng:(Rng.create 59) ~node_latency:at_timeout overlay
  in
  let src, dst, route = multi_hop_pair overlay ~n:64 ~min_hops:2 in
  let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
  Alcotest.(check bool) "delivered" true (r.Async_route.status = Async_route.Delivered);
  Alcotest.(check (array int)) "undeviated path" route.Route.nodes
    r.Async_route.route.Route.nodes;
  Alcotest.(check int) "no timeouts at the tie" 0 r.Async_route.timeouts;
  Alcotest.(check int) "no retries" 0 r.Async_route.retries;
  Alcotest.(check (float 1e-6)) "wall clock = hops x timeout"
    (Float.of_int (Route.hops route) *. timeout_ms)
    r.Async_route.wall_ms

let test_net_reroutes_around_crashed_hop () =
  let _, rings, overlay = build_crescendo ~n:200 55 in
  let n = 200 in
  let src, dst, route = multi_hop_pair overlay ~n ~min_hops:2 in
  let victim = route.Route.nodes.(1) in
  let plan = Fault_plan.none ~n in
  Fault_plan.crash plan victim;
  let net =
    Net.create ~policy:fast_policy ~plan ~rings ~rng:(Rng.create 56) ~node_latency:oracle
      overlay
  in
  let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
  Alcotest.(check bool) "still delivered" true (Async_route.delivered r);
  Alcotest.(check int) "same destination" dst (Route.destination r.Async_route.route);
  Alcotest.(check bool) "rerouted status" true (r.Async_route.status = Async_route.Rerouted);
  Alcotest.(check bool) "path avoids the crashed node" false
    (Route.mem r.Async_route.route victim);
  Alcotest.(check bool) "paid timeouts" true (r.Async_route.timeouts > 0);
  Alcotest.(check bool) "paid retries" true (r.Async_route.retries > 0);
  Alcotest.(check bool) "wall clock grew past the physical path" true
    (r.Async_route.wall_ms > Route.latency r.Async_route.route ~node_latency:oracle)

let test_net_reanchors_through_leaf_set () =
  (* Flat 1-level universe: kill a node's first three ring successors
     and look up the fourth. Every greedy candidate in (src, key] is
     one of the dead successors, so delivery must go through leaf-set
     re-anchoring (paper: "the next leaf-set entry re-anchors the
     ring"). *)
  let pop = make_universe ~levels:1 ~n:64 57 in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let src = 0 in
  let sets = Canon_sim.Leaf_sets.successors rings ~node:src ~width:4 in
  Alcotest.(check int) "one level" 1 (Array.length sets);
  let succ = sets.(0) in
  Alcotest.(check int) "four successors" 4 (Array.length succ);
  let plan = Fault_plan.none ~n:64 in
  Fault_plan.crash plan succ.(0);
  Fault_plan.crash plan succ.(1);
  Fault_plan.crash plan succ.(2);
  let dst = succ.(3) in
  let net =
    Net.create ~policy:fast_policy ~plan ~rings ~rng:(Rng.create 58) ~node_latency:oracle
      overlay
  in
  let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
  Alcotest.(check bool) "delivered despite three dead successors" true
    (Async_route.delivered r);
  Alcotest.(check int) "reached the fourth successor" dst
    (Route.destination r.Async_route.route);
  Alcotest.(check bool) "re-anchored at least once" true (r.Async_route.reanchors >= 1);
  Array.iteri
    (fun i v ->
      if i < 3 then
        Alcotest.(check bool) "dead successor not on path" false
          (Route.mem r.Async_route.route v))
    succ

let test_net_fails_without_leaf_sets () =
  (* Same scenario without ~rings: blocked means failed. *)
  let pop = make_universe ~levels:1 ~n:64 57 in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let src = 0 in
  let succ = (Canon_sim.Leaf_sets.successors rings ~node:src ~width:4).(0) in
  let plan = Fault_plan.none ~n:64 in
  Fault_plan.crash plan succ.(0);
  Fault_plan.crash plan succ.(1);
  Fault_plan.crash plan succ.(2);
  let net =
    Net.create ~policy:fast_policy ~plan ~rng:(Rng.create 58) ~node_latency:oracle overlay
  in
  let r = Net.lookup net ~src ~key:(Overlay.id overlay succ.(3)) in
  Alcotest.(check bool) "failed" true (r.Async_route.status = Async_route.Failed);
  Alcotest.(check (option string)) "for want of a candidate" (Some "no-candidate")
    (Option.map Async_route.failure_to_string r.Async_route.failure)

let test_net_suspicion_modes () =
  let _, rings, overlay = build_crescendo ~n:200 55 in
  let n = 200 in
  let src, dst, route = multi_hop_pair overlay ~n ~min_hops:2 in
  let victim = route.Route.nodes.(1) in
  let key = Overlay.id overlay dst in
  let run suspicion =
    let plan = Fault_plan.none ~n in
    Fault_plan.crash plan victim;
    let net =
      Net.create ~policy:fast_policy ~plan ~rings ~suspicion ~rng:(Rng.create 59)
        ~node_latency:oracle overlay
    in
    let first = Net.lookup net ~src ~key in
    let second = Net.lookup net ~src ~key in
    (net, first, second)
  in
  (* Per-lookup: each lookup rediscovers the crash and pays again. *)
  let net_p, first_p, second_p = run `Per_lookup in
  Alcotest.(check bool) "per-lookup: first pays timeouts" true
    (first_p.Async_route.timeouts > 0);
  Alcotest.(check bool) "per-lookup: second pays again" true
    (second_p.Async_route.timeouts > 0);
  Alcotest.(check (array int)) "per-lookup: nothing remembered" [||]
    (Net.suspected_nodes net_p);
  (* Shared: the second lookup routes around the suspect for free. *)
  let net_s, first_s, second_s = run `Shared in
  Alcotest.(check bool) "shared: first pays timeouts" true
    (first_s.Async_route.timeouts > 0);
  Alcotest.(check int) "shared: second is clean" 0 second_s.Async_route.timeouts;
  Alcotest.(check bool) "shared: still delivered" true (Async_route.delivered second_s);
  Alcotest.(check (array int)) "shared: victim remembered" [| victim |]
    (Net.suspected_nodes net_s);
  Net.clear_suspicions net_s;
  Alcotest.(check (array int)) "cleared" [||] (Net.suspected_nodes net_s)

(* --- Net: loss, slowness, deadline --------------------------------- *)

let test_net_total_loss_fails () =
  let _, rings, overlay = build_crescendo ~n:200 60 in
  let src, dst, _ = multi_hop_pair overlay ~n:200 ~min_hops:2 in
  let plan = Fault_plan.create ~loss:1.0 ~n:200 () in
  let net =
    Net.create ~policy:fast_policy ~plan ~rings ~rng:(Rng.create 61) ~node_latency:oracle
      overlay
  in
  let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
  Alcotest.(check bool) "failed" true (r.Async_route.status = Async_route.Failed);
  Alcotest.(check bool) "timed out along the way" true (r.Async_route.timeouts > 0);
  Alcotest.(check bool) "lost messages counted" true
    (r.Async_route.losses = r.Async_route.messages && r.Async_route.losses > 0)

let test_net_partial_loss_recovers () =
  let _, rings, overlay = build_crescendo ~n:200 62 in
  let plan = Fault_plan.create ~loss:0.3 ~n:200 () in
  let net =
    Net.create ~plan ~rings ~rng:(Rng.create 63) ~node_latency:oracle overlay
  in
  let rng = Rng.create 64 in
  let delivered = ref 0 and retried = ref 0 in
  for _ = 1 to 60 do
    let src = Rng.int_below rng 200 and dst = Rng.int_below rng 200 in
    let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
    if Async_route.delivered r then incr delivered;
    retried := !retried + r.Async_route.retries
  done;
  Alcotest.(check bool) "most lookups survive 30% loss" true (!delivered >= 55);
  Alcotest.(check bool) "retries did the work" true (!retried > 0)

let test_net_routes_around_slow_node () =
  let _, rings, overlay = build_crescendo ~n:200 65 in
  let src, dst, route = multi_hop_pair overlay ~n:200 ~min_hops:2 in
  let slow = route.Route.nodes.(1) in
  let plan = Fault_plan.none ~n:200 in
  (* Slower than the timeout: indistinguishable from crashed. *)
  Fault_plan.slow plan slow ~factor:1e6;
  let net =
    Net.create ~policy:fast_policy ~plan ~rings ~rng:(Rng.create 66) ~node_latency:oracle
      overlay
  in
  let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
  Alcotest.(check bool) "delivered" true (Async_route.delivered r);
  Alcotest.(check bool) "avoids the slow node" false (Route.mem r.Async_route.route slow);
  Alcotest.(check bool) "paid timeouts to learn" true (r.Async_route.timeouts > 0)

let test_net_deadline () =
  let _, rings, overlay = build_crescendo ~n:200 67 in
  let src, dst, _ = multi_hop_pair overlay ~n:200 ~min_hops:2 in
  (* Total loss and a generous retry budget: the lookup can only die at
     the deadline. *)
  let policy = { fast_policy with Rpc.max_retries = 1000; deadline_ms = 5000.0 } in
  let plan = Fault_plan.create ~loss:1.0 ~n:200 () in
  let net =
    Net.create ~policy ~plan ~rings ~rng:(Rng.create 68) ~node_latency:oracle overlay
  in
  let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
  Alcotest.(check bool) "failed" true (r.Async_route.status = Async_route.Failed);
  Alcotest.(check (option string)) "at the deadline" (Some "deadline")
    (Option.map Async_route.failure_to_string r.Async_route.failure);
  Alcotest.(check bool) "wall clock clamped to deadline" true
    (r.Async_route.wall_ms <= 5000.0 +. 1e-9)

(* --- Net: determinism, validation, telemetry ----------------------- *)

let test_net_deterministic () =
  let run () =
    let _, rings, overlay = build_crescendo ~n:200 69 in
    let plan = Fault_plan.create ~loss:0.2 ~n:200 () in
    Fault_plan.crash_random plan (Rng.create 70) ~fraction:0.15 ();
    let net =
      Net.create ~plan ~rings ~rng:(Rng.create 71) ~node_latency:oracle overlay
    in
    let rng = Rng.create 72 in
    let out = ref [] in
    for _ = 1 to 80 do
      let src = Rng.int_below rng 200 and dst = Rng.int_below rng 200 in
      if not (Fault_plan.is_crashed plan src) then begin
        let r = Net.lookup net ~src ~key:(Overlay.id overlay dst) in
        out :=
          ( Async_route.status_to_string r.Async_route.status,
            Array.to_list r.Async_route.route.Route.nodes,
            r.Async_route.wall_ms,
            r.Async_route.messages )
          :: !out
      end
    done;
    List.rev !out
  in
  if run () <> run () then Alcotest.fail "same seed, different simulation"

let test_net_validation () =
  let _, rings, overlay = build_crescendo ~n:64 73 in
  let plan = Fault_plan.none ~n:64 in
  Fault_plan.crash plan 3;
  let net = Net.create ~plan ~rings ~rng:(Rng.create 74) ~node_latency:oracle overlay in
  Alcotest.check_raises "crashed source" (Invalid_argument "Net.lookup: crashed source")
    (fun () -> ignore (Net.lookup net ~src:3 ~key:(Overlay.id overlay 0)));
  Alcotest.check_raises "size mismatch" (Invalid_argument "Net.create: plan/overlay size mismatch")
    (fun () ->
      ignore
        (Net.create ~plan:(Fault_plan.none ~n:10) ~rng:(Rng.create 75)
           ~node_latency:oracle overlay));
  Alcotest.check_raises "bad leaf width"
    (Invalid_argument "Net.create: leaf_width must be >= 1") (fun () ->
      ignore
        (Net.create ~leaf_width:0 ~rng:(Rng.create 76) ~node_latency:oracle overlay))

let test_net_reanchor_candidate () =
  let pop = make_universe ~levels:1 ~n:64 77 in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let succ = (Canon_sim.Leaf_sets.successors rings ~node:0 ~width:4).(0) in
  let with_rings =
    Net.create ~rings ~rng:(Rng.create 78) ~node_latency:oracle overlay
  in
  (* Toward a far key, the candidate is the nearest ring successor. *)
  let far = Id.add (Overlay.id overlay 0) (Id.space - 1) in
  Alcotest.(check (option int)) "nearest successor" (Some succ.(0))
    (Net.reanchor_candidate with_rings ~at:0 ~key:far);
  Alcotest.(check (option int)) "own key: no candidate" None
    (Net.reanchor_candidate with_rings ~at:0 ~key:(Overlay.id overlay 0));
  let without =
    Net.create ~rng:(Rng.create 79) ~node_latency:oracle overlay
  in
  Alcotest.(check (option int)) "no rings, no candidate" None
    (Net.reanchor_candidate without ~at:0 ~key:far)

let test_net_telemetry () =
  let _, rings, overlay = build_crescendo ~n:64 80 in
  let net = Net.create ~rings ~rng:(Rng.create 81) ~node_latency:oracle overlay in
  let lookups_before = Metrics.value (Metrics.counter "net.lookups") in
  let trace = Trace.create () in
  Trace.set_ambient (Some trace);
  Fun.protect
    ~finally:(fun () -> Trace.set_ambient None)
    (fun () ->
      let r = Net.lookup net ~src:1 ~key:(Overlay.id overlay 40) in
      Alcotest.(check int) "one lookup counted" (lookups_before + 1)
        (Metrics.value (Metrics.counter "net.lookups"));
      match Trace.spans trace with
      | [ span ] ->
          Alcotest.(check string) "span kind" "canon_net.lookup" span.Span.kind;
          Alcotest.(check (array int)) "span path is the realized path"
            r.Async_route.route.Route.nodes (Span.path span)
      | spans -> Alcotest.failf "expected 1 span, got %d" (List.length spans))

(* --- Net: live membership ------------------------------------------ *)

module Maintenance = Canon_sim.Maintenance
module Event_queue = Canon_sim.Event_queue
module Churn = Canon_sim.Churn

let test_live_view_tracks_membership () =
  let pop = make_universe ~n:64 83 in
  let m = Maintenance.create pop ~present:(Array.init 64 Fun.id) in
  let v = Live_view.crescendo m in
  Alcotest.(check bool) "live" true (Live_view.is_live v 5);
  Alcotest.(check (array int)) "links = maintained links" (Maintenance.links m 5)
    (Live_view.links v 5);
  let g0 = Live_view.generation v in
  ignore (Maintenance.leave m 5);
  Live_view.on_hook v (Churn.Leave 5);
  Alcotest.(check bool) "gone after leave" false (Live_view.is_live v 5);
  Alcotest.(check (array int)) "no links when dead" [||] (Live_view.links v 5);
  Alcotest.(check bool) "generation bumped" true (Live_view.generation v > g0)

let test_live_view_chord_links () =
  let pop = make_universe ~n:64 84 in
  let m = Maintenance.create pop ~present:(Array.init 64 Fun.id) in
  let v = Live_view.chord m in
  (* the finger rule applied to the live global ring *)
  let expect u =
    let ring = Rings.ring_of_node_at_depth (Maintenance.rings m) u 0 in
    Chord.links_of_id ring pop.Population.ids.(u) ~self:u
  in
  Alcotest.(check (array int)) "finger rule over live global ring" (expect 7)
    (Live_view.links v 7);
  Alcotest.(check (array int)) "memoized lookup is stable" (Live_view.links v 7)
    (Live_view.links v 7);
  let victim = (expect 7).(0) in
  ignore (Maintenance.leave m victim);
  Live_view.bump v;
  Alcotest.(check (array int)) "recomputed after bump" (expect 7) (Live_view.links v 7);
  Alcotest.(check bool) "departed finger dropped" false
    (Array.mem victim (Live_view.links v 7))

(* Satellite regression: the next hop leaves while the RPC is in flight.
   A pinned seed and the jitter-free [fast_policy] make the whole
   episode arithmetic: send at 0 -> the Deliver is suppressed (target
   left at t = 5, before any edge's >= 10 ms latency elapses) -> timeout
   at 100 -> retry after the 10 ms backoff at 110 -> timeout at 210 ->
   suspect -> reroute over the post-leave links straight to delivery. *)
let test_net_midflight_leave_reroutes () =
  let pop = make_universe ~n:64 85 in
  let m = Maintenance.create pop ~present:(Array.init 64 Fun.id) in
  let view = Live_view.crescendo m in
  let overlay = Maintenance.overlay m in
  let src, dst, route = multi_hop_pair overlay ~n:64 ~min_hops:2 in
  let victim = route.Route.nodes.(1) in
  let net =
    Net.create ~live:view ~policy:fast_policy ~rng:(Rng.create 86) ~node_latency:oracle
      overlay
  in
  let timeouts0 = Metrics.value (Metrics.counter "net.timeouts") in
  let retries0 = Metrics.value (Metrics.counter "net.retries") in
  let q = Event_queue.create () in
  let push ~time ev = Event_queue.push q ~time (`Net ev) in
  let p = Net.launch net ~now:0.0 ~push ~src ~key:(Overlay.id overlay dst) in
  Event_queue.push q ~time:5.0 `Leave_victim;
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (_, `Leave_victim) ->
        ignore (Maintenance.leave m victim);
        Live_view.on_hook view (Churn.Leave victim);
        drain ()
    | Some (t, `Net ev) ->
        Net.handle net ~now:t ~push ev;
        drain ()
  in
  drain ();
  let r =
    match Net.result p with Some r -> r | None -> Alcotest.fail "lookup never resolved"
  in
  Alcotest.(check bool) "rerouted" true (r.Async_route.status = Async_route.Rerouted);
  Alcotest.(check int) "reaches the destination" dst
    (Route.destination r.Async_route.route);
  Alcotest.(check int) "exactly two timeouts" 2 r.Async_route.timeouts;
  Alcotest.(check int) "exactly one retry" 1 r.Async_route.retries;
  Alcotest.(check int) "no reanchors" 0 r.Async_route.reanchors;
  Alcotest.(check int) "no losses" 0 r.Async_route.losses;
  Alcotest.(check bool) "victim not on the realized path" false
    (Array.mem victim r.Async_route.route.Route.nodes);
  (* after the reroute the lookup is still at [src], so it must follow
     the post-leave greedy path exactly *)
  let post =
    Router.greedy_clockwise (Maintenance.overlay m) ~src ~key:(Overlay.id overlay dst)
  in
  Alcotest.(check (array int)) "path = post-leave greedy path" post.Route.nodes
    r.Async_route.route.Route.nodes;
  Alcotest.(check (float 1e-6)) "wall = 2 timeout windows + backoff + detour latency"
    (210.0 +. Route.latency post ~node_latency:oracle)
    r.Async_route.wall_ms;
  Alcotest.(check int) "messages = 2 wasted sends + detour hops" (2 + Route.hops post)
    r.Async_route.messages;
  Alcotest.(check int) "net.timeouts counter" (timeouts0 + 2)
    (Metrics.value (Metrics.counter "net.timeouts"));
  Alcotest.(check int) "net.retries counter" (retries0 + 1)
    (Metrics.value (Metrics.counter "net.retries"))

(* Interleaving many fault-free lookups on one shared queue changes
   nothing: each result is byte-identical to the same lookup run alone
   through [Net.lookup] (the fault-free path never consumes RNG). *)
let test_net_merged_lookups_match_sequential () =
  let _, rings, overlay = build_crescendo ~n:200 88 in
  let merged = Net.create ~rings ~rng:(Rng.create 89) ~node_latency:oracle overlay in
  let seq = Net.create ~rings ~rng:(Rng.create 89) ~node_latency:oracle overlay in
  let prng = Rng.create 90 in
  let k = 12 in
  let pairs = Array.make k (0, 0) in
  for i = 0 to k - 1 do
    let src = Rng.int_below prng 200 in
    let dst = Rng.int_below prng 200 in
    pairs.(i) <- (src, dst)
  done;
  let q = Event_queue.create () in
  let push ~time ev = Event_queue.push q ~time ev in
  let pendings =
    Array.mapi
      (fun i (src, dst) ->
        Net.launch merged ~now:(Float.of_int (17 * i)) ~push ~src
          ~key:(Overlay.id overlay dst))
      pairs
  in
  let rec drain () =
    match Event_queue.pop q with
    | None -> ()
    | Some (t, ev) ->
        Net.handle merged ~now:t ~push ev;
        drain ()
  in
  drain ();
  Array.iteri
    (fun i (src, dst) ->
      let rm =
        match Net.result pendings.(i) with
        | Some r -> r
        | None -> Alcotest.fail "lookup never resolved"
      in
      let rs = Net.lookup seq ~src ~key:(Overlay.id overlay dst) in
      Alcotest.(check bool) "same status" true
        (rm.Async_route.status = rs.Async_route.status);
      Alcotest.(check (array int)) "same path" rs.Async_route.route.Route.nodes
        rm.Async_route.route.Route.nodes;
      Alcotest.(check (float 1e-9)) "same wall" rs.Async_route.wall_ms
        rm.Async_route.wall_ms;
      Alcotest.(check int) "same messages" rs.Async_route.messages
        rm.Async_route.messages)
    pairs

let suites =
  [
    ( "net-clock",
      [ Alcotest.test_case "monotone virtual clock" `Quick test_clock ] );
    ( "net-rpc",
      [
        Alcotest.test_case "validate" `Quick test_rpc_validate;
        Alcotest.test_case "backoff growth and jitter" `Quick test_rpc_backoff;
      ] );
    ( "net-fault-plan",
      [
        Alcotest.test_case "basics" `Quick test_fault_plan_basics;
        Alcotest.test_case "loss draws" `Quick test_fault_plan_draw_lost;
        Alcotest.test_case "crash domain" `Quick test_fault_plan_crash_domain;
        Alcotest.test_case "crash random with protect" `Quick
          test_fault_plan_crash_random_protect;
      ] );
    ( "net-lookup",
      [
        Alcotest.test_case "fault-free = synchronous greedy" `Quick
          test_net_fault_free_matches_sync;
        Alcotest.test_case "self lookup" `Quick test_net_self_lookup;
        Alcotest.test_case "latency exactly at timeout is delivered" `Quick
          test_net_latency_exactly_timeout_delivered;
        Alcotest.test_case "reroutes around a crashed hop" `Quick
          test_net_reroutes_around_crashed_hop;
        Alcotest.test_case "leaf-set re-anchor after multi-successor failure" `Quick
          test_net_reanchors_through_leaf_set;
        Alcotest.test_case "blocked without leaf sets" `Quick
          test_net_fails_without_leaf_sets;
        Alcotest.test_case "suspicion scopes" `Quick test_net_suspicion_modes;
        Alcotest.test_case "total loss fails" `Quick test_net_total_loss_fails;
        Alcotest.test_case "partial loss recovers" `Quick test_net_partial_loss_recovers;
        Alcotest.test_case "routes around a slow node" `Quick
          test_net_routes_around_slow_node;
        Alcotest.test_case "deadline" `Quick test_net_deadline;
        Alcotest.test_case "deterministic" `Quick test_net_deterministic;
        Alcotest.test_case "validation" `Quick test_net_validation;
        Alcotest.test_case "reanchor candidate" `Quick test_net_reanchor_candidate;
        Alcotest.test_case "telemetry" `Quick test_net_telemetry;
      ] );
    ( "net-live",
      [
        Alcotest.test_case "live view tracks membership" `Quick
          test_live_view_tracks_membership;
        Alcotest.test_case "live chord links" `Quick test_live_view_chord_links;
        Alcotest.test_case "mid-flight leave reroutes" `Quick
          test_net_midflight_leave_reroutes;
        Alcotest.test_case "merged lookups = sequential" `Quick
          test_net_merged_lookups_match_sequential;
      ] );
  ]
