(* Integration tests: run every experiment at quick scale and assert the
   qualitative shapes the paper reports. These are the same claims
   EXPERIMENTS.md records at paper scale, locked in as regressions. *)

open Canon_experiments
module Table = Canon_stats.Table

let seed = 42

let cell table r c = List.nth (List.nth (Table.rows table) r) c

let cellf table r c = float_of_string (cell table r c)

let nrows table = List.length (Table.rows table)

(* One topology-free and one topology-backed group, so the expensive
   Dijkstra setup runs only in a few tests. *)

let test_fig3_shape () =
  let t = Fig3.run ~scale:`Quick ~seed in
  Alcotest.(check bool) "has rows" true (nrows t >= 3);
  (* links close to log2 n and decreasing with levels *)
  List.iteri
    (fun r _ ->
      let log2n = cellf t r 1 in
      let chord = cellf t r 2 and five = cellf t r 6 in
      if Float.abs (chord -. log2n) > 1.0 then Alcotest.fail "Chord links far from log2 n";
      if five >= chord then Alcotest.fail "levels do not reduce links")
    (Table.rows t)

let test_fig4_shape () =
  let t = Fig4.run ~scale:`Quick ~seed in
  (* fractions in each column sum to ~1 *)
  let cols = List.length (Table.columns t) in
  for c = 1 to cols - 1 do
    let total =
      List.fold_left (fun acc row -> acc +. float_of_string (List.nth row c)) 0.0 (Table.rows t)
    in
    if total < 0.95 || total > 1.01 then Alcotest.failf "column %d mass %.3f" c total
  done

let test_fig5_shape () =
  let t = Fig5.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let half_log = float_of_string (List.nth row 1) in
      let chord = float_of_string (List.nth row 2) in
      let five = float_of_string (List.nth row 6) in
      if Float.abs (chord -. half_log) > 1.0 then Alcotest.fail "Chord hops far from 0.5 log2 n";
      (* paper: increase at most ~0.7 across levels *)
      if five -. chord > 1.0 then Alcotest.fail "hierarchy hops penalty too large")
    (Table.rows t)

let test_theorems_bounds_hold () =
  let t = Theorems.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let deg = float_of_string (List.nth row 3) in
      let deg_bound = float_of_string (List.nth row 4) in
      let hops = float_of_string (List.nth row 5) in
      let hops_bound = float_of_string (List.nth row 6) in
      if deg > deg_bound then Alcotest.fail "degree bound violated";
      if hops > hops_bound then Alcotest.fail "hops bound violated")
    (Table.rows t)

let test_variants_parity () =
  let t = Variants.run ~scale:`Quick ~seed in
  Alcotest.(check int) "12 systems" 12 (nrows t);
  (* each Canonical row is within 40% of its flat sibling's hops *)
  let hops r = cellf t r 2 in
  List.iter
    (fun (flat, canonical) ->
      let f = hops flat and c = hops canonical in
      if c > 1.4 *. f || f > 1.4 *. c then
        Alcotest.failf "rows %d/%d hops diverge: %.2f vs %.2f" flat canonical f c)
    [ (0, 1); (2, 3); (4, 5); (6, 7); (8, 9); (10, 11) ]

let test_lookahead_saves () =
  let t = Lookahead_bench.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let saving = float_of_string (List.nth row 3) in
      if saving < 0.1 then Alcotest.fail "lookahead saves too little")
    (Table.rows t)

let test_balance_shape () =
  let t = Balance_bench.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let random = float_of_string (List.nth row 1) in
      let bisect = float_of_string (List.nth row 2) in
      if bisect > 20.0 then Alcotest.fail "bisection ratio not constant-ish";
      if bisect > random /. 10.0 then Alcotest.fail "bisection not clearly better")
    (Table.rows t)

let test_maintenance_shape () =
  let t = Maintenance_bench.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let log2n = float_of_string (List.nth row 1) in
      let join = float_of_string (List.nth row 2) in
      let failed = int_of_string (List.nth row 6) in
      Alcotest.(check int) "no failed probes" 0 failed;
      if join > 8.0 *. log2n then Alcotest.fail "join cost not O(log n)")
    (Table.rows t)

let test_isolation_shape () =
  let t = Isolation.run ~scale:`Quick ~seed in
  List.iteri
    (fun i row ->
      let chord = float_of_string (List.nth row 1) in
      let crescendo = float_of_string (List.nth row 2) in
      Alcotest.(check (float 1e-9)) "crescendo always delivers" 1.0 crescendo;
      if i >= 3 && chord >= 0.99 then Alcotest.fail "chord should degrade under heavy failure")
    (Table.rows t)

let test_hybrid_shape () =
  let t = Hybrid_bench.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let c_hops = float_of_string (List.nth row 3) in
      let h_hops = float_of_string (List.nth row 4) in
      if h_hops > c_hops then Alcotest.fail "hybrid must not be slower";
      let c_deg = float_of_string (List.nth row 1) in
      let h_deg = float_of_string (List.nth row 2) in
      if h_deg <= c_deg then Alcotest.fail "hybrid clique must cost degree")
    (Table.rows t)

let test_prefix_can_parity () =
  let t = Prefix_can_bench.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let pdeg = float_of_string (List.nth row 1) in
      let xdeg = float_of_string (List.nth row 2) in
      let phops = float_of_string (List.nth row 3) in
      let xhops = float_of_string (List.nth row 4) in
      if Float.abs (pdeg -. xdeg) > 1.5 then Alcotest.fail "degree parity broken";
      if Float.abs (phops -. xhops) > 1.0 then Alcotest.fail "hops parity broken")
    (Table.rows t)

(* topology-backed: one shared quick run each *)

let test_fig6_shape () =
  let t = Fig6.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let chord = float_of_string (List.nth row 2) in
      let crescendo = float_of_string (List.nth row 4) in
      let crescendo_prox = float_of_string (List.nth row 8) in
      if crescendo >= chord then Alcotest.fail "crescendo stretch must beat chord";
      if crescendo_prox > crescendo +. 0.1 then
        Alcotest.fail "prox must not make crescendo worse")
    (Table.rows t)

let test_fig7_shape () =
  let t = Fig7.run ~scale:`Quick ~seed in
  let rows = Table.rows t in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  let crescendo_top = float_of_string (List.nth first 2) in
  let crescendo_leaf = float_of_string (List.nth last 2) in
  let chord_top = float_of_string (List.nth first 1) in
  let chord_leaf = float_of_string (List.nth last 1) in
  Alcotest.(check bool) "crescendo collapses with locality" true
    (crescendo_leaf < crescendo_top /. 20.0);
  Alcotest.(check bool) "chord stays flat" true (chord_leaf > chord_top /. 2.0)

let test_fig8_shape () =
  let t = Fig8.run ~scale:`Quick ~seed in
  let rows = Table.rows t in
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  let cres_first = float_of_string (List.nth first 1) in
  let cres_last = float_of_string (List.nth last 1) in
  Alcotest.(check bool) "overlap rises with domain level" true (cres_last > cres_first +. 0.3);
  (* latency overlap >= hop overlap on deep domains *)
  let lat_last = float_of_string (List.nth last 2) in
  Alcotest.(check bool) "latency overlap above hop overlap" true (lat_last >= cres_last)

let test_fig9_shape () =
  let t = Fig9.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let ratio = float_of_string (List.nth row 3) in
      if ratio > 0.5 then Alcotest.fail "crescendo multicast not clearly cheaper")
    (Table.rows t)

let test_caching_shape () =
  let t = Caching_bench.run ~scale:`Quick ~seed in
  List.iter
    (fun row ->
      let saving = float_of_string (List.nth row 4) in
      if saving < 0.2 then Alcotest.fail "caching saves too little")
    (Table.rows t)

module Trace = Canon_telemetry.Trace
module Sink = Canon_telemetry.Sink

(* Determinism regression: the same seed must reproduce the robustness
   sweep bit for bit — the rendered table AND the JSONL span trace
   streamed through the ambient sink. *)
let test_robustness_deterministic () =
  let run () =
    let sink = Sink.memory () in
    let trace = Trace.create ~sink () in
    Trace.set_ambient (Some trace);
    Fun.protect
      ~finally:(fun () -> Trace.set_ambient None)
      (fun () ->
        let t =
          Robustness_bench.run_with ~fail_fracs:[ 0.2 ] ~loss:0.05 ~n:128 ~probes:40
            ~scale:`Quick ~seed:7 ()
        in
        (Table.rows t, Sink.lines sink))
  in
  let rows1, lines1 = run () in
  let rows2, lines2 = run () in
  Alcotest.(check (list (list string))) "tables identical" rows1 rows2;
  Alcotest.(check bool) "spans were traced" true (lines1 <> []);
  Alcotest.(check (list string)) "JSONL traces byte-identical" lines1 lines2

let test_durability_shape () =
  let t =
    Durability.run_with ~fail_fracs:[ 0.2 ] ~ks:[ 2; 3 ] ~n:192 ~keys:200
      ~scale:`Quick ~seed ()
  in
  (* columns: fail frac | flat k=2 | flat k=3 | sibling k=2 | sibling k=3 *)
  Alcotest.(check int) "two rows" 2 (nrows t);
  (* Random-crash row: k = 3 never worse than k = 2 — k-holder sets are
     prefixes of each other, so this holds exactly, not just on average. *)
  Alcotest.(check bool) "flat k=3 >= k=2" true (cellf t 0 2 >= cellf t 0 1);
  Alcotest.(check bool) "sibling k=3 >= k=2" true (cellf t 0 4 >= cellf t 0 3);
  (* Outage row: the containment claim exactly as BENCH.json renders it —
     sibling spread rides out a whole-leaf-domain crash, flat does not. *)
  Alcotest.(check string) "sibling k=2 contains the outage" "1.000" (cell t 1 3);
  Alcotest.(check string) "sibling k=3 contains the outage" "1.000" (cell t 1 4);
  Alcotest.(check bool) "flat k=2 loses keys" true (cellf t 1 1 < 1.0);
  Alcotest.(check bool) "flat k=3 loses keys" true (cellf t 1 2 < 1.0)

let test_durability_validates () =
  let run ?n ?keys ?ks () =
    ignore (Durability.run_with ?n ?keys ?ks ~scale:`Quick ~seed:1 ())
  in
  Alcotest.check_raises "keys = 0" (Invalid_argument "Durability.run_with: keys < 1")
    (fun () -> run ~keys:0 ());
  Alcotest.check_raises "n = 0" (Invalid_argument "Durability.run_with: n < 1")
    (fun () -> run ~n:0 ());
  Alcotest.check_raises "k = 0" (Invalid_argument "Durability.run_with: k < 1")
    (fun () -> run ~ks:[ 0 ] ())

let test_churn_async_shape () =
  let t = Churn_async.run_with ~n:256 ~events:60 ~lookups:80 ~scale:`Quick ~seed:11 () in
  Alcotest.(check int) "three phases" 3 (nrows t);
  Alcotest.(check int) "seven columns" 7 (List.length (Table.columns t));
  (* quiescent phase is fault-free over static membership: every lookup
     lands, for both constructions *)
  Alcotest.(check string) "quiescent Chord all ok" "1.000" (cell t 0 1);
  Alcotest.(check string) "quiescent Cresc all ok" "1.000" (cell t 0 2);
  (* churn can only hurt *)
  Alcotest.(check bool) "burst Chord <= quiescent" true (cellf t 1 1 <= cellf t 0 1);
  Alcotest.(check bool) "burst Cresc <= quiescent" true (cellf t 1 2 <= cellf t 0 2);
  (* containment: intra-domain Crescendo lookups never touch the
     churning remainder of the network *)
  Alcotest.(check string) "intra Cresc unaffected by outside churn" "1.000" (cell t 2 2)

let test_churn_async_validates () =
  let run ?churn_rate ?lookup_rate ?events ?n ?lookups () =
    ignore
      (Churn_async.run_with ?churn_rate ?lookup_rate ?events ?n ?lookups ~scale:`Quick
         ~seed:1 ())
  in
  Alcotest.check_raises "churn_rate = 0"
    (Invalid_argument "Churn_async.run_with: churn_rate <= 0") (fun () ->
      run ~churn_rate:0.0 ());
  Alcotest.check_raises "lookup_rate = 0"
    (Invalid_argument "Churn_async.run_with: lookup_rate <= 0") (fun () ->
      run ~lookup_rate:0.0 ());
  Alcotest.check_raises "events < 0" (Invalid_argument "Churn_async.run_with: events < 0")
    (fun () -> run ~events:(-1) ());
  Alcotest.check_raises "n too small" (Invalid_argument "Churn_async.run_with: n < 16")
    (fun () -> run ~n:8 ());
  Alcotest.check_raises "lookups = 0"
    (Invalid_argument "Churn_async.run_with: lookups < 1") (fun () -> run ~lookups:0 ())

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "fig3 shape" `Slow test_fig3_shape;
        Alcotest.test_case "fig4 shape" `Slow test_fig4_shape;
        Alcotest.test_case "fig5 shape" `Slow test_fig5_shape;
        Alcotest.test_case "theorem bounds" `Slow test_theorems_bounds_hold;
        Alcotest.test_case "variant parity" `Slow test_variants_parity;
        Alcotest.test_case "lookahead saving" `Slow test_lookahead_saves;
        Alcotest.test_case "balance shape" `Slow test_balance_shape;
        Alcotest.test_case "maintenance shape" `Slow test_maintenance_shape;
        Alcotest.test_case "isolation shape" `Slow test_isolation_shape;
        Alcotest.test_case "hybrid shape" `Slow test_hybrid_shape;
        Alcotest.test_case "prefix-can parity" `Slow test_prefix_can_parity;
        Alcotest.test_case "fig6 shape" `Slow test_fig6_shape;
        Alcotest.test_case "fig7 shape" `Slow test_fig7_shape;
        Alcotest.test_case "fig8 shape" `Slow test_fig8_shape;
        Alcotest.test_case "fig9 shape" `Slow test_fig9_shape;
        Alcotest.test_case "caching shape" `Slow test_caching_shape;
        Alcotest.test_case "robustness determinism" `Slow test_robustness_deterministic;
        Alcotest.test_case "durability shape" `Slow test_durability_shape;
        Alcotest.test_case "durability validation" `Quick test_durability_validates;
        Alcotest.test_case "churn_async shape" `Slow test_churn_async_shape;
        Alcotest.test_case "churn_async validation" `Quick test_churn_async_validates;
      ] );
  ]
