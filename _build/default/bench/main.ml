(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (S5) plus the extension experiments, and runs Bechamel
   micro-benchmarks of the core operations.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- fig3 fig5    # selected experiments
     CANON_SCALE=quick dune exec bench/main.exe   # reduced sizes

   Experiment ids: fig3 fig4 fig5 fig6 fig7 fig8 fig9 theorems variants
   lookahead balance maintenance caching isolation hybrid prefixcan
   skipnet micro. *)

open Canon_experiments
module Table = Canon_stats.Table

let seed = 42

let timed name f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  Printf.printf "[%s finished in %.1f s]\n\n%!" name (Unix.gettimeofday () -. t0);
  result

let run_table name build =
  ( name,
    fun scale ->
      let table = timed name (fun () -> build ~scale ~seed) in
      Table.print table;
      print_newline () )

(* --- Bechamel micro-benchmarks ------------------------------------ *)

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  let open Canon_overlay in
  let open Canon_core in
  let module Rng = Canon_rng.Rng in
  let n = 4096 in
  let pop = Common.hierarchy_population ~seed ~levels:3 ~n in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let flat_pop = Common.hierarchy_population ~seed:(seed + 1) ~levels:1 ~n in
  let flat_ring =
    Ring.of_members ~ids:flat_pop.Population.ids ~members:(Array.init n Fun.id)
  in
  let rng = Rng.create 7 in
  let random_node () = Rng.int_below rng n in
  let tests =
    [
      Test.make ~name:"ring.successor_of_id"
        (Staged.stage (fun () ->
             ignore (Ring.successor_of_id flat_ring (Canon_idspace.Id.random rng))));
      Test.make ~name:"chord.links_of_one_node (n=4096)"
        (Staged.stage (fun () ->
             let node = random_node () in
             ignore (Chord.links_of_id flat_ring flat_pop.Population.ids.(node) ~self:node)));
      Test.make ~name:"crescendo.links_of_one_node (3 levels)"
        (Staged.stage (fun () -> ignore (Crescendo.links_of_node rings (random_node ()))));
      Test.make ~name:"router.greedy_clockwise (n=4096)"
        (Staged.stage (fun () ->
             let src = random_node () and dst = random_node () in
             ignore (Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst))));
      Test.make ~name:"router.greedy_xor (kademlia n=4096)"
        (let kademlia = Kademlia.build (Rng.create 9) flat_pop in
         Staged.stage (fun () ->
             let src = random_node () and dst = random_node () in
             ignore (Router.greedy_xor kademlia ~src ~key:(Overlay.id kademlia dst))));
    ]
  in
  let grouped = Test.make_grouped ~name:"canon" tests in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) results [] in
  let table =
    Table.create ~title:"Micro-benchmarks (Bechamel, ns/op)" ~columns:[ "operation"; "ns/op" ]
  in
  List.iter
    (fun (name, res) ->
      match Analyze.OLS.estimates res with
      | Some (est :: _) -> Table.add_row table [ name; Printf.sprintf "%.1f" est ]
      | Some [] | None -> Table.add_row table [ name; "n/a" ])
    (List.sort (fun (a, _) (b, _) -> String.compare a b) rows);
  Table.print table;
  print_newline ()

let experiments =
  [
    run_table "fig3" Fig3.run;
    run_table "fig4" Fig4.run;
    run_table "fig5" Fig5.run;
    run_table "fig6" Fig6.run;
    run_table "fig7" Fig7.run;
    run_table "fig8" Fig8.run;
    run_table "fig9" Fig9.run;
    run_table "theorems" Theorems.run;
    run_table "variants" Variants.run;
    run_table "lookahead" Lookahead_bench.run;
    run_table "balance" Balance_bench.run;
    run_table "maintenance" Maintenance_bench.run;
    run_table "caching" Caching_bench.run;
    run_table "isolation" Isolation.run;
    run_table "hybrid" Hybrid_bench.run;
    run_table "prefixcan" Prefix_can_bench.run;
    run_table "skipnet" Skipnet_bench.run;
    ("micro", fun _scale -> timed "micro" micro_benchmarks);
  ]

let () =
  let scale = Common.scale_of_env () in
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst experiments
  in
  Printf.printf "Canon benchmark harness (scale: %s, seed: %d)\n\n%!"
    (match scale with `Paper -> "paper" | `Quick -> "quick")
    seed;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some run -> run scale
      | None ->
          Printf.eprintf "unknown experiment %S; known: %s\n" name
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested
