(* Tests for hierarchical storage, access control and caching (§4). *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_storage
module Rng = Canon_rng.Rng

let fixture =
  lazy
    (let rng = Rng.create 77 in
     let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:4 ~levels:3) in
     let pop = Population.create rng ~tree ~policy:(Placement.Zipfian 1.25) ~n:800 in
     let rings = Rings.build pop in
     let overlay = Crescendo.build rings in
     (pop, rings, overlay))

let test_insert_and_lookup_global () =
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let root = Domain_tree.root pop.Population.tree in
  let rng = Rng.create 3 in
  for i = 0 to 30 do
    let publisher = Rng.int_below rng (Population.size pop) in
    let key = Id.random rng in
    let value = Printf.sprintf "v%d" i in
    Store.insert store ~publisher ~key ~value ~storage_domain:root ~access_domain:root;
    let querier = Rng.int_below rng (Population.size pop) in
    match Store.lookup store overlay ~querier ~key with
    | None -> Alcotest.fail "global content not found"
    | Some hit ->
        Alcotest.(check string) "value" value hit.Store.value;
        Alcotest.(check (option int)) "no pointer" None hit.Store.via_pointer;
        Alcotest.(check int) "found at responsible node"
          (Store.storage_node store ~domain:root ~key)
          hit.Store.found_at
  done

let test_storage_placement_rule () =
  (* Content must live at the node of the storage domain with the
     largest id <= key. *)
  let pop, rings, _ = Lazy.force fixture in
  let store = Store.create rings in
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    let publisher = Rng.int_below rng (Population.size pop) in
    let domain = Population.domain_of_node_at_depth pop publisher 1 in
    let key = Id.random rng in
    let holder = Store.storage_node store ~domain ~key in
    (* holder is in the domain and no domain member is closer below key *)
    let ring = Rings.ring rings domain in
    Alcotest.(check int) "paper's responsibility rule"
      (Ring.predecessor_of_id ring key) holder
  done

let test_local_lookup_stays_in_domain () =
  (* "a query for content stored locally in a domain never leaves the
     domain" (§4.1) *)
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let tree = pop.Population.tree in
  let rng = Rng.create 7 in
  for _ = 1 to 60 do
    let publisher = Rng.int_below rng (Population.size pop) in
    let domain = Population.domain_of_node_at_depth pop publisher 1 in
    let key = Id.random rng in
    Store.insert store ~publisher ~key ~value:"local" ~storage_domain:domain
      ~access_domain:domain;
    (* querier from the same domain *)
    let ring = Rings.ring rings domain in
    let querier = Ring.node_at ring (Rng.int_below rng (Ring.size ring)) in
    (match Store.lookup store overlay ~querier ~key with
    | None -> Alcotest.fail "local content not found"
    | Some hit ->
        Array.iter
          (fun node ->
            if
              not
                (Domain_tree.is_ancestor tree ~anc:domain
                   ~desc:pop.Population.leaf_of_node.(node))
            then Alcotest.fail "local query left the domain")
          hit.Store.path.Route.nodes);
    Store.remove store ~key ~storage_domain:domain ~access_domain:domain
  done

let test_access_control () =
  (* A querier outside the access domain must not see the content. *)
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let tree = pop.Population.tree in
  let rng = Rng.create 9 in
  let checked = ref 0 in
  while !checked < 40 do
    let publisher = Rng.int_below rng (Population.size pop) in
    let domain = Population.domain_of_node_at_depth pop publisher 1 in
    let key = Id.random rng in
    Store.insert store ~publisher ~key ~value:"secret" ~storage_domain:domain
      ~access_domain:domain;
    let outsider = Rng.int_below rng (Population.size pop) in
    if not (Domain_tree.is_ancestor tree ~anc:domain ~desc:pop.Population.leaf_of_node.(outsider))
    then begin
      incr checked;
      (match Store.lookup store overlay ~querier:outsider ~key with
      | None -> ()
      | Some hit -> Alcotest.failf "outsider retrieved %S" hit.Store.value)
    end;
    Store.remove store ~key ~storage_domain:domain ~access_domain:domain
  done

let test_pointer_indirection () =
  (* storage domain strictly inside access domain: queries from the
     access domain but outside the storage domain resolve a pointer. *)
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let tree = pop.Population.tree in
  let rng = Rng.create 11 in
  let done_ = ref 0 in
  while !done_ < 30 do
    let publisher = Rng.int_below rng (Population.size pop) in
    let storage_domain = Population.domain_of_node_at_depth pop publisher 2 in
    let access_domain = Population.domain_of_node_at_depth pop publisher 1 in
    if storage_domain <> access_domain then begin
      let key = Id.random rng in
      Store.insert store ~publisher ~key ~value:"shared" ~storage_domain ~access_domain;
      (* querier inside the access domain but outside the storage domain *)
      let ring = Rings.ring rings access_domain in
      let querier = Ring.node_at ring (Rng.int_below rng (Ring.size ring)) in
      let q_in_storage =
        Domain_tree.is_ancestor tree ~anc:storage_domain
          ~desc:pop.Population.leaf_of_node.(querier)
      in
      if not q_in_storage then begin
        incr done_;
        match Store.lookup store overlay ~querier ~key with
        | None -> Alcotest.fail "content not visible inside access domain"
        | Some hit ->
            Alcotest.(check string) "resolved value" "shared" hit.Store.value;
            (match hit.Store.via_pointer with
            | Some holder ->
                Alcotest.(check int) "pointer resolves to the storage node"
                  (Store.storage_node store ~domain:storage_domain ~key)
                  holder
            | None ->
                (* legitimate when the access-domain responsible node is
                   itself on the storage path *)
                ())
      end;
      Store.remove store ~key ~storage_domain ~access_domain
    end
  done

let test_lookup_all_multiple_values () =
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let root = Domain_tree.root pop.Population.tree in
  let rng = Rng.create 13 in
  let key = Id.random rng in
  let p1 = Rng.int_below rng (Population.size pop) in
  let p2 = Rng.int_below rng (Population.size pop) in
  Store.insert store ~publisher:p1 ~key ~value:"a" ~storage_domain:root ~access_domain:root;
  Store.insert store ~publisher:p2 ~key ~value:"b" ~storage_domain:root ~access_domain:root;
  let querier = Rng.int_below rng (Population.size pop) in
  let hits = Store.lookup_all store overlay ~querier ~key in
  let values = List.sort String.compare (List.map (fun h -> h.Store.value) hits) in
  Alcotest.(check (list string)) "both values" [ "a"; "b" ] values

let test_insert_validation () =
  let pop, rings, _ = Lazy.force fixture in
  let store = Store.create rings in
  let tree = pop.Population.tree in
  (* pick a publisher and a domain that does not contain it *)
  let publisher = 0 in
  let leaf = pop.Population.leaf_of_node.(publisher) in
  let foreign =
    let leaves = Domain_tree.leaves tree in
    let other = Array.to_list leaves |> List.find (fun l -> l <> leaf) in
    other
  in
  Alcotest.(check bool) "foreign storage rejected" true
    (try
       Store.insert store ~publisher ~key:1 ~value:"x" ~storage_domain:foreign
         ~access_domain:foreign;
       false
     with Invalid_argument _ -> true);
  (* access domain must contain the storage domain *)
  Alcotest.(check bool) "inverted domains rejected" true
    (try
       Store.insert store ~publisher ~key:1 ~value:"x"
         ~storage_domain:(Domain_tree.root tree) ~access_domain:leaf;
       false
     with Invalid_argument _ -> true)

let test_remove () =
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let root = Domain_tree.root pop.Population.tree in
  let key = 12345 in
  Store.insert store ~publisher:0 ~key ~value:"gone" ~storage_domain:root ~access_domain:root;
  Store.remove store ~key ~storage_domain:root ~access_domain:root;
  Alcotest.(check bool) "removed" true
    (Store.lookup store overlay ~querier:(Population.size pop / 2) ~key = None)

(* --- Cache --------------------------------------------------------- *)

let test_cache_proxy_is_predecessor () =
  let _pop, rings, _ = Lazy.force fixture in
  let cache = Cache.create rings ~capacity:8 in
  let rng = Rng.create 15 in
  for _ = 1 to 50 do
    let key = Id.random rng in
    let domain = Rng.int_below rng (Domain_tree.num_domains (Rings.population rings).Population.tree) in
    let ring = Rings.ring rings domain in
    if Ring.size ring > 0 then
      Alcotest.(check int) "proxy = closest predecessor" (Ring.predecessor_of_id ring key)
        (Cache.proxy cache ~domain ~key)
  done

let test_cache_hit_after_miss () =
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let cache = Cache.create rings ~capacity:16 in
  let root = Domain_tree.root pop.Population.tree in
  let rng = Rng.create 17 in
  let key = Id.random rng in
  Store.insert store ~publisher:0 ~key ~value:"cacheme" ~storage_domain:root ~access_domain:root;
  (* first query misses the cache; pick a querier whose depth-1 domain
     differs from the responsible node's, so there is a level to cache
     at. *)
  let responsible = Store.storage_node store ~domain:root ~key in
  let q1 =
    let rec pick () =
      let q = Rng.int_below rng (Population.size pop) in
      if
        Population.domain_of_node_at_depth pop q 1
        <> Population.domain_of_node_at_depth pop responsible 1
      then q
      else pick ()
    in
    pick ()
  in
  (match Cache.query cache store overlay ~querier:q1 ~key with
  | Some r ->
      Alcotest.(check bool) "first query not cached" false r.Cache.served_from_cache;
      Alcotest.(check string) "value" "cacheme" r.Cache.value
  | None -> Alcotest.fail "first query failed");
  (* ...a second query from the same leaf domain hits a proxy cache at
     (at worst) the same path cost; from the SAME node it must hit. *)
  match Cache.query cache store overlay ~querier:q1 ~key with
  | Some r2 -> Alcotest.(check bool) "repeat query served from cache" true r2.Cache.served_from_cache
  | None -> Alcotest.fail "second query failed"

let test_cache_shortens_paths_under_locality () =
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let cache = Cache.create rings ~capacity:64 in
  let root = Domain_tree.root pop.Population.tree in
  let rng = Rng.create 19 in
  let key = Id.random rng in
  Store.insert store ~publisher:0 ~key ~value:"popular" ~storage_domain:root ~access_domain:root;
  (* prime the caches from one node, then query from many nodes of the
     same depth-1 domain: mean path length must shrink vs uncached. *)
  let domain = Population.domain_of_node_at_depth pop 0 1 in
  let ring = Rings.ring rings domain in
  let q0 = Ring.node_at ring 0 in
  ignore (Cache.query cache store overlay ~querier:q0 ~key);
  let cached_hops = ref 0 and plain_hops = ref 0 and trials = 30 in
  for i = 1 to trials do
    let q = Ring.node_at ring (i mod Ring.size ring) in
    (match Cache.query cache store overlay ~querier:q ~key with
    | Some r -> cached_hops := !cached_hops + Route.hops r.Cache.path
    | None -> Alcotest.fail "cached query failed");
    match Store.lookup store overlay ~querier:q ~key with
    | Some h -> plain_hops := !plain_hops + Route.hops h.Store.path
    | None -> Alcotest.fail "plain query failed"
  done;
  Alcotest.(check bool)
    (Printf.sprintf "cached %d < plain %d" !cached_hops !plain_hops)
    true
    (!cached_hops <= !plain_hops)

let test_cache_eviction_prefers_deep_levels () =
  let _pop, rings, _ = Lazy.force fixture in
  let cache = Cache.create rings ~capacity:2 in
  ignore cache;
  (* The eviction order is exercised indirectly: fill a tiny cache via
     query traffic and check capacity is never exceeded. *)
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let cache = Cache.create rings ~capacity:2 in
  let root = Domain_tree.root pop.Population.tree in
  let rng = Rng.create 21 in
  for i = 0 to 20 do
    let key = Id.random rng in
    Store.insert store ~publisher:(i mod Population.size pop) ~key
      ~value:(string_of_int i) ~storage_domain:root ~access_domain:root;
    ignore (Cache.query cache store overlay ~querier:(Rng.int_below rng (Population.size pop)) ~key)
  done;
  for node = 0 to Population.size pop - 1 do
    if Cache.entries cache ~node > 2 then Alcotest.fail "capacity exceeded"
  done

let test_cache_capacity_zero () =
  let pop, rings, overlay = Lazy.force fixture in
  let store = Store.create rings in
  let cache = Cache.create rings ~capacity:0 in
  let root = Domain_tree.root pop.Population.tree in
  let key = 999 in
  Store.insert store ~publisher:0 ~key ~value:"nocache" ~storage_domain:root ~access_domain:root;
  ignore (Cache.query cache store overlay ~querier:1 ~key);
  match Cache.query cache store overlay ~querier:1 ~key with
  | Some r -> Alcotest.(check bool) "never cached" false r.Cache.served_from_cache
  | None -> Alcotest.fail "query failed"

let suites =
  [
    ( "store",
      [
        Alcotest.test_case "global insert/lookup" `Quick test_insert_and_lookup_global;
        Alcotest.test_case "placement rule" `Quick test_storage_placement_rule;
        Alcotest.test_case "local lookup stays in domain" `Quick test_local_lookup_stays_in_domain;
        Alcotest.test_case "access control" `Quick test_access_control;
        Alcotest.test_case "pointer indirection" `Quick test_pointer_indirection;
        Alcotest.test_case "lookup_all" `Quick test_lookup_all_multiple_values;
        Alcotest.test_case "insert validation" `Quick test_insert_validation;
        Alcotest.test_case "remove" `Quick test_remove;
      ] );
    ( "cache",
      [
        Alcotest.test_case "proxy = predecessor" `Quick test_cache_proxy_is_predecessor;
        Alcotest.test_case "hit after miss" `Quick test_cache_hit_after_miss;
        Alcotest.test_case "locality shortens paths" `Quick test_cache_shortens_paths_under_locality;
        Alcotest.test_case "eviction respects capacity" `Quick test_cache_eviction_prefers_deep_levels;
        Alcotest.test_case "capacity zero" `Quick test_cache_capacity_zero;
      ] );
  ]

(* --- Exactness of access control (property) ------------------------ *)

(* For EVERY (publisher, storage depth, access depth, querier) drawn at
   random: the querier retrieves the content if and only if it lies
   inside the access domain — the paper's §4.1 guarantee, exactly. *)
let prop_access_control_exact =
  QCheck.Test.make ~count:150 ~name:"store: visible iff querier inside access domain"
    QCheck.(int_range 1 1_000_000)
    (fun case_seed ->
      let pop, rings, overlay = Lazy.force fixture in
      let store = Store.create rings in
      let tree = pop.Population.tree in
      let rng = Rng.create case_seed in
      let n = Population.size pop in
      let publisher = Rng.int_below rng n in
      let max_depth = Domain_tree.depth tree pop.Population.leaf_of_node.(publisher) in
      let access_depth = Rng.int_below rng (max_depth + 1) in
      let storage_depth = access_depth + Rng.int_below rng (max_depth - access_depth + 1) in
      let storage_domain = Population.domain_of_node_at_depth pop publisher storage_depth in
      let access_domain = Population.domain_of_node_at_depth pop publisher access_depth in
      let key = Id.random rng in
      Store.insert store ~publisher ~key ~value:"x" ~storage_domain ~access_domain;
      let querier = Rng.int_below rng n in
      let entitled =
        Domain_tree.is_ancestor tree ~anc:access_domain
          ~desc:pop.Population.leaf_of_node.(querier)
      in
      let got = Store.lookup store overlay ~querier ~key <> None in
      Store.remove store ~key ~storage_domain ~access_domain;
      got = entitled)

(* The cache must never leak either: a cached copy obeys the same rule. *)
let prop_cache_respects_access_control =
  QCheck.Test.make ~count:60 ~name:"cache: never serves outside the access domain"
    QCheck.(int_range 1 1_000_000)
    (fun case_seed ->
      let pop, rings, overlay = Lazy.force fixture in
      let store = Store.create rings in
      let cache = Cache.create rings ~capacity:32 in
      let tree = pop.Population.tree in
      let rng = Rng.create (case_seed + 7) in
      let n = Population.size pop in
      let publisher = Rng.int_below rng n in
      let access_domain = Population.domain_of_node_at_depth pop publisher 1 in
      let key = Id.random rng in
      Store.insert store ~publisher ~key ~value:"secret" ~storage_domain:access_domain
        ~access_domain;
      (* warm caches from entitled queriers *)
      let ring = Rings.ring rings access_domain in
      for _ = 1 to 5 do
        let q = Ring.node_at ring (Rng.int_below rng (Ring.size ring)) in
        ignore (Cache.query cache store overlay ~querier:q ~key)
      done;
      (* outsiders must still see nothing *)
      let ok = ref true in
      for _ = 1 to 10 do
        let q = Rng.int_below rng n in
        let entitled =
          Domain_tree.is_ancestor tree ~anc:access_domain
            ~desc:pop.Population.leaf_of_node.(q)
        in
        match Cache.query cache store overlay ~querier:q ~key with
        | Some _ when not entitled -> ok := false
        | Some _ | None -> ()
      done;
      !ok)

let storage_property_suites =
  [
    ( "storage-properties",
      [
        QCheck_alcotest.to_alcotest prop_access_control_exact;
        QCheck_alcotest.to_alcotest prop_cache_respects_access_control;
      ] );
  ]

let suites = suites @ storage_property_suites
