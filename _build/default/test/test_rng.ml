(* Tests for the deterministic randomness substrate. *)

open Canon_rng

let test_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 4)

let test_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  (* Drawing from the copy must not affect the original: the copy's
     first draws and the original's next draws are the same stream. *)
  let x1 = Rng.bits64 b in
  let _x2 = Rng.bits64 b in
  Alcotest.(check int64) "original unaffected by copy draws" x1 (Rng.bits64 a)

let test_split_independence () =
  let a = Rng.create 11 in
  let sub = Rng.split a in
  (* The parent stream after a split must not equal the child stream. *)
  let collisions = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 sub then incr collisions
  done;
  Alcotest.(check int) "no stream collision" 0 !collisions

let test_int_below_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let n = 1 + Rng.int_below rng 1000 in
    let v = Rng.int_below rng n in
    if v < 0 || v >= n then Alcotest.fail "int_below out of bounds"
  done

let test_int_below_uniform () =
  let rng = Rng.create 5 in
  let n = 10 in
  let counts = Array.make n 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let v = Rng.int_below rng n in
    counts.(v) <- counts.(v) + 1
  done;
  let expect = draws / n in
  Array.iteri
    (fun i c ->
      if abs (c - expect) > expect / 10 then
        Alcotest.failf "bucket %d count %d too far from %d" i c expect)
    counts

let test_int_below_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int_below: bound must be positive")
    (fun () -> ignore (Rng.int_below rng 0))

let test_int_in_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.int_in_range rng ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.fail "int_in_range out of bounds"
  done;
  Alcotest.(check int) "degenerate range" 7 (Rng.int_in_range rng ~lo:7 ~hi:7)

let test_float_range () =
  let rng = Rng.create 13 in
  for _ = 1 to 10_000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

let test_float_mean () =
  let rng = Rng.create 17 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng
  done;
  let mean = !sum /. Float.of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_shuffle_is_permutation () =
  let rng = Rng.create 19 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle_in_place rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 Fun.id) sorted

let test_shuffle_moves_elements () =
  let rng = Rng.create 23 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle_in_place rng a;
  let fixed = ref 0 in
  Array.iteri (fun i v -> if i = v then incr fixed) a;
  (* Expected number of fixed points of a random permutation is 1. *)
  Alcotest.(check bool) "not identity" true (!fixed < 20)

let test_sample_without_replacement () =
  let rng = Rng.create 29 in
  for _ = 1 to 200 do
    let n = 1 + Rng.int_below rng 50 in
    let k = Rng.int_below rng (n + 1) in
    let s = Rng.sample_without_replacement rng k n in
    Alcotest.(check int) "size" k (Array.length s);
    let seen = Hashtbl.create 16 in
    Array.iter
      (fun v ->
        if v < 0 || v >= n then Alcotest.fail "sample out of range";
        if Hashtbl.mem seen v then Alcotest.fail "duplicate in sample";
        Hashtbl.add seen v ())
      s
  done

let test_sample_full () =
  let rng = Rng.create 31 in
  let s = Rng.sample_without_replacement rng 10 10 in
  let sorted = Array.copy s in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "full sample is a permutation" (Array.init 10 Fun.id) sorted

let test_exponential_positive_and_mean () =
  let rng = Rng.create 37 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.exponential rng ~mean:2.0 in
    if v < 0.0 then Alcotest.fail "exponential must be non-negative";
    sum := !sum +. v
  done;
  let mean = !sum /. Float.of_int n in
  Alcotest.(check bool) "mean near 2.0" true (Float.abs (mean -. 2.0) < 0.1)

let test_pick () =
  let rng = Rng.create 41 in
  let a = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    let v = Rng.pick rng a in
    Alcotest.(check bool) "pick member" true (Array.exists (Int.equal v) a)
  done

let test_bool_balance () =
  let rng = Rng.create 43 in
  let trues = ref 0 in
  for _ = 1 to 10_000 do
    if Rng.bool rng then incr trues
  done;
  Alcotest.(check bool) "fair coin" true (abs (!trues - 5000) < 300)

let suites =
  [
    ( "rng",
      [
        Alcotest.test_case "determinism" `Quick test_determinism;
        Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
        Alcotest.test_case "copy independence" `Quick test_copy_independent;
        Alcotest.test_case "split independence" `Quick test_split_independence;
        Alcotest.test_case "int_below bounds" `Quick test_int_below_bounds;
        Alcotest.test_case "int_below uniform" `Quick test_int_below_uniform;
        Alcotest.test_case "int_below invalid" `Quick test_int_below_invalid;
        Alcotest.test_case "int_in_range" `Quick test_int_in_range;
        Alcotest.test_case "float range" `Quick test_float_range;
        Alcotest.test_case "float mean" `Quick test_float_mean;
        Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
        Alcotest.test_case "shuffle moves elements" `Quick test_shuffle_moves_elements;
        Alcotest.test_case "sample w/o replacement" `Quick test_sample_without_replacement;
        Alcotest.test_case "sample full" `Quick test_sample_full;
        Alcotest.test_case "exponential" `Quick test_exponential_positive_and_mean;
        Alcotest.test_case "pick" `Quick test_pick;
        Alcotest.test_case "bool balance" `Quick test_bool_balance;
      ] );
  ]
