(* Tests for the SkipNet comparison system (§6). *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng

let fixture =
  lazy
    (let rng = Rng.create 90 in
     let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:5 ~levels:3) in
     let pop = Population.create rng ~tree ~policy:(Placement.Zipfian 1.25) ~n:800 in
     (pop, Skipnet.build pop))

let test_rank_bijection () =
  let _pop, sn = Lazy.force fixture in
  for node = 0 to Skipnet.size sn - 1 do
    Alcotest.(check int) "roundtrip" node (Skipnet.node_of_rank sn (Skipnet.name_rank sn node))
  done

let test_name_order_respects_hierarchy () =
  (* Nodes of the same leaf domain occupy contiguous ranks. *)
  let pop, sn = Lazy.force fixture in
  let n = Population.size pop in
  for rank = 1 to n - 1 do
    let a = Skipnet.node_of_rank sn (rank - 1) and b = Skipnet.node_of_rank sn rank in
    if pop.Population.leaf_of_node.(a) > pop.Population.leaf_of_node.(b) then
      Alcotest.fail "name order does not follow hierarchy order"
  done

let test_name_routing_reaches () =
  let pop, sn = Lazy.force fixture in
  let rng = Rng.create 91 in
  let n = Population.size pop in
  for _ = 1 to 300 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let route = Skipnet.route_by_name sn ~src ~dst in
    Alcotest.(check int) "reaches" dst (Route.destination route);
    Alcotest.(check int) "starts at src" src (Route.source route)
  done

let test_name_routing_is_monotone_and_local () =
  (* Every intermediate rank lies between the endpoints' ranks, hence
     intra-domain routes never leave the domain. *)
  let pop, sn = Lazy.force fixture in
  let rng = Rng.create 92 in
  let n = Population.size pop in
  for _ = 1 to 300 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let route = Skipnet.route_by_name sn ~src ~dst in
    let lo = min (Skipnet.name_rank sn src) (Skipnet.name_rank sn dst) in
    let hi = max (Skipnet.name_rank sn src) (Skipnet.name_rank sn dst) in
    Array.iter
      (fun node ->
        let r = Skipnet.name_rank sn node in
        if r < lo || r > hi then Alcotest.fail "name route left the rank interval")
      route.Route.nodes
  done

let test_name_routing_hops_logarithmic () =
  let pop, sn = Lazy.force fixture in
  let rng = Rng.create 93 in
  let n = Population.size pop in
  let total = ref 0 in
  for _ = 1 to 500 do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    total := !total + Route.hops (Skipnet.route_by_name sn ~src ~dst)
  done;
  let mean = Float.of_int !total /. 500.0 in
  (* ~log2 800 ~ 9.6; generous bound *)
  if mean > 20.0 then Alcotest.failf "skipnet name hops %.1f too high" mean

let test_numeric_routing_terminates_at_best_match_locally () =
  (* The numeric route must end at a node matching the key on at least
     as many bits as every node it passed through. *)
  let pop, sn = Lazy.force fixture in
  let ids = pop.Population.ids in
  let rng = Rng.create 94 in
  for _ = 1 to 200 do
    let src = Rng.int_below rng (Population.size pop) in
    let key = Id.random rng in
    let route = Skipnet.route_by_numeric sn ~src ~key in
    let final = Route.destination route in
    let final_match = Id.common_prefix_bits ids.(final) key in
    Array.iter
      (fun node ->
        if Id.common_prefix_bits ids.(node) key > final_match then
          Alcotest.fail "numeric route passed a better match than its destination")
      route.Route.nodes
  done

let test_degree_logarithmic () =
  let _pop, sn = Lazy.force fixture in
  let deg = Skipnet.mean_degree sn in
  (* ~2 pointers per level over ~log2 n levels, heavily shared. *)
  if deg < 5.0 || deg > 25.0 then Alcotest.failf "skipnet degree %.1f implausible" deg

let test_single_node () =
  let rng = Rng.create 95 in
  let tree = Domain_tree.of_spec Domain_tree.Leaf in
  let pop = Population.create rng ~tree ~policy:Placement.Uniform ~n:1 in
  let sn = Skipnet.build pop in
  let r = Skipnet.route_by_name sn ~src:0 ~dst:0 in
  Alcotest.(check int) "self route" 0 (Route.hops r);
  let rn = Skipnet.route_by_numeric sn ~src:0 ~key:123 in
  Alcotest.(check int) "numeric self" 0 (Route.destination rn)

let suites =
  [
    ( "skipnet",
      [
        Alcotest.test_case "rank bijection" `Quick test_rank_bijection;
        Alcotest.test_case "name order = hierarchy order" `Quick
          test_name_order_respects_hierarchy;
        Alcotest.test_case "name routing reaches" `Quick test_name_routing_reaches;
        Alcotest.test_case "name routing monotone/local" `Quick
          test_name_routing_is_monotone_and_local;
        Alcotest.test_case "name hops logarithmic" `Quick test_name_routing_hops_logarithmic;
        Alcotest.test_case "numeric routing sane" `Quick
          test_numeric_routing_terminates_at_best_match_locally;
        Alcotest.test_case "degree" `Quick test_degree_logarithmic;
        Alcotest.test_case "single node" `Quick test_single_node;
      ] );
  ]
