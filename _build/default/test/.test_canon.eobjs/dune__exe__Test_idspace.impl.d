test/test_idspace.ml: Alcotest Canon_idspace Canon_rng Id QCheck QCheck_alcotest
