test/test_skipnet.ml: Alcotest Array Canon_core Canon_hierarchy Canon_idspace Canon_overlay Canon_rng Domain_tree Float Id Lazy Placement Population Route Skipnet
