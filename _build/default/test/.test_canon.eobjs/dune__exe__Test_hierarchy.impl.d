test/test_hierarchy.ml: Alcotest Array Canon_hierarchy Canon_rng Domain_tree Hname Int Placement QCheck QCheck_alcotest
