test/test_balance.ml: Alcotest Array Balance Canon_balance Canon_hierarchy Canon_idspace Canon_overlay Canon_rng Domain_tree Float Hashtbl Id List Placement Printf QCheck QCheck_alcotest
