test/test_rng.ml: Alcotest Array Canon_rng Float Fun Hashtbl Int Rng
