test/test_stats.ml: Alcotest Array Canon_rng Canon_stats Float Gen Histogram List QCheck QCheck_alcotest Stats String Table Zipf
