test/test_canon.mli:
