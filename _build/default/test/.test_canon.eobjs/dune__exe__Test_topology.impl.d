test/test_topology.ml: Alcotest Array Canon_hierarchy Canon_rng Canon_topology Float Graph Latency Lazy QCheck QCheck_alcotest Transit_stub
