(* Tests for the circular identifier space: exact wrap-around arithmetic
   is the foundation every DHT construction rests on. *)

open Canon_idspace

let id_gen = QCheck.map (fun v -> Id.of_int (abs v land (Id.space - 1))) QCheck.int

let test_constants () =
  Alcotest.(check int) "bits" 32 Id.bits;
  Alcotest.(check int) "space" (1 lsl 32) Id.space;
  Alcotest.(check int) "zero" 0 (Id.to_int Id.zero)

let test_of_int_wraps () =
  Alcotest.(check int) "wraps modulo space" 5 (Id.to_int (Id.of_int (Id.space + 5)));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Id.of_int: negative")
    (fun () -> ignore (Id.of_int (-1)))

let test_add_wraps () =
  let near_top = Id.of_int (Id.space - 1) in
  Alcotest.(check int) "wrap forward" 0 (Id.to_int (Id.add near_top 1));
  Alcotest.(check int) "wrap backward" (Id.space - 1) (Id.to_int (Id.add Id.zero (-1)))

let test_distance_examples () =
  Alcotest.(check int) "simple" 5 (Id.distance (Id.of_int 10) (Id.of_int 15));
  Alcotest.(check int) "wrap" (Id.space - 5) (Id.distance (Id.of_int 15) (Id.of_int 10));
  Alcotest.(check int) "self" 0 (Id.distance (Id.of_int 7) (Id.of_int 7))

let test_interval_examples () =
  let i = Id.of_int in
  Alcotest.(check bool) "inside" true (Id.in_clockwise_interval (i 5) ~lo:(i 0) ~hi:(i 10));
  Alcotest.(check bool) "hi inclusive" true (Id.in_clockwise_interval (i 10) ~lo:(i 0) ~hi:(i 10));
  Alcotest.(check bool) "lo exclusive" false (Id.in_clockwise_interval (i 0) ~lo:(i 0) ~hi:(i 10));
  Alcotest.(check bool) "outside" false (Id.in_clockwise_interval (i 11) ~lo:(i 0) ~hi:(i 10));
  Alcotest.(check bool) "wrapping interval" true
    (Id.in_clockwise_interval (i 2) ~lo:(i (Id.space - 5)) ~hi:(i 10));
  Alcotest.(check bool) "full ring" true (Id.in_clockwise_interval (i 123) ~lo:(i 7) ~hi:(i 7))

let test_log2_floor () =
  Alcotest.(check int) "1" 0 (Id.log2_floor 1);
  Alcotest.(check int) "2" 1 (Id.log2_floor 2);
  Alcotest.(check int) "3" 1 (Id.log2_floor 3);
  Alcotest.(check int) "4" 2 (Id.log2_floor 4);
  Alcotest.(check int) "2^31" 31 (Id.log2_floor (1 lsl 31));
  Alcotest.check_raises "zero" (Invalid_argument "Id.log2_floor: non-positive")
    (fun () -> ignore (Id.log2_floor 0))

let test_prefix () =
  let id = Id.of_int 0xDEADBEEF in
  Alcotest.(check int) "0 bits" 0 (Id.prefix id 0);
  Alcotest.(check int) "8 bits" 0xDE (Id.prefix id 8);
  Alcotest.(check int) "all bits" 0xDEADBEEF (Id.prefix id 32)

let test_common_prefix_bits () =
  Alcotest.(check int) "equal" 32 (Id.common_prefix_bits (Id.of_int 5) (Id.of_int 5));
  Alcotest.(check int) "top bit differs" 0
    (Id.common_prefix_bits (Id.of_int 0) (Id.of_int (1 lsl 31)));
  Alcotest.(check int) "bottom bit differs" 31
    (Id.common_prefix_bits (Id.of_int 0) (Id.of_int 1))

let test_to_string () =
  Alcotest.(check string) "hex" "deadbeef" (Id.to_string (Id.of_int 0xDEADBEEF));
  Alcotest.(check string) "padded" "00000001" (Id.to_string (Id.of_int 1))

(* Property: distance a b + distance b a = space, unless a = b. *)
let prop_distance_antisymmetric =
  QCheck.Test.make ~count:2000 ~name:"dist a b + dist b a = space (a <> b)"
    (QCheck.pair id_gen id_gen) (fun (a, b) ->
      if Id.equal a b then Id.distance a b = 0
      else Id.distance a b + Id.distance b a = Id.space)

(* Property: add a (distance a b) = b. *)
let prop_add_distance =
  QCheck.Test.make ~count:2000 ~name:"add a (dist a b) = b" (QCheck.pair id_gen id_gen)
    (fun (a, b) -> Id.equal (Id.add a (Id.distance a b)) b)

(* Property: clockwise triangle equality when c is "between" a and b. *)
let prop_distance_split =
  QCheck.Test.make ~count:2000 ~name:"dist a c + dist c b = dist a b when c in (a,b]"
    (QCheck.triple id_gen id_gen id_gen) (fun (a, b, c) ->
      QCheck.assume (Id.in_clockwise_interval c ~lo:a ~hi:b);
      QCheck.assume (not (Id.equal a b));
      Id.distance a c + Id.distance c b = Id.distance a b)

(* Property: xor distance is symmetric and a metric identity. *)
let prop_xor_metric =
  QCheck.Test.make ~count:2000 ~name:"xor metric identity+symmetry"
    (QCheck.pair id_gen id_gen) (fun (a, b) ->
      Id.xor_distance a b = Id.xor_distance b a
      && (Id.xor_distance a b = 0) = Id.equal a b)

(* Property: xor satisfies the triangle inequality (in fact the stronger
   relaxation d(a,c) <= d(a,b) lxor d(b,c) <= d(a,b)+d(b,c)). *)
let prop_xor_triangle =
  QCheck.Test.make ~count:2000 ~name:"xor triangle inequality"
    (QCheck.triple id_gen id_gen id_gen) (fun (a, b, c) ->
      Id.xor_distance a c <= Id.xor_distance a b + Id.xor_distance b c)

(* Property: log2_floor is the exponent of the highest bit. *)
let prop_log2 =
  QCheck.Test.make ~count:2000 ~name:"2^log2_floor d <= d < 2^(log2_floor d + 1)"
    QCheck.(map (fun v -> 1 + (abs v land (Id.space - 1))) int)
    (fun d ->
      let k = Id.log2_floor d in
      1 lsl k <= d && d < 1 lsl (k + 1))

(* Property: common_prefix_bits agrees with prefix equality. *)
let prop_common_prefix =
  QCheck.Test.make ~count:2000 ~name:"common_prefix_bits consistent with prefix"
    (QCheck.pair id_gen id_gen) (fun (a, b) ->
      let k = Id.common_prefix_bits a b in
      Id.prefix a k = Id.prefix b k
      && (k = Id.bits || Id.prefix a (k + 1) <> Id.prefix b (k + 1)))

let test_random_in_space () =
  let rng = Canon_rng.Rng.create 99 in
  for _ = 1 to 10_000 do
    let id = Id.random rng in
    if Id.to_int id < 0 || Id.to_int id >= Id.space then Alcotest.fail "random out of space"
  done

let suites =
  [
    ( "idspace",
      [
        Alcotest.test_case "constants" `Quick test_constants;
        Alcotest.test_case "of_int wraps" `Quick test_of_int_wraps;
        Alcotest.test_case "add wraps" `Quick test_add_wraps;
        Alcotest.test_case "distance examples" `Quick test_distance_examples;
        Alcotest.test_case "interval examples" `Quick test_interval_examples;
        Alcotest.test_case "log2_floor" `Quick test_log2_floor;
        Alcotest.test_case "prefix" `Quick test_prefix;
        Alcotest.test_case "common prefix bits" `Quick test_common_prefix_bits;
        Alcotest.test_case "to_string" `Quick test_to_string;
        Alcotest.test_case "random in space" `Quick test_random_in_space;
        QCheck_alcotest.to_alcotest prop_distance_antisymmetric;
        QCheck_alcotest.to_alcotest prop_add_distance;
        QCheck_alcotest.to_alcotest prop_distance_split;
        QCheck_alcotest.to_alcotest prop_xor_metric;
        QCheck_alcotest.to_alcotest prop_xor_triangle;
        QCheck_alcotest.to_alcotest prop_log2;
        QCheck_alcotest.to_alcotest prop_common_prefix;
      ] );
  ]



