(* Tests for domain trees, node placement and hierarchical names. *)

open Canon_hierarchy

let tree_23 =
  (* root with two children; first child has 3 leaves, second has 2 *)
  Domain_tree.of_spec
    (Domain_tree.Node
       [
         Domain_tree.Node [ Domain_tree.Leaf; Domain_tree.Leaf; Domain_tree.Leaf ];
         Domain_tree.Node [ Domain_tree.Leaf; Domain_tree.Leaf ];
       ])

let test_counts () =
  Alcotest.(check int) "domains" 8 (Domain_tree.num_domains tree_23);
  Alcotest.(check int) "leaves" 5 (Domain_tree.num_leaves tree_23);
  Alcotest.(check int) "height" 2 (Domain_tree.height tree_23);
  Alcotest.(check int) "root" 0 (Domain_tree.root tree_23)

let test_structure () =
  let t = tree_23 in
  (* preorder numbering: 0 root; 1 first internal; 2,3,4 its leaves;
     5 second internal; 6,7 its leaves *)
  Alcotest.(check (array int)) "root children" [| 1; 5 |] (Domain_tree.children t 0);
  Alcotest.(check (array int)) "first child leaves" [| 2; 3; 4 |] (Domain_tree.children t 1);
  Alcotest.(check int) "parent of 3" 1 (Domain_tree.parent t 3);
  Alcotest.(check int) "parent of 6" 5 (Domain_tree.parent t 6);
  Alcotest.(check bool) "leaf" true (Domain_tree.is_leaf t 7);
  Alcotest.(check bool) "internal" false (Domain_tree.is_leaf t 5);
  Alcotest.(check (array int)) "all leaves" [| 2; 3; 4; 6; 7 |] (Domain_tree.leaves t);
  Alcotest.(check int) "depth leaf" 2 (Domain_tree.depth t 7);
  Alcotest.check_raises "parent of root" (Invalid_argument "Domain_tree.parent: root has no parent")
    (fun () -> ignore (Domain_tree.parent t 0))

let test_lca () =
  let t = tree_23 in
  Alcotest.(check int) "siblings" 1 (Domain_tree.lca t 2 4);
  Alcotest.(check int) "across" 0 (Domain_tree.lca t 2 6);
  Alcotest.(check int) "self" 3 (Domain_tree.lca t 3 3);
  Alcotest.(check int) "ancestor-descendant" 1 (Domain_tree.lca t 1 4)

let test_ancestors () =
  let t = tree_23 in
  Alcotest.(check int) "at depth 0" 0 (Domain_tree.ancestor_at_depth t 7 0);
  Alcotest.(check int) "at depth 1" 5 (Domain_tree.ancestor_at_depth t 7 1);
  Alcotest.(check int) "at own depth" 7 (Domain_tree.ancestor_at_depth t 7 2);
  Alcotest.(check bool) "ancestor" true (Domain_tree.is_ancestor t ~anc:1 ~desc:4);
  Alcotest.(check bool) "reflexive" true (Domain_tree.is_ancestor t ~anc:4 ~desc:4);
  Alcotest.(check bool) "not ancestor" false (Domain_tree.is_ancestor t ~anc:5 ~desc:4)

let test_subtree_leaves () =
  let t = tree_23 in
  Alcotest.(check (array int)) "subtree 1" [| 2; 3; 4 |] (Domain_tree.subtree_leaves t 1);
  Alcotest.(check (array int)) "subtree of leaf" [| 6 |] (Domain_tree.subtree_leaves t 6);
  Alcotest.(check (array int)) "root subtree" (Domain_tree.leaves t) (Domain_tree.subtree_leaves t 0)

let test_uniform_spec () =
  let t = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:3 ~levels:3) in
  (* 1 + 3 + 9 = 13 domains, 9 leaves, height 2 *)
  Alcotest.(check int) "domains" 13 (Domain_tree.num_domains t);
  Alcotest.(check int) "leaves" 9 (Domain_tree.num_leaves t);
  Alcotest.(check int) "height" 2 (Domain_tree.height t);
  let flat = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:10 ~levels:1) in
  Alcotest.(check int) "flat is single leaf domain" 1 (Domain_tree.num_domains flat);
  Alcotest.(check bool) "flat root is leaf" true (Domain_tree.is_leaf flat 0)

let test_invalid_specs () =
  Alcotest.check_raises "empty node" (Invalid_argument "Domain_tree.of_spec: Node with no children")
    (fun () -> ignore (Domain_tree.of_spec (Domain_tree.Node [])));
  Alcotest.check_raises "fanout" (Invalid_argument "Domain_tree.uniform_spec: fanout < 1")
    (fun () -> ignore (Domain_tree.uniform_spec ~fanout:0 ~levels:2));
  Alcotest.check_raises "levels" (Invalid_argument "Domain_tree.uniform_spec: levels < 1")
    (fun () -> ignore (Domain_tree.uniform_spec ~fanout:2 ~levels:0))

let test_placement_uniform () =
  let rng = Canon_rng.Rng.create 7 in
  let t = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:4 ~levels:2) in
  let n = 8000 in
  let assignment = Placement.assign rng t Placement.Uniform ~n in
  Alcotest.(check int) "size" n (Array.length assignment);
  let leaves = Domain_tree.leaves t in
  Array.iter
    (fun leaf ->
      if not (Array.exists (Int.equal leaf) leaves) then Alcotest.fail "not a leaf")
    assignment;
  let pop = Placement.leaf_population t assignment in
  Alcotest.(check int) "root population" n pop.(Domain_tree.root t);
  Array.iter
    (fun leaf ->
      let c = pop.(leaf) in
      if abs (c - (n / 4)) > n / 8 then Alcotest.failf "leaf %d population %d too skewed" leaf c)
    leaves

let test_placement_zipf () =
  let rng = Canon_rng.Rng.create 11 in
  let t = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:10 ~levels:2) in
  let n = 10_000 in
  let assignment = Placement.assign rng t (Placement.Zipfian 1.25) ~n in
  let pop = Placement.leaf_population t assignment in
  let leaf_counts = Array.map (fun l -> pop.(l)) (Domain_tree.leaves t) in
  Alcotest.(check int) "total" n (Array.fold_left ( + ) 0 leaf_counts);
  let sorted = Array.copy leaf_counts in
  Array.sort (fun a b -> Int.compare b a) sorted;
  (* Zipf(1.25) over 10 branches: largest branch ~ 33%, clearly bigger
     than the uniform 10%. *)
  Alcotest.(check bool) "skewed" true (sorted.(0) > n / 5);
  Alcotest.(check bool) "smallest non-trivial" true (sorted.(9) < n / 10)

let test_placement_zero_nodes () =
  let rng = Canon_rng.Rng.create 1 in
  let t = tree_23 in
  Alcotest.(check int) "empty uniform" 0
    (Array.length (Placement.assign rng t Placement.Uniform ~n:0));
  Alcotest.(check int) "empty zipf" 0
    (Array.length (Placement.assign rng t (Placement.Zipfian 1.25) ~n:0))

let test_placement_zipf_deeper () =
  (* Zipf apportionment must recurse: population of an internal domain
     equals the sum over its children at every level. *)
  let rng = Canon_rng.Rng.create 13 in
  let t = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:3 ~levels:3) in
  let assignment = Placement.assign rng t (Placement.Zipfian 1.25) ~n:5000 in
  let pop = Placement.leaf_population t assignment in
  Domain_tree.iter_domains t (fun d ->
      if not (Domain_tree.is_leaf t d) then begin
        let kids = Domain_tree.children t d in
        let sum = Array.fold_left (fun acc k -> acc + pop.(k)) 0 kids in
        Alcotest.(check int) "internal = sum of children" pop.(d) sum
      end)

let test_hname_parsing () =
  Alcotest.(check (list string)) "parse" [ "stanford"; "cs"; "db" ]
    (Hname.of_string "db.cs.stanford");
  Alcotest.(check string) "print" "db.cs.stanford"
    (Hname.to_string [ "stanford"; "cs"; "db" ]);
  Alcotest.(check (list string)) "root" [] (Hname.of_string "");
  Alcotest.(check string) "root print" "" (Hname.to_string [])

let test_hname_parent_prefix () =
  Alcotest.(check (option (list string))) "parent" (Some [ "stanford" ])
    (Hname.parent [ "stanford"; "cs" ]);
  Alcotest.(check (option (list string))) "root parent" None (Hname.parent []);
  Alcotest.(check bool) "prefix" true
    (Hname.is_prefix [ "stanford" ] [ "stanford"; "cs" ]);
  Alcotest.(check bool) "reflexive" true (Hname.is_prefix [ "a" ] [ "a" ]);
  Alcotest.(check bool) "not prefix" false
    (Hname.is_prefix [ "stanford"; "cs" ] [ "stanford"; "ee" ])

let test_namespace () =
  let ns =
    Hname.namespace_of_leaves
      [
        Hname.of_string "db.cs.stanford";
        Hname.of_string "ai.cs.stanford";
        Hname.of_string "ee.stanford";
        Hname.of_string "cs.washington";
      ]
  in
  let t = Hname.tree ns in
  Alcotest.(check int) "leaves" 4 (Domain_tree.num_leaves t);
  let db = Hname.domain_of_name ns (Hname.of_string "db.cs.stanford") in
  let ai = Hname.domain_of_name ns (Hname.of_string "ai.cs.stanford") in
  let ee = Hname.domain_of_name ns (Hname.of_string "ee.stanford") in
  let cs = Hname.domain_of_name ns (Hname.of_string "cs.stanford") in
  Alcotest.(check int) "siblings lca" cs (Domain_tree.lca t db ai);
  Alcotest.(check int) "cousins lca"
    (Hname.domain_of_name ns (Hname.of_string "stanford"))
    (Domain_tree.lca t db ee);
  Alcotest.(check string) "roundtrip name" "db.cs.stanford"
    (Hname.to_string (Hname.name_of_domain ns db));
  Alcotest.(check int) "root domain" 0 (Hname.domain_of_name ns [])

let test_namespace_invalid () =
  Alcotest.(check bool) "prefix leaf rejected" true
    (try
       ignore
         (Hname.namespace_of_leaves [ Hname.of_string "cs.stanford"; Hname.of_string "db.cs.stanford" ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty rejected" true
    (try
       ignore (Hname.namespace_of_leaves []);
       false
     with Invalid_argument _ -> true)

let prop_lca_commutes =
  let t = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:3 ~levels:4) in
  let n = Domain_tree.num_domains t in
  QCheck.Test.make ~count:1000 ~name:"lca commutes and is ancestor of both"
    QCheck.(pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    (fun (a, b) ->
      let l = Domain_tree.lca t a b in
      l = Domain_tree.lca t b a
      && Domain_tree.is_ancestor t ~anc:l ~desc:a
      && Domain_tree.is_ancestor t ~anc:l ~desc:b)

let prop_lca_deepest =
  let t = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:2 ~levels:5) in
  let n = Domain_tree.num_domains t in
  QCheck.Test.make ~count:1000 ~name:"no deeper common ancestor than lca"
    QCheck.(pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    (fun (a, b) ->
      let l = Domain_tree.lca t a b in
      (* every common ancestor is an ancestor of the lca *)
      let rec check d =
        let ok =
          if Domain_tree.is_ancestor t ~anc:d ~desc:b then Domain_tree.is_ancestor t ~anc:d ~desc:l
          else true
        in
        if d = 0 then ok else ok && check (Domain_tree.parent t d)
      in
      check a)

let suites =
  [
    ( "hierarchy",
      [
        Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "structure" `Quick test_structure;
        Alcotest.test_case "lca" `Quick test_lca;
        Alcotest.test_case "ancestors" `Quick test_ancestors;
        Alcotest.test_case "subtree leaves" `Quick test_subtree_leaves;
        Alcotest.test_case "uniform spec" `Quick test_uniform_spec;
        Alcotest.test_case "invalid specs" `Quick test_invalid_specs;
        Alcotest.test_case "placement uniform" `Quick test_placement_uniform;
        Alcotest.test_case "placement zipf" `Quick test_placement_zipf;
        Alcotest.test_case "placement zero nodes" `Quick test_placement_zero_nodes;
        Alcotest.test_case "placement zipf deeper" `Quick test_placement_zipf_deeper;
        Alcotest.test_case "hname parsing" `Quick test_hname_parsing;
        Alcotest.test_case "hname parent/prefix" `Quick test_hname_parent_prefix;
        Alcotest.test_case "namespace" `Quick test_namespace;
        Alcotest.test_case "namespace invalid" `Quick test_namespace_invalid;
        QCheck_alcotest.to_alcotest prop_lca_commutes;
        QCheck_alcotest.to_alcotest prop_lca_deepest;
      ] );
  ]
