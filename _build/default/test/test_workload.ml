(* Tests for multicast trees and workload generators. *)

open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_workload
module Rng = Canon_rng.Rng
module Zipf = Canon_stats.Zipf

let test_multicast_union () =
  let r1 = Route.{ nodes = [| 1; 2; 3 |] } in
  let r2 = Route.{ nodes = [| 4; 2; 3 |] } in
  let t = Multicast.of_routes [ r1; r2 ] in
  (* edges: 1->2, 2->3 (shared), 4->2 *)
  Alcotest.(check int) "edges deduplicated" 3 (Multicast.num_edges t);
  Alcotest.(check int) "nodes" 4 (Multicast.num_nodes t)

let test_multicast_inter_domain () =
  let r1 = Route.{ nodes = [| 0; 1; 2 |] } in
  let t = Multicast.of_routes [ r1 ] in
  let dom = function 0 -> 0 | 1 -> 0 | _ -> 1 in
  Alcotest.(check int) "one crossing" 1 (Multicast.inter_domain_edges t ~domain_of_node:dom);
  Alcotest.(check (float 1e-9)) "latency sum" 2.0
    (Multicast.total_latency t ~node_latency:(fun _ _ -> 1.0))

let test_multicast_convergence_advantage () =
  (* On a real Crescendo network, the multicast tree of many sources
     crosses depth-1 domains far fewer times than the sum of individual
     paths would. *)
  let rng = Rng.create 30 in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:5 ~levels:3) in
  let pop = Population.create rng ~tree ~policy:(Placement.Zipfian 1.25) ~n:1000 in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let dst = 17 in
  let routes =
    List.init 200 (fun _ ->
        let src = Rng.int_below rng 1000 in
        Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst))
  in
  let t = Multicast.of_routes routes in
  let dom node = Population.domain_of_node_at_depth pop node 1 in
  let tree_crossings = Multicast.inter_domain_edges t ~domain_of_node:dom in
  let path_crossings =
    List.fold_left (fun acc r -> acc + Route.domain_crossings r ~domain_of_node:dom) 0 routes
  in
  Alcotest.(check bool)
    (Printf.sprintf "tree %d << paths %d" tree_crossings path_crossings)
    true
    (tree_crossings * 4 < path_crossings)

let test_keyspace () =
  let rng = Rng.create 31 in
  let ks = Workload.keyspace rng ~keys:100 in
  Alcotest.(check int) "size" 100 (Workload.num_keys ks);
  let seen = Hashtbl.create 128 in
  for i = 0 to 99 do
    let k = Workload.key ks i in
    if Hashtbl.mem seen k then Alcotest.fail "duplicate key";
    Hashtbl.add seen k ()
  done

let test_zipf_key_popularity () =
  let rng = Rng.create 32 in
  let ks = Workload.keyspace rng ~keys:50 in
  let sampler = Zipf.sampler ~n:50 ~alpha:1.0 in
  let counts = Hashtbl.create 64 in
  for _ = 1 to 20_000 do
    let k = Workload.zipf_key ks sampler rng in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let top = Option.value ~default:0 (Hashtbl.find_opt counts (Workload.key ks 0)) in
  let mid = Option.value ~default:0 (Hashtbl.find_opt counts (Workload.key ks 25)) in
  Alcotest.(check bool) "rank 0 much more popular than rank 25" true (top > 5 * max 1 mid)

let test_local_queries_shape () =
  let rng = Rng.create 33 in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:4 ~levels:2) in
  let pop = Population.create (Rng.split rng) ~tree ~policy:Placement.Uniform ~n:200 in
  let ks = Workload.keyspace (Rng.split rng) ~keys:50 in
  let sampler = Zipf.sampler ~n:50 ~alpha:1.0 in
  let queries = Workload.local_queries rng pop ks ~sampler ~locality:0.8 ~count:500 in
  Alcotest.(check int) "count" 500 (List.length queries);
  List.iter
    (fun q ->
      if q.Workload.querier < 0 || q.Workload.querier >= 200 then
        Alcotest.fail "querier out of range")
    queries;
  (* High locality means consecutive same-domain queries repeat keys:
     the number of distinct keys used must be far below the count. *)
  let distinct = Hashtbl.create 64 in
  List.iter (fun q -> Hashtbl.replace distinct q.Workload.key ()) queries;
  Alcotest.(check bool) "keys repeat under locality" true (Hashtbl.length distinct < 300)

let test_local_queries_validation () =
  let rng = Rng.create 34 in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:2 ~levels:2) in
  let pop = Population.create (Rng.split rng) ~tree ~policy:Placement.Uniform ~n:10 in
  let ks = Workload.keyspace (Rng.split rng) ~keys:5 in
  let sampler = Zipf.sampler ~n:5 ~alpha:1.0 in
  Alcotest.(check bool) "bad locality rejected" true
    (try
       ignore (Workload.local_queries rng pop ks ~sampler ~locality:1.5 ~count:1);
       false
     with Invalid_argument _ -> true)

let suites =
  [
    ( "workload",
      [
        Alcotest.test_case "multicast union" `Quick test_multicast_union;
        Alcotest.test_case "multicast inter-domain" `Quick test_multicast_inter_domain;
        Alcotest.test_case "multicast convergence advantage" `Quick
          test_multicast_convergence_advantage;
        Alcotest.test_case "keyspace" `Quick test_keyspace;
        Alcotest.test_case "zipf popularity" `Quick test_zipf_key_popularity;
        Alcotest.test_case "local queries" `Quick test_local_queries_shape;
        Alcotest.test_case "local queries validation" `Quick test_local_queries_validation;
      ] );
  ]
