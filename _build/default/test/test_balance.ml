(* Tests for partition-balanced identifier selection (§4.3). *)

open Canon_idspace
open Canon_hierarchy
open Canon_balance
module Rng = Canon_rng.Rng

let leaf_assignment ~n seed =
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:5 ~levels:3) in
  let rng = Rng.create seed in
  (tree, Placement.assign rng tree (Placement.Zipfian 1.25) ~n)

let test_partition_sizes_sum () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    let n = 2 + Rng.int_below rng 100 in
    let ids = Canon_overlay.Population.unique_ids rng n in
    let sizes = Balance.partition_sizes ids in
    Alcotest.(check int) "sum = space" Id.space (Array.fold_left ( + ) 0 sizes)
  done

let test_partition_sizes_edge_cases () =
  Alcotest.(check (array int)) "single node owns everything" [| Id.space |]
    (Balance.partition_sizes [| 42 |]);
  Alcotest.(check bool) "ratio nan for single" true (Float.is_nan (Balance.partition_ratio [| 42 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Balance.partition_sizes: empty") (fun () ->
      ignore (Balance.partition_sizes [||]))

let test_all_schemes_give_unique_ids () =
  let _tree, leaf_of_node = leaf_assignment ~n:500 2 in
  List.iter
    (fun scheme ->
      let ids = Balance.select_ids (Rng.create 3) scheme ~leaf_of_node in
      let set = Hashtbl.create 512 in
      Array.iter
        (fun id ->
          if Hashtbl.mem set id then Alcotest.fail "duplicate id";
          if id < 0 || id >= Id.space then Alcotest.fail "id out of space";
          Hashtbl.add set id ())
        ids;
      Alcotest.(check int) "count" 500 (Array.length ids))
    [ Balance.Random_ids; Balance.Bisection; Balance.Hierarchical ]

let test_bisection_beats_random () =
  let _tree, leaf_of_node = leaf_assignment ~n:2048 4 in
  let random = Balance.partition_ratio (Balance.select_ids (Rng.create 5) Balance.Random_ids ~leaf_of_node) in
  let bisect = Balance.partition_ratio (Balance.select_ids (Rng.create 5) Balance.Bisection ~leaf_of_node) in
  Alcotest.(check bool)
    (Printf.sprintf "bisection %.1f << random %.1f" bisect random)
    true
    (bisect < random /. 10.0);
  (* The paper proves a constant ratio (4 w.h.p.); allow implementation
     slack but demand a small constant. *)
  Alcotest.(check bool) "bisection ratio small" true (bisect <= 16.0)

let test_hierarchical_balances_domains () =
  let tree, leaf_of_node = leaf_assignment ~n:2048 6 in
  let members_of domain ids =
    ignore ids;
    Array.to_list leaf_of_node
    |> List.mapi (fun node leaf -> (node, leaf))
    |> List.filter (fun (_, leaf) -> Domain_tree.is_ancestor tree ~anc:domain ~desc:leaf)
    |> List.map fst |> Array.of_list
  in
  let mean_domain_ratio ids =
    let kids = Domain_tree.children tree (Domain_tree.root tree) in
    let rs =
      Array.to_list kids
      |> List.filter_map (fun d ->
             let m = members_of d ids in
             if Array.length m >= 2 then Some (Balance.domain_partition_ratio ids ~members:m) else None)
    in
    List.fold_left ( +. ) 0.0 rs /. Float.of_int (List.length rs)
  in
  let random_ids = Balance.select_ids (Rng.create 7) Balance.Random_ids ~leaf_of_node in
  let hier_ids = Balance.select_ids (Rng.create 7) Balance.Hierarchical ~leaf_of_node in
  let r_random = mean_domain_ratio random_ids in
  let r_hier = mean_domain_ratio hier_ids in
  Alcotest.(check bool)
    (Printf.sprintf "hierarchical %.1f << random %.1f at domain level" r_hier r_random)
    true (r_hier < r_random /. 4.0)

let test_hierarchical_first_nodes_random () =
  (* With one node per leaf there is nothing to bisect; ids must still
     be valid and unique. *)
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:3 ~levels:2) in
  let leaf_of_node = Domain_tree.leaves tree in
  let ids = Balance.select_ids (Rng.create 8) Balance.Hierarchical ~leaf_of_node in
  Alcotest.(check int) "one per leaf" (Array.length leaf_of_node) (Array.length ids)

let prop_partition_ratio_ge_one =
  QCheck.Test.make ~count:200 ~name:"partition ratio >= 1"
    QCheck.(int_range 2 64)
    (fun n ->
      let rng = Rng.create (n * 31) in
      let ids = Canon_overlay.Population.unique_ids rng n in
      Balance.partition_ratio ids >= 1.0)

let suites =
  [
    ( "balance",
      [
        Alcotest.test_case "partition sizes sum" `Quick test_partition_sizes_sum;
        Alcotest.test_case "edge cases" `Quick test_partition_sizes_edge_cases;
        Alcotest.test_case "unique ids per scheme" `Quick test_all_schemes_give_unique_ids;
        Alcotest.test_case "bisection beats random" `Quick test_bisection_beats_random;
        Alcotest.test_case "hierarchical balances domains" `Quick test_hierarchical_balances_domains;
        Alcotest.test_case "one node per leaf" `Quick test_hierarchical_first_nodes_random;
        QCheck_alcotest.to_alcotest prop_partition_ratio_ge_one;
      ] );
  ]
