(* Property tests over randomly shaped hierarchies: the paper's
   theorems hold "irrespective of the structure of the hierarchy", so
   we generate arbitrary domain trees (skewed, deep, shallow, lopsided)
   and check the Crescendo invariants on every one of them. *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng

(* A random tree spec with bounded size and depth, deterministic in the
   integer seed so failures are reproducible. *)
let random_spec seed =
  let rng = Rng.create (seed * 2654435761) in
  let budget = ref (2 + Rng.int_below rng 40) in
  let rec go depth =
    decr budget;
    if depth >= 4 || !budget <= 0 || Rng.int_below rng 3 = 0 then Domain_tree.Leaf
    else begin
      let kids = 1 + Rng.int_below rng 4 in
      Domain_tree.Node (List.init kids (fun _ -> go (depth + 1)))
    end
  in
  match go 0 with
  | Domain_tree.Leaf -> Domain_tree.Node [ Domain_tree.Leaf; Domain_tree.Leaf ]
  | spec -> spec

let build_random seed =
  let rng = Rng.create (seed + 17) in
  let tree = Domain_tree.of_spec (random_spec seed) in
  let n = 2 + Rng.int_below rng 250 in
  let policy = if Rng.bool rng then Placement.Uniform else Placement.Zipfian 1.25 in
  let pop = Population.create rng ~tree ~policy ~n in
  let rings = Rings.build pop in
  (pop, rings, Crescendo.build rings)

let prop_random_routing_reaches =
  QCheck.Test.make ~count:40 ~name:"crescendo on random hierarchies: routing reaches"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let pop, _rings, ov = build_random seed in
      let rng = Rng.create (seed + 1) in
      let n = Population.size pop in
      let ok = ref true in
      for _ = 1 to 25 do
        let src = Rng.int_below rng n and dst = Rng.int_below rng n in
        let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
        if Route.destination route <> dst then ok := false
      done;
      !ok)

let prop_random_locality =
  QCheck.Test.make ~count:40 ~name:"crescendo on random hierarchies: intra-domain locality"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let pop, _rings, ov = build_random seed in
      let tree = pop.Population.tree in
      let rng = Rng.create (seed + 2) in
      let n = Population.size pop in
      let ok = ref true in
      for _ = 1 to 25 do
        let src = Rng.int_below rng n and dst = Rng.int_below rng n in
        let lca = Population.lca_of_nodes pop src dst in
        let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
        Array.iter
          (fun node ->
            if
              not
                (Domain_tree.is_ancestor tree ~anc:lca
                   ~desc:pop.Population.leaf_of_node.(node))
            then ok := false)
          route.Route.nodes
      done;
      !ok)

let prop_random_condition_b =
  QCheck.Test.make ~count:40 ~name:"crescendo on random hierarchies: condition (b)"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let pop, rings, ov = build_random seed in
      let tree = pop.Population.tree in
      let ok = ref true in
      Overlay.iter_links ov (fun src dst ->
          let leaf_src = pop.Population.leaf_of_node.(src) in
          let leaf_dst = pop.Population.leaf_of_node.(dst) in
          if leaf_src <> leaf_dst then begin
            let lca = Domain_tree.lca tree leaf_src leaf_dst in
            let child =
              Domain_tree.ancestor_at_depth tree leaf_src (Domain_tree.depth tree lca + 1)
            in
            let d_own = Ring.successor_distance (Rings.ring rings child) pop.Population.ids.(src) in
            let d = Id.distance pop.Population.ids.(src) pop.Population.ids.(dst) in
            if d >= d_own then ok := false
          end);
      !ok)

let prop_random_degree_logarithmic =
  QCheck.Test.make ~count:40
    ~name:"crescendo on random hierarchies: mean degree within Theorem 2"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let pop, _rings, ov = build_random seed in
      let n = Population.size pop in
      if n < 3 then true
      else begin
        let tree = pop.Population.tree in
        let levels = Float.of_int (Domain_tree.height tree + 1) in
        let log2 x = log x /. log 2.0 in
        let bound =
          log2 (Float.of_int (n - 1)) +. Float.min levels (log2 (Float.of_int n))
        in
        Overlay.mean_degree ov <= bound
      end)

let prop_random_successor_chain =
  QCheck.Test.make ~count:40
    ~name:"crescendo on random hierarchies: successor at every level"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let pop, rings, ov = build_random seed in
      let ok = ref true in
      for node = 0 to Population.size pop - 1 do
        Array.iter
          (fun domain ->
            let ring = Rings.ring rings domain in
            if Ring.size ring >= 2 then begin
              let succ = Ring.successor_of_id ring pop.Population.ids.(node) in
              if not (Overlay.has_link ov node succ) then ok := false
            end)
          (Rings.chain rings node)
      done;
      !ok)

let prop_random_maintenance_equivalence =
  QCheck.Test.make ~count:15
    ~name:"maintenance on random hierarchies: join/leave equals static"
    QCheck.(int_range 1 100_000)
    (fun seed ->
      let rng = Rng.create (seed + 3) in
      let tree = Domain_tree.of_spec (random_spec seed) in
      let n = 20 + Rng.int_below rng 80 in
      let pop = Population.create rng ~tree ~policy:Placement.Uniform ~n in
      let order = Array.init n Fun.id in
      Rng.shuffle_in_place rng order;
      let half = n / 2 in
      let m = Canon_sim.Maintenance.create pop ~present:(Array.sub order 0 half) in
      (* join a quarter, leave an eighth *)
      for i = half to half + (n / 4) - 1 do
        ignore (Canon_sim.Maintenance.join m order.(i))
      done;
      for i = 0 to (n / 8) - 1 do
        ignore (Canon_sim.Maintenance.leave m order.(i))
      done;
      let live = Canon_sim.Maintenance.present m in
      let fresh = Rings.build_partial pop ~present:live in
      Array.for_all
        (fun node ->
          let sort a = let a = Array.copy a in Array.sort Int.compare a; a in
          sort (Crescendo.links_of_node fresh node)
          = sort (Canon_sim.Maintenance.links m node))
        live)

let suites =
  [
    ( "random-hierarchies",
      [
        QCheck_alcotest.to_alcotest prop_random_routing_reaches;
        QCheck_alcotest.to_alcotest prop_random_locality;
        QCheck_alcotest.to_alcotest prop_random_condition_b;
        QCheck_alcotest.to_alcotest prop_random_degree_logarithmic;
        QCheck_alcotest.to_alcotest prop_random_successor_chain;
        QCheck_alcotest.to_alcotest prop_random_maintenance_equivalence;
      ] );
  ]
