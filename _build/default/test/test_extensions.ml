(* Tests for the extension systems: Pastry, the literal prefix-tree CAN,
   the §3.5 hybrid structure, and failure-aware routing. *)

open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core
module Rng = Canon_rng.Rng

let make_pop ?(policy = Placement.Zipfian 1.25) ~seed ~fanout ~levels ~n () =
  let rng = Rng.create seed in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout ~levels) in
  Population.create rng ~tree ~policy ~n

(* --- Pastry -------------------------------------------------------- *)

let test_pastry_constants () =
  Alcotest.(check int) "digit bits" 4 Pastry.digit_bits;
  Alcotest.(check int) "digits" 8 Pastry.digits

let test_pastry_reaches () =
  let pop = make_pop ~seed:40 ~fanout:10 ~levels:1 ~n:1024 () in
  let ov = Pastry.build (Rng.create 41) pop in
  let rng = Rng.create 42 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1024 and dst = Rng.int_below rng 1024 in
    let route = Router.greedy_xor ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route)
  done

let test_pastry_cell_structure () =
  (* Every link of node m must occupy a distinct routing cell: same
     digit prefix as m up to some l, different digit at l. *)
  let pop = make_pop ~seed:43 ~fanout:10 ~levels:1 ~n:400 () in
  let ov = Pastry.build (Rng.create 44) pop in
  let ids = pop.Population.ids in
  let digit id l = (id lsr (Id.bits - ((l + 1) * Pastry.digit_bits))) land 0xF in
  for node = 0 to 399 do
    let cells = Hashtbl.create 32 in
    Array.iter
      (fun v ->
        let l =
          let rec go l = if digit ids.(node) l <> digit ids.(v) l then l else go (l + 1) in
          go 0
        in
        let cell = (l, digit ids.(v) l) in
        if Hashtbl.mem cells cell then Alcotest.fail "two links in one routing cell";
        Hashtbl.add cells cell ())
      (Overlay.links ov node)
  done

let test_pastry_cell_completeness () =
  (* For every non-empty cell of the network, the node has a link. *)
  let pop = make_pop ~seed:45 ~fanout:10 ~levels:1 ~n:300 () in
  let ov = Pastry.build (Rng.create 46) pop in
  let ids = pop.Population.ids in
  let digit id l = (id lsr (Id.bits - ((l + 1) * Pastry.digit_bits))) land 0xF in
  let prefix_digits a b =
    let rec go l = if l = Pastry.digits || digit a l <> digit b l then l else go (l + 1) in
    go 0
  in
  for node = 0 to 299 do
    let covered = Hashtbl.create 32 in
    Array.iter
      (fun v ->
        let l = prefix_digits ids.(node) ids.(v) in
        Hashtbl.replace covered (l, digit ids.(v) l) ())
      (Overlay.links ov node);
    for other = 0 to 299 do
      if other <> node then begin
        let l = prefix_digits ids.(node) ids.(other) in
        if not (Hashtbl.mem covered (l, digit ids.(other) l)) then
          Alcotest.failf "node %d misses non-empty cell (%d, %d)" node l
            (digit ids.(other) l)
      end
    done
  done

let test_canonical_pastry_reaches_and_locality () =
  let pop = make_pop ~seed:47 ~fanout:5 ~levels:3 ~n:1000 () in
  let rings = Rings.build pop in
  let ov = Pastry.build_canonical (Rng.create 48) rings in
  let tree = pop.Population.tree in
  let rng = Rng.create 49 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1000 and dst = Rng.int_below rng 1000 in
    let route = Router.greedy_xor ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route);
    let lca = Population.lca_of_nodes pop src dst in
    Array.iter
      (fun node ->
        if not (Domain_tree.is_ancestor tree ~anc:lca ~desc:pop.Population.leaf_of_node.(node))
        then Alcotest.failf "canonical pastry route %d->%d escapes its domain" src dst)
      route.Route.nodes
  done

let test_pastry_degree () =
  let pop = make_pop ~seed:50 ~fanout:10 ~levels:1 ~n:2048 () in
  let ov = Pastry.build (Rng.create 51) pop in
  (* ~log_16(n) populated rows of <= 15 entries: mean well under 60. *)
  let mean = Overlay.mean_degree ov in
  if mean < 15.0 || mean > 60.0 then Alcotest.failf "pastry degree %.1f implausible" mean

(* --- Prefix CAN ---------------------------------------------------- *)

let test_prefix_can_structure () =
  let pc = Prefix_can.build (Rng.create 52) ~n:100 in
  Alcotest.(check int) "size" 100 (Prefix_can.size pc);
  (* balanced bisection: depths are ceil(log2 100) = 7 (or 6 for the
     shallow side) *)
  Alcotest.(check int) "depth" 7 (Prefix_can.depth pc);
  for node = 0 to 99 do
    let _, len = Prefix_can.prefix_of pc node in
    if len < 6 || len > 7 then Alcotest.failf "node %d has prefix length %d" node len
  done

let test_prefix_can_prefixes_partition_space () =
  (* Every key has exactly one owner, and the owner's prefix matches. *)
  let pc = Prefix_can.build (Rng.create 53) ~n:37 in
  let depth = Prefix_can.depth pc in
  let rng = Rng.create 54 in
  for _ = 1 to 2000 do
    let key = Rng.int_below rng (1 lsl depth) in
    let owner = Prefix_can.owner pc key in
    let bits, len = Prefix_can.prefix_of pc owner in
    Alcotest.(check int) "owner prefix matches key" bits (key lsr (depth - len))
  done

let test_prefix_can_edges_are_hypercube () =
  (* Each edge must connect prefixes with padded representatives that
     differ in exactly one bit: equivalently the prefixes, truncated to
     the shorter length, differ in exactly one bit. *)
  let pc = Prefix_can.build (Rng.create 55) ~n:64 in
  for u = 0 to 63 do
    let bu, lu = Prefix_can.prefix_of pc u in
    Array.iter
      (fun v ->
        let bv, lv = Prefix_can.prefix_of pc v in
        let l = min lu lv in
        let tu = bu lsr (lu - l) and tv = bv lsr (lv - l) in
        let diff = tu lxor tv in
        if diff = 0 || diff land (diff - 1) <> 0 then
          Alcotest.failf "edge %d-%d is not a hypercube edge" u v)
      (Prefix_can.neighbors pc u)
  done

let test_prefix_can_routing () =
  let pc = Prefix_can.build (Rng.create 56) ~n:500 in
  let depth = Prefix_can.depth pc in
  let rng = Rng.create 57 in
  for _ = 1 to 500 do
    let src = Rng.int_below rng 500 in
    let key = Rng.int_below rng (1 lsl depth) in
    match List.rev (Prefix_can.route pc ~src ~key) with
    | [] -> Alcotest.fail "empty route"
    | last :: _ ->
        Alcotest.(check int) "ends at owner" (Prefix_can.owner pc key) last
  done

let test_prefix_can_route_hops_logarithmic () =
  let pc = Prefix_can.build (Rng.create 58) ~n:1024 in
  let rng = Rng.create 59 in
  let total = ref 0 in
  for _ = 1 to 500 do
    let src = Rng.int_below rng 1024 in
    let key = Rng.int_below rng (1 lsl Prefix_can.depth pc) in
    total := !total + (List.length (Prefix_can.route pc ~src ~key) - 1)
  done;
  let mean = Float.of_int !total /. 500.0 in
  (* bit fixing over 10 prefix bits: ~5 expected *)
  if mean > 10.0 then Alcotest.failf "prefix CAN hops %.1f too high" mean

let test_prefix_can_single_node () =
  let pc = Prefix_can.build (Rng.create 60) ~n:1 in
  Alcotest.(check int) "depth 0" 0 (Prefix_can.depth pc);
  Alcotest.(check int) "owner" 0 (Prefix_can.owner pc 0);
  Alcotest.(check (list int)) "self route" [ 0 ] (Prefix_can.route pc ~src:0 ~key:0)

(* --- Hybrid -------------------------------------------------------- *)

let hybrid_fixture =
  lazy
    (let pop = make_pop ~seed:61 ~policy:Placement.Uniform ~fanout:6 ~levels:3 ~n:1200 () in
     let rings = Rings.build pop in
     (pop, rings, Hybrid.build rings))

let test_hybrid_leaf_clique () =
  let pop, rings, ov = Lazy.force hybrid_fixture in
  for node = 0 to Population.size pop - 1 do
    let leaf_ring = Rings.ring rings pop.Population.leaf_of_node.(node) in
    Array.iter
      (fun peer ->
        if peer <> node && not (Overlay.has_link ov node peer) then
          Alcotest.failf "LAN peers %d and %d not linked" node peer)
      (Ring.members leaf_ring)
  done

let test_hybrid_reaches_and_locality () =
  let pop, _rings, ov = Lazy.force hybrid_fixture in
  let tree = pop.Population.tree in
  let rng = Rng.create 62 in
  for _ = 1 to 300 do
    let src = Rng.int_below rng 1200 and dst = Rng.int_below rng 1200 in
    let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
    Alcotest.(check int) "reaches" dst (Route.destination route);
    let lca = Population.lca_of_nodes pop src dst in
    Array.iter
      (fun node ->
        if not (Domain_tree.is_ancestor tree ~anc:lca ~desc:pop.Population.leaf_of_node.(node))
        then Alcotest.failf "hybrid route %d->%d escapes its domain" src dst)
      route.Route.nodes
  done

let test_hybrid_intra_lan_one_hop () =
  let pop, _rings, ov = Lazy.force hybrid_fixture in
  let rng = Rng.create 63 in
  let checked = ref 0 in
  while !checked < 100 do
    let src = Rng.int_below rng 1200 and dst = Rng.int_below rng 1200 in
    if src <> dst && pop.Population.leaf_of_node.(src) = pop.Population.leaf_of_node.(dst)
    then begin
      incr checked;
      let route = Router.greedy_clockwise ov ~src ~key:(Overlay.id ov dst) in
      Alcotest.(check int) "LAN-internal = 1 hop" 1 (Route.hops route)
    end
  done

let test_hybrid_fewer_hops_than_crescendo () =
  let pop, rings, hybrid = Lazy.force hybrid_fixture in
  let crescendo = Crescendo.build rings in
  let rng = Rng.create 64 in
  let h = ref 0 and c = ref 0 in
  for _ = 1 to 600 do
    let src = Rng.int_below rng (Population.size pop) in
    let dst = Rng.int_below rng (Population.size pop) in
    h := !h + Route.hops (Router.greedy_clockwise hybrid ~src ~key:(Overlay.id hybrid dst));
    c := !c + Route.hops (Router.greedy_clockwise crescendo ~src ~key:(Overlay.id crescendo dst))
  done;
  Alcotest.(check bool) (Printf.sprintf "hybrid %d <= crescendo %d hops" !h !c) true (!h <= !c)

(* --- Failure-aware routing ----------------------------------------- *)

let test_avoiding_no_failures_equals_plain () =
  let pop = make_pop ~seed:65 ~fanout:5 ~levels:2 ~n:500 () in
  let ov = Crescendo.build (Rings.build pop) in
  let rng = Rng.create 66 in
  for _ = 1 to 200 do
    let src = Rng.int_below rng 500 and dst = Rng.int_below rng 500 in
    let key = Overlay.id ov dst in
    let plain = Router.greedy_clockwise ov ~src ~key in
    match Router.greedy_clockwise_avoiding ov ~dead:(fun _ -> false) ~src ~key with
    | Some route -> Alcotest.(check (array int)) "identical" plain.Route.nodes route.Route.nodes
    | None -> Alcotest.fail "route failed with no failures"
  done

let test_avoiding_detects_blockage () =
  (* Kill the destination's global predecessor-side links selectively:
     with everyone but src and dst dead, src cannot usually reach dst. *)
  let pop = make_pop ~seed:67 ~fanout:5 ~levels:2 ~n:200 () in
  let ov = Crescendo.build (Rings.build pop) in
  let rng = Rng.create 68 in
  let outcomes = ref 0 in
  for _ = 1 to 50 do
    let src = Rng.int_below rng 200 and dst = Rng.int_below rng 200 in
    if src <> dst then begin
      let dead v = v <> src && v <> dst in
      match Router.greedy_clockwise_avoiding ov ~dead ~src ~key:(Overlay.id ov dst) with
      | Some route when Route.destination route = dst -> ()
      | Some _ -> Alcotest.fail "claimed arrival at wrong node"
      | None -> incr outcomes
    end
  done;
  Alcotest.(check bool) "most extreme-failure routes are reported failed" true (!outcomes > 20)

let test_avoiding_dead_source_rejected () =
  let pop = make_pop ~seed:69 ~fanout:5 ~levels:2 ~n:100 () in
  let ov = Crescendo.build (Rings.build pop) in
  Alcotest.check_raises "dead source"
    (Invalid_argument "Router.greedy_clockwise_avoiding: dead source") (fun () ->
      ignore (Router.greedy_clockwise_avoiding ov ~dead:(fun _ -> true) ~src:0 ~key:1))

let test_isolation_property_direct () =
  (* All nodes outside one depth-1 domain die; intra-domain routing is
     untouched (the fault-isolation claim, tested deterministically). *)
  let pop = make_pop ~seed:70 ~fanout:5 ~levels:3 ~n:1000 () in
  let rings = Rings.build pop in
  let ov = Crescendo.build rings in
  let tree = pop.Population.tree in
  let domain = (Domain_tree.children tree (Domain_tree.root tree)).(0) in
  let members = Ring.members (Rings.ring rings domain) in
  let inside = Array.make 1000 false in
  Array.iter (fun m -> inside.(m) <- true) members;
  let dead v = not inside.(v) in
  let rng = Rng.create 71 in
  if Array.length members >= 2 then
    for _ = 1 to 200 do
      let src = Rng.pick rng members and dst = Rng.pick rng members in
      match Router.greedy_clockwise_avoiding ov ~dead ~src ~key:(Overlay.id ov dst) with
      | Some route -> Alcotest.(check int) "delivered inside domain" dst (Route.destination route)
      | None -> Alcotest.fail "intra-domain route failed under outside-only failures"
    done

let suites =
  [
    ( "pastry",
      [
        Alcotest.test_case "constants" `Quick test_pastry_constants;
        Alcotest.test_case "reaches" `Quick test_pastry_reaches;
        Alcotest.test_case "cell structure" `Quick test_pastry_cell_structure;
        Alcotest.test_case "cell completeness" `Quick test_pastry_cell_completeness;
        Alcotest.test_case "canonical reaches + locality" `Quick
          test_canonical_pastry_reaches_and_locality;
        Alcotest.test_case "degree" `Quick test_pastry_degree;
      ] );
    ( "prefix-can",
      [
        Alcotest.test_case "structure" `Quick test_prefix_can_structure;
        Alcotest.test_case "owners partition space" `Quick test_prefix_can_prefixes_partition_space;
        Alcotest.test_case "edges are hypercube" `Quick test_prefix_can_edges_are_hypercube;
        Alcotest.test_case "routing" `Quick test_prefix_can_routing;
        Alcotest.test_case "hops logarithmic" `Quick test_prefix_can_route_hops_logarithmic;
        Alcotest.test_case "single node" `Quick test_prefix_can_single_node;
      ] );
    ( "hybrid",
      [
        Alcotest.test_case "leaf clique" `Quick test_hybrid_leaf_clique;
        Alcotest.test_case "reaches + locality" `Quick test_hybrid_reaches_and_locality;
        Alcotest.test_case "intra-LAN one hop" `Quick test_hybrid_intra_lan_one_hop;
        Alcotest.test_case "fewer hops than crescendo" `Quick test_hybrid_fewer_hops_than_crescendo;
      ] );
    ( "failures",
      [
        Alcotest.test_case "no failures = plain" `Quick test_avoiding_no_failures_equals_plain;
        Alcotest.test_case "detects blockage" `Quick test_avoiding_detects_blockage;
        Alcotest.test_case "dead source rejected" `Quick test_avoiding_dead_source_rejected;
        Alcotest.test_case "isolation property" `Quick test_isolation_property_direct;
      ] );
  ]
