(* canon — command-line front end for the Canon reproduction.

   Each subcommand regenerates one of the paper's tables/figures (or an
   extension experiment) and prints it as an aligned text table. *)

open Cmdliner
module Table = Canon_stats.Table
open Canon_experiments

let seed_arg =
  let doc = "Random seed; identical seeds reproduce identical tables." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Run at reduced scale (fast; same qualitative shapes)." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let scale_of quick = if quick then `Quick else Common.scale_of_env ()

let run_experiment build quick seed =
  let table = build ~scale:(scale_of quick) ~seed in
  Table.print table;
  `Ok ()

let experiment_cmd name ~doc build =
  let term = Term.(ret (const (run_experiment build) $ quick_arg $ seed_arg)) in
  Cmd.v (Cmd.info name ~doc) term

let commands =
  [
    experiment_cmd "fig3" ~doc:"Figure 3: average #links/node vs network size." Fig3.run;
    experiment_cmd "fig4" ~doc:"Figure 4: PDF of #links/node at 32K nodes." Fig4.run;
    experiment_cmd "fig5" ~doc:"Figure 5: average routing hops vs network size." Fig5.run;
    experiment_cmd "fig6" ~doc:"Figure 6: latency and stretch on the transit-stub internet."
      Fig6.run;
    experiment_cmd "fig7" ~doc:"Figure 7: latency vs query locality." Fig7.run;
    experiment_cmd "fig8" ~doc:"Figure 8: path overlap fraction vs domain level." Fig8.run;
    experiment_cmd "fig9" ~doc:"Figure 9: inter-domain links in a 1000-source multicast tree."
      Fig9.run;
    experiment_cmd "theorems" ~doc:"Empirical check of Theorems 1/2/4/5." Theorems.run;
    experiment_cmd "variants"
      ~doc:"Degree/hops parity of all flat vs Canonical DHT pairs (Chord, Symphony, \
            ND-Chord, Kademlia, CAN)."
      Variants.run;
    experiment_cmd "lookahead" ~doc:"Greedy vs 1-lookahead routing on Symphony/Cacophony."
      Lookahead_bench.run;
    experiment_cmd "balance" ~doc:"Partition balance: random vs bisection vs hierarchical."
      Balance_bench.run;
    experiment_cmd "maintenance" ~doc:"Join/leave message cost and probe success under churn."
      Maintenance_bench.run;
    experiment_cmd "caching" ~doc:"Hierarchical caching hit rate and latency." Caching_bench.run;
    experiment_cmd "isolation"
      ~doc:"Fault isolation: intra-domain delivery under outside failures." Isolation.run;
    experiment_cmd "hybrid" ~doc:"LAN-clique + Crescendo hybrid structure ablation."
      Hybrid_bench.run;
    experiment_cmd "prefixcan" ~doc:"Prefix-tree CAN vs XOR-bucket CAN parity."
      Prefix_can_bench.run;
    experiment_cmd "skipnet" ~doc:"SkipNet vs Crescendo: locality and convergence (sec. 6)."
      Skipnet_bench.run;
  ]

let default =
  let doc = "reproduction of 'Canon in G Major: Designing DHTs with Hierarchical Structure'" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Regenerates the tables and figures of the ICDCS 2004 paper from a pure-OCaml \
         implementation of Canon (Crescendo, Cacophony, ND-Crescendo, Kandy, Can-Can), its \
         flat baselines, a transit-stub internet model, hierarchical storage and caching, \
         partition balancing, and a churn simulator.";
      `P "Use $(b,CANON_SCALE=quick) or $(b,--quick) for fast reduced-scale runs.";
    ]
  in
  Cmd.group (Cmd.info "canon" ~version:"1.0.0" ~doc ~man) commands

let () = exit (Cmd.eval default)
