examples/campus_storage.mli:
