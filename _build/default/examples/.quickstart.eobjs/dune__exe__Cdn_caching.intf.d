examples/cdn_caching.mli:
