examples/churn_resilience.ml: Array Canon_core Canon_hierarchy Canon_overlay Canon_rng Canon_sim Churn Domain_tree Fun List Maintenance Overlay Placement Population Printf Route Router
