examples/quickstart.mli:
