(* Campus storage: the paper's Figure-1 scenario, end to end.

   A federation of universities runs one Crescendo DHT. Departments
   publish content at three visibility tiers — group-private,
   campus-wide and world-readable — and the example verifies that
   hierarchical storage, pointer indirection and routing-enforced
   access control all behave as §4.1 promises, printing a small audit
   table.

   Run with:  dune exec examples/campus_storage.exe *)

open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_storage
module Rng = Canon_rng.Rng
module Id = Canon_idspace.Id
module Table = Canon_stats.Table

let groups =
  [
    "db.cs.stanford"; "ds.cs.stanford"; "ai.cs.stanford"; "sys.cs.stanford";
    "circuits.ee.stanford"; "photonics.ee.stanford";
    "theory.cs.berkeley"; "systems.cs.berkeley"; "ml.cs.berkeley";
    "arch.cs.washington"; "networks.cs.washington";
  ]

let () =
  let ns = Hname.namespace_of_leaves (List.map Hname.of_string groups) in
  let tree = Hname.tree ns in
  let rng = Rng.create 7777 in
  let pop = Population.create rng ~tree ~policy:(Placement.Zipfian 1.25) ~n:1200 in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let store = Store.create rings in
  let domain name = Hname.domain_of_name ns (Hname.of_string name) in
  let some_node name = Ring.node_at (Rings.ring rings (domain name)) 0 in
  Printf.printf "Campus federation: %d nodes across %d research groups\n\n"
    (Population.size pop) (List.length groups);

  (* Publish at three visibility tiers. *)
  let publications =
    [
      (* description, publisher group, storage domain, access domain, key *)
      ("db-group wiki", "db.cs.stanford", "db.cs.stanford", "db.cs.stanford", 0x1001);
      ("cs-stanford course plans", "ai.cs.stanford", "cs.stanford", "cs.stanford", 0x1002);
      ("stanford-wide directory", "db.cs.stanford", "cs.stanford", "stanford", 0x1003);
      ("public dataset", "ml.cs.berkeley", "cs.berkeley", "", 0x1004);
    ]
  in
  List.iter
    (fun (desc, pub, sd, ad, key) ->
      Store.insert store ~publisher:(some_node pub) ~key:(Id.of_int key) ~value:desc
        ~storage_domain:(domain sd) ~access_domain:(domain ad))
    publications;

  (* Audit who can read what. *)
  let readers =
    [ "db.cs.stanford"; "ai.cs.stanford"; "circuits.ee.stanford"; "theory.cs.berkeley" ]
  in
  let table =
    Table.create ~title:"Access audit (value read, or '-' if denied)"
      ~columns:("content" :: readers)
  in
  List.iter
    (fun (desc, _, _, _, key) ->
      let row =
        List.map
          (fun reader ->
            match Store.lookup store overlay ~querier:(some_node reader) ~key:(Id.of_int key) with
            | Some hit -> Printf.sprintf "yes (%d hops)" (Route.hops hit.Store.path)
            | None -> "-")
          readers
      in
      Table.add_row table (desc :: row))
    publications;
  Table.print table;

  (* Locality: department-private lookups resolve inside the department. *)
  let db = domain "db.cs.stanford" in
  let db_ring = Rings.ring rings db in
  let hops_inside = ref 0 and total = ref 0 in
  for i = 0 to min 19 (Ring.size db_ring - 1) do
    let q = Ring.node_at db_ring i in
    match Store.lookup store overlay ~querier:q ~key:(Id.of_int 0x1001) with
    | Some hit ->
        incr total;
        let stays =
          Array.for_all
            (fun node ->
              Domain_tree.is_ancestor tree ~anc:db ~desc:pop.Population.leaf_of_node.(node))
            hit.Store.path.Route.nodes
        in
        if stays then incr hops_inside
    | None -> ()
  done;
  Printf.printf "\nGroup-private lookups that never left db.cs.stanford: %d/%d\n" !hops_inside
    !total;

  (* Convergence: every cs.stanford node reaches the stanford directory
     through the same proxy (ideal for a departmental cache). *)
  let cs = domain "cs.stanford" in
  let cs_ring = Rings.ring rings cs in
  let key = Id.of_int 0x1003 in
  let exits = Hashtbl.create 4 in
  for i = 0 to min 49 (Ring.size cs_ring - 1) do
    let q = Ring.node_at cs_ring i in
    match Store.lookup store overlay ~querier:q ~key with
    | Some hit ->
        let path = hit.Store.path.Route.nodes in
        (* last path node inside cs.stanford *)
        let exit = ref (-1) in
        Array.iter
          (fun node ->
            if Domain_tree.is_ancestor tree ~anc:cs ~desc:pop.Population.leaf_of_node.(node)
            then exit := node)
          path;
        Hashtbl.replace exits !exit ()
    | None -> ()
  done;
  Printf.printf "Distinct exit points used by cs.stanford for the campus directory: %d\n"
    (Hashtbl.length exits)
