(* Churn resilience and fault isolation.

   Drives the §2.3 maintenance protocol: a 3-level organisation under a
   Poisson stream of joins and leaves, with routing probes after every
   event, then a fault-isolation drill — an entire sibling organisation
   disappears and intra-domain service elsewhere is unaffected.

   Run with:  dune exec examples/churn_resilience.exe *)

open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_sim
module Rng = Canon_rng.Rng

let () =
  let rng = Rng.create 1234 in
  let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:5 ~levels:3) in
  let pop = Population.create (Rng.split rng) ~tree ~policy:(Placement.Zipfian 1.25) ~n:1000 in

  (* Phase 1: churn with live probes. *)
  let config =
    {
      Churn.initial_nodes = 400;
      events = 250;
      join_fraction = 0.55;
      probes_per_event = 4;
      mean_interarrival = 2.0;
    }
  in
  let report = Churn.run (Rng.split rng) pop config in
  Printf.printf "Churn phase: %d joins, %d leaves over %.0f sim-seconds\n" report.Churn.joins
    report.Churn.leaves report.Churn.sim_time;
  Printf.printf "  mean messages per join:  %.1f (log2 n ~ %.1f)\n"
    report.Churn.join_message_mean
    (log (float_of_int report.Churn.final_population) /. log 2.0);
  Printf.printf "  mean messages per leave: %.1f\n" report.Churn.leave_message_mean;
  Printf.printf "  routing probes: %d, failed: %d\n" report.Churn.probes report.Churn.failed_probes;

  (* Phase 2: fault isolation. Rebuild a maintained overlay, then crash
     every node of one depth-1 organisation at once. *)
  let all = Array.init (Population.size pop) Fun.id in
  let m = Maintenance.create pop ~present:all in
  let orgs = Domain_tree.children tree (Domain_tree.root tree) in
  let victim = orgs.(0) and survivor = orgs.(1) in
  let members domain =
    Array.to_list all
    |> List.filter (fun node ->
           Domain_tree.is_ancestor tree ~anc:domain ~desc:pop.Population.leaf_of_node.(node))
  in
  let victims = members victim in
  Printf.printf "\nFault drill: organisation %d loses all %d nodes at once\n" victim
    (List.length victims);
  List.iter (fun node -> ignore (Maintenance.leave m node)) victims;

  (* Intra-domain probes inside the surviving organisation. *)
  let survivors = Array.of_list (members survivor) in
  let overlay = Maintenance.overlay m in
  let ok = ref 0 and local = ref 0 and probes = 300 in
  let prng = Rng.split rng in
  for _ = 1 to probes do
    let src = Rng.pick prng survivors and dst = Rng.pick prng survivors in
    let route = Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst) in
    if Route.destination route = dst then begin
      incr ok;
      let stayed =
        Array.for_all
          (fun node ->
            Domain_tree.is_ancestor tree ~anc:survivor
              ~desc:pop.Population.leaf_of_node.(node))
          route.Route.nodes
      in
      if stayed then incr local
    end
  done;
  Printf.printf "  probes inside organisation %d: %d/%d delivered, %d/%d never left the org\n"
    survivor !ok probes !local probes;

  (* Global routing also still works among all survivors. *)
  let live = Maintenance.present m in
  let gok = ref 0 in
  for _ = 1 to probes do
    let src = Rng.pick prng live and dst = Rng.pick prng live in
    let route = Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst) in
    if Route.destination route = dst then incr gok
  done;
  Printf.printf "  global probes among survivors: %d/%d delivered\n" !gok probes;
  print_endline "Done."
