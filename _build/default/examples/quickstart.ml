(* Quickstart: build a Crescendo network over a DNS-style hierarchy,
   route a few lookups, and store/retrieve a key-value pair.

   Run with:  dune exec examples/quickstart.exe *)

open Canon_hierarchy
open Canon_overlay
open Canon_core
open Canon_storage
module Rng = Canon_rng.Rng
module Id = Canon_idspace.Id

let () =
  (* 1. Describe the organisation as DNS-style leaf domains. *)
  let ns =
    Hname.namespace_of_leaves
      (List.map Hname.of_string
         [
           "db.cs.stanford"; "ai.cs.stanford"; "ds.cs.stanford"; "ee.stanford";
           "cs.washington"; "ee.washington";
         ])
  in
  let tree = Hname.tree ns in
  Printf.printf "Hierarchy: %d domains, %d leaf domains, height %d\n"
    (Domain_tree.num_domains tree) (Domain_tree.num_leaves tree) (Domain_tree.height tree);

  (* 2. Place 600 nodes uniformly over the leaves and build Crescendo. *)
  let rng = Rng.create 2024 in
  let pop = Population.create rng ~tree ~policy:Placement.Uniform ~n:600 in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  Printf.printf "Crescendo overlay: %d nodes, mean out-degree %.2f (log2 n = %.2f)\n"
    (Overlay.size overlay) (Overlay.mean_degree overlay)
    (log (float_of_int 600) /. log 2.0);

  (* 3. Route between two random nodes and inspect the path. *)
  let src = 0 and dst = 599 in
  let route = Router.greedy_clockwise overlay ~src ~key:(Overlay.id overlay dst) in
  Printf.printf "Route %d -> %d took %d hops\n" src dst (Route.hops route);

  (* 4. Intra-domain locality: two nodes of cs.stanford never route
     outside cs.stanford. *)
  let cs = Hname.domain_of_name ns (Hname.of_string "cs.stanford") in
  let cs_ring = Rings.ring rings cs in
  let a = Ring.node_at cs_ring 0 and b = Ring.node_at cs_ring (Ring.size cs_ring - 1) in
  let local = Router.greedy_clockwise overlay ~src:a ~key:(Overlay.id overlay b) in
  let stayed =
    Array.for_all
      (fun node ->
        Domain_tree.is_ancestor tree ~anc:cs ~desc:pop.Population.leaf_of_node.(node))
      local.Route.nodes
  in
  Printf.printf "cs.stanford-internal route: %d hops, stayed inside cs.stanford: %b\n"
    (Route.hops local) stayed;

  (* 5. Hierarchical storage: a DB-group node publishes a dataset
     readable by all of Stanford but stored inside cs.stanford. *)
  let store = Store.create rings in
  let db = Hname.domain_of_name ns (Hname.of_string "db.cs.stanford") in
  let stanford = Hname.domain_of_name ns (Hname.of_string "stanford") in
  let publisher = Ring.node_at (Rings.ring rings db) 0 in
  let key = Id.of_int 0xCAFE_F00D in
  Store.insert store ~publisher ~key ~value:"vldb-2004-dataset" ~storage_domain:cs
    ~access_domain:stanford;
  let reader = Ring.node_at (Rings.ring rings (Hname.domain_of_name ns (Hname.of_string "ee.stanford"))) 0 in
  (match Store.lookup store overlay ~querier:reader ~key with
  | Some hit ->
      Printf.printf "ee.stanford node read %S in %d hops%s\n" hit.Store.value
        (Route.hops hit.Store.path)
        (match hit.Store.via_pointer with
        | Some holder -> Printf.sprintf " (via pointer to node %d)" holder
        | None -> "")
  | None -> print_endline "lookup failed (unexpected)");
  let outsider =
    Ring.node_at (Rings.ring rings (Hname.domain_of_name ns (Hname.of_string "cs.washington"))) 0
  in
  (match Store.lookup store overlay ~querier:outsider ~key with
  | Some _ -> print_endline "BUG: washington read stanford-only content"
  | None -> print_endline "cs.washington node was correctly denied access");
  print_endline "Quickstart done."
