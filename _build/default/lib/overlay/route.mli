(** Routing paths and path-level metrics.

    A path is the full sequence of nodes a message visits, source first.
    All the paper's path metrics — hop count, physical latency, overlap
    fractions, inter-domain edge counts — derive from paths. *)

type t = { nodes : int array }

val singleton : int -> t

val hops : t -> int
(** Number of overlay edges traversed, [length - 1]. *)

val source : t -> int

val destination : t -> int

val edges : t -> (int * int) array
(** Directed edges in traversal order. *)

val mem : t -> int -> bool

val latency :
  t -> node_latency:(int -> int -> float) -> float
(** Sum of per-edge latencies under the supplied oracle (which maps two
    node indices to milliseconds). Zero for a single-node path. *)

val overlap_fraction : reference:t -> t -> [ `Hops | `Latency of int -> int -> float ] -> float
(** [overlap_fraction ~reference p metric] is the fraction of path [p]
    (in hops, or in latency under the given oracle) consisting of edges
    that also appear in [reference] — the paper's "hop overlap
    fraction" and "latency overlap fraction" (§5.4). A zero-hop path
    has overlap 0. *)

val domain_crossings :
  t -> domain_of_node:(int -> int) -> int
(** Number of edges whose endpoints lie in different domains under the
    given assignment — the "inter-domain links" of the multicast
    experiment (Fig. 9). *)

val pp : Format.formatter -> t -> unit
