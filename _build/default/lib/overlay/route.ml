type t = { nodes : int array }

let singleton node = { nodes = [| node |] }

let hops t = Array.length t.nodes - 1

let source t = t.nodes.(0)

let destination t = t.nodes.(Array.length t.nodes - 1)

let edges t =
  Array.init (max 0 (hops t)) (fun i -> (t.nodes.(i), t.nodes.(i + 1)))

let mem t node = Array.exists (Int.equal node) t.nodes

let latency t ~node_latency =
  let total = ref 0.0 in
  for i = 0 to hops t - 1 do
    total := !total +. node_latency t.nodes.(i) t.nodes.(i + 1)
  done;
  !total

let overlap_fraction ~reference p metric =
  if hops p <= 0 then 0.0
  else begin
    let ref_edges = Hashtbl.create (2 * max 1 (hops reference)) in
    Array.iter (fun e -> Hashtbl.replace ref_edges e ()) (edges reference);
    let shared = Hashtbl.mem ref_edges in
    match metric with
    | `Hops ->
        let overlapping = Array.fold_left
            (fun acc e -> if shared e then acc + 1 else acc) 0 (edges p)
        in
        Float.of_int overlapping /. Float.of_int (hops p)
    | `Latency oracle ->
        let total = ref 0.0 and overlapping = ref 0.0 in
        Array.iter
          (fun (u, v) ->
            let l = oracle u v in
            total := !total +. l;
            if shared (u, v) then overlapping := !overlapping +. l)
          (edges p);
        if !total = 0.0 then 0.0 else !overlapping /. !total
  end

let domain_crossings t ~domain_of_node =
  Array.fold_left
    (fun acc (u, v) -> if domain_of_node u <> domain_of_node v then acc + 1 else acc)
    0 (edges t)

let pp ppf t =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
       Format.pp_print_int)
    t.nodes
