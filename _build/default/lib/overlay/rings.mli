(** The per-domain ring index: for every domain of the hierarchy, the
    ring formed by all nodes in that domain's subtree.

    This realises the paper's central invariant — "the nodes in any
    domain form a DHT routing structure by themselves" — as a queryable
    data structure, and is the workhorse of every Canonical
    construction, of proxy-node computation for caching, and of the
    hierarchical storage layer. *)

type t

val build : Population.t -> t
(** O(n · depth) ring membership plus one sort per domain. Domains with
    no nodes get empty rings. *)

val population : t -> Population.t

val ring : t -> int -> Ring.t
(** The ring of a domain index. May be empty. *)

val ring_of_node_at_depth : t -> int -> int -> Ring.t
(** [ring_of_node_at_depth t node k] is the ring of the domain at depth
    [k] on the path from the root to [node]'s leaf (clipped to the
    leaf depth). Depth 0 is the global ring. *)

val chain : t -> int -> int array
(** [chain t node] lists the domains containing [node] from its leaf up
    to the root (leaf first, root last). *)

val responsible : t -> domain:int -> key:Canon_idspace.Id.t -> int
(** The node responsible for [key] within [domain]: the member with the
    largest identifier <= key (wrapping) — the paper's storage rule.
    Raises [Invalid_argument] if the domain has no nodes. *)

val build_partial : Population.t -> present:int array -> t
(** Like {!build} but only the listed nodes are members of their rings;
    the rest of the population is treated as not (yet) joined. Used by
    the dynamic-maintenance simulator. *)

val add_node : t -> int -> unit
(** Inserts a node of the population into every ring of its chain
    (leaf to root). Raises if already present. *)

val remove_node : t -> int -> unit
(** Removes a node from every ring of its chain. *)
