(** A constructed overlay network: a population plus the outgoing links
    each construction decided on.

    Links are directed (the paper counts out-degree only). The adjacency
    is immutable once built; constructions hand it over through
    {!create}. *)

type t

val create : Population.t -> links:int array array -> t
(** [create pop ~links] with [links.(node)] the array of link targets of
    [node]. Self-links and duplicate targets are rejected. *)

val population : t -> Population.t

val size : t -> int

val id : t -> int -> Canon_idspace.Id.t

val links : t -> int -> int array
(** Outgoing links of a node (not copied — callers must not mutate). *)

val degree : t -> int -> int

val degrees : t -> int array
(** Out-degree of every node. *)

val mean_degree : t -> float

val has_link : t -> int -> int -> bool

val iter_links : t -> (int -> int -> unit) -> unit
(** [iter_links t f] calls [f src dst] for every directed link. *)
