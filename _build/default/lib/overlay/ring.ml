open Canon_idspace

type t = {
  mutable ids : int array; (* sorted ascending, first [size] slots *)
  mutable nodes : int array; (* node index at the same rank *)
  mutable size : int;
}

let of_members ~ids ~members =
  let k = Array.length members in
  let order = Array.copy members in
  Array.sort (fun a b -> Id.compare ids.(a) ids.(b)) order;
  let ring_ids = Array.make (max k 1) 0 and ring_nodes = Array.make (max k 1) 0 in
  Array.iteri
    (fun rank node ->
      ring_ids.(rank) <- ids.(node);
      ring_nodes.(rank) <- node)
    order;
  for i = 1 to k - 1 do
    if ring_ids.(i) = ring_ids.(i - 1) then
      invalid_arg "Ring.of_members: duplicate identifiers"
  done;
  { ids = ring_ids; nodes = ring_nodes; size = k }

let size t = t.size

let members t = Array.sub t.nodes 0 t.size

let id_at t rank = t.ids.(rank)

let node_at t rank = t.nodes.(rank)

let require_non_empty t = if size t = 0 then invalid_arg "Ring: empty ring"

(* Smallest rank whose id is >= q, or [size] if none. *)
let lower_bound t q =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.ids.(mid) >= q then hi := mid else lo := mid + 1
  done;
  !lo

let contains t q =
  let i = lower_bound t q in
  i < size t && t.ids.(i) = q

let first_at_or_after t q =
  require_non_empty t;
  let i = lower_bound t q in
  if i < size t then t.nodes.(i) else t.nodes.(0)

let successor_of_id t q = first_at_or_after t (Id.add q 1)

let predecessor_of_id t q =
  require_non_empty t;
  let i = lower_bound t q in
  if i < size t && t.ids.(i) = q then t.nodes.(i)
  else if i = 0 then t.nodes.(size t - 1)
  else t.nodes.(i - 1)

let successor_distance t id =
  require_non_empty t;
  if size t = 1 then Id.space
  else begin
    (* Rank of the first id strictly after [id], wrapping. *)
    let i = lower_bound t (Id.add id 1) in
    let succ_id = if i < size t then t.ids.(i) else t.ids.(0) in
    let d = Id.distance id succ_id in
    if d = 0 then Id.space else d
  end

let rank_at_or_after = lower_bound

let arc_count t ~start ~len =
  if len < 0 || len > Id.space then invalid_arg "Ring.arc_count: bad length";
  if len = 0 then 0
  else if len = Id.space then size t
  else begin
    let lo = lower_bound t start in
    if start + len <= Id.space then lower_bound t (start + len) - lo
    else (* wraps past 0 *)
      size t - lo + lower_bound t (start + len - Id.space)
  end

let arc_nth t ~start ~len i =
  if i < 0 || i >= arc_count t ~start ~len then invalid_arg "Ring.arc_nth: index out of arc";
  let lo = lower_bound t start in
  let rank = lo + i in
  t.nodes.(if rank < size t then rank else rank - size t)

let finger t id d =
  require_non_empty t;
  if d < 1 then invalid_arg "Ring.finger: distance must be >= 1";
  let target = first_at_or_after t (Id.add id d) in
  let i = lower_bound t (Id.add id d) in
  let found_id = if i < size t then t.ids.(i) else t.ids.(0) in
  if found_id = id then None else Some target

let insert t ~id ~node =
  let rank = lower_bound t id in
  if rank < t.size && t.ids.(rank) = id then invalid_arg "Ring.insert: duplicate identifier";
  if t.size = Array.length t.ids then begin
    let cap = 2 * t.size in
    let ids' = Array.make cap 0 and nodes' = Array.make cap 0 in
    Array.blit t.ids 0 ids' 0 t.size;
    Array.blit t.nodes 0 nodes' 0 t.size;
    t.ids <- ids';
    t.nodes <- nodes'
  end;
  Array.blit t.ids rank t.ids (rank + 1) (t.size - rank);
  Array.blit t.nodes rank t.nodes (rank + 1) (t.size - rank);
  t.ids.(rank) <- id;
  t.nodes.(rank) <- node;
  t.size <- t.size + 1

let remove t ~id =
  let rank = lower_bound t id in
  if rank >= t.size || t.ids.(rank) <> id then invalid_arg "Ring.remove: identifier not present";
  Array.blit t.ids (rank + 1) t.ids rank (t.size - rank - 1);
  Array.blit t.nodes (rank + 1) t.nodes rank (t.size - rank - 1);
  t.size <- t.size - 1
