open Canon_hierarchy

type t = {
  population : Population.t;
  rings : Ring.t array; (* indexed by domain *)
}

let build pop =
  let tree = pop.Population.tree in
  let nd = Domain_tree.num_domains tree in
  (* Collect member lists bottom-up: credit each node to every ancestor
     of its leaf. *)
  let buckets = Array.make nd [] in
  Array.iteri
    (fun node leaf ->
      let rec credit d =
        buckets.(d) <- node :: buckets.(d);
        if d <> Domain_tree.root tree then credit (Domain_tree.parent tree d)
      in
      credit leaf)
    pop.Population.leaf_of_node;
  let rings =
    Array.map
      (fun bucket ->
        Ring.of_members ~ids:pop.Population.ids ~members:(Array.of_list bucket))
      buckets
  in
  { population = pop; rings }

let population t = t.population

let ring t d = t.rings.(d)

let ring_of_node_at_depth t node k =
  t.rings.(Population.domain_of_node_at_depth t.population node k)

let chain t node =
  let tree = t.population.Population.tree in
  let leaf = t.population.Population.leaf_of_node.(node) in
  let depth = Domain_tree.depth tree leaf in
  let out = Array.make (depth + 1) leaf in
  let rec go d i =
    out.(i) <- d;
    if d <> Domain_tree.root tree then go (Domain_tree.parent tree d) (i + 1)
  in
  go leaf 0;
  out

let build_partial pop ~present =
  let tree = pop.Population.tree in
  let nd = Domain_tree.num_domains tree in
  let buckets = Array.make nd [] in
  Array.iter
    (fun node ->
      let leaf = pop.Population.leaf_of_node.(node) in
      let rec credit d =
        buckets.(d) <- node :: buckets.(d);
        if d <> Domain_tree.root tree then credit (Domain_tree.parent tree d)
      in
      credit leaf)
    present;
  let rings =
    Array.map
      (fun bucket -> Ring.of_members ~ids:pop.Population.ids ~members:(Array.of_list bucket))
      buckets
  in
  { population = pop; rings }

let add_node t node =
  let id = t.population.Population.ids.(node) in
  Array.iter (fun domain -> Ring.insert t.rings.(domain) ~id ~node) (chain t node)

let remove_node t node =
  let id = t.population.Population.ids.(node) in
  Array.iter (fun domain -> Ring.remove t.rings.(domain) ~id) (chain t node)

let responsible t ~domain ~key =
  let r = t.rings.(domain) in
  if Ring.size r = 0 then invalid_arg "Rings.responsible: empty domain";
  Ring.predecessor_of_id r key
