(** A ring of nodes sorted by identifier.

    Every DHT construction in this repository reduces to queries on
    sorted rings: "the closest node at least distance d away from m",
    "the successor of id q", "the node responsible for key k". A ring is
    an immutable sorted array of (identifier, node index) pairs with
    O(log n) wrapping binary searches. *)

open Canon_idspace

type t

val of_members : ids:Id.t array -> members:int array -> t
(** [of_members ~ids ~members] builds the ring of the node indices in
    [members], where [ids.(node)] is each node's identifier. Identifiers
    of members must be pairwise distinct. *)

val size : t -> int

val members : t -> int array
(** Members in increasing identifier order. *)

val id_at : t -> int -> Id.t
(** Identifier at a rank in [0, size). *)

val node_at : t -> int -> int
(** Node index at a rank in [0, size). *)

val contains : t -> Id.t -> bool
(** Is some member's identifier exactly this id? *)

val first_at_or_after : t -> Id.t -> int
(** [first_at_or_after t q] is the node whose identifier is reached
    first when walking clockwise from [q] (including [q] itself).
    Requires a non-empty ring. *)

val successor_of_id : t -> Id.t -> int
(** [successor_of_id t q] is the first node strictly clockwise of [q]
    (excluding a node whose id equals [q]). Requires a non-empty ring. *)

val predecessor_of_id : t -> Id.t -> int
(** [predecessor_of_id t q] is the node managing key [q] under the
    paper's improved rule: the node with the largest identifier less
    than or equal to [q], wrapping. Requires a non-empty ring. *)

val successor_distance : t -> Id.t -> int
(** [successor_distance t id] is the clockwise distance from [id]
    (assumed to be a member's identifier) to the nearest *other*
    member; [Id.space] when the ring has a single member. *)

val finger : t -> Id.t -> int -> int option
(** [finger t id d] is the Chord link rule: the closest node at least
    clockwise distance [d >= 1] away from the member with identifier
    [id], or [None] if no other node qualifies (i.e. the walk wraps all
    the way back to [id] itself). *)

val arc_count : t -> start:Id.t -> len:int -> int
(** Number of members in the clockwise arc [\[start, start+len)], i.e.
    members [x] with [distance start x < len]. Requires
    [0 <= len <= Id.space]. *)

val arc_nth : t -> start:Id.t -> len:int -> int -> int
(** [arc_nth t ~start ~len i] is the node at clockwise position [i]
    (0-based) within that arc; requires [i < arc_count t ~start ~len]. *)

val rank_at_or_after : t -> Id.t -> int
(** Rank (in sorted order, not wrapping) of the first member with
    identifier [>= q]; [size t] when none. Exposed for the XOR-bucket
    bit-descent searches. *)

val insert : t -> id:Id.t -> node:int -> unit
(** Adds a member (O(size) array shift). Rejects duplicate identifiers.
    Used by the dynamic-maintenance simulator; static constructions
    never mutate rings they were built from. *)

val remove : t -> id:Id.t -> unit
(** Removes the member with this identifier; raises [Invalid_argument]
    if absent. *)
