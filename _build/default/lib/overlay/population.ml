open Canon_idspace
open Canon_hierarchy

type t = {
  ids : Id.t array;
  tree : Domain_tree.t;
  leaf_of_node : int array;
  attach : int array option;
}

let size t = Array.length t.ids

let unique_ids rng n =
  let seen = Hashtbl.create (2 * n) in
  let ids = Array.make n Id.zero in
  let filled = ref 0 in
  while !filled < n do
    let id = Id.random rng in
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.add seen id ();
      ids.(!filled) <- id;
      incr filled
    end
  done;
  ids

let create rng ~tree ~policy ~n =
  let ids = unique_ids rng n in
  let leaf_of_node = Placement.assign rng tree policy ~n in
  { ids; tree; leaf_of_node; attach = None }

let create_with_attach rng ~tree ~leaf_to_attach ~n =
  let ids = unique_ids rng n in
  let leaf_of_node = Placement.assign rng tree Placement.Uniform ~n in
  let attach = Array.map leaf_to_attach leaf_of_node in
  { ids; tree; leaf_of_node; attach = Some attach }

let domain_of_node_at_depth t node k =
  let leaf = t.leaf_of_node.(node) in
  let leaf_depth = Domain_tree.depth t.tree leaf in
  Domain_tree.ancestor_at_depth t.tree leaf (min k leaf_depth)

let lca_of_nodes t a b = Domain_tree.lca t.tree t.leaf_of_node.(a) t.leaf_of_node.(b)
