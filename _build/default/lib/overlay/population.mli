(** A population of system nodes: unique identifiers plus a position in
    the conceptual hierarchy (and, optionally, an attachment point in a
    physical topology).

    This is the input shared by every DHT construction: constructions
    add links, they never alter the population. *)

open Canon_idspace
open Canon_hierarchy

type t = {
  ids : Id.t array;  (** node index -> unique identifier *)
  tree : Domain_tree.t;
  leaf_of_node : int array;  (** node index -> leaf domain of [tree] *)
  attach : int array option;
      (** node index -> physical attachment point (e.g. stub-router
          vertex), when a topology underlies the experiment *)
}

val size : t -> int

val create :
  Canon_rng.Rng.t ->
  tree:Domain_tree.t ->
  policy:Placement.policy ->
  n:int ->
  t
(** Draws [n] distinct uniformly random identifiers and places each node
    at a leaf of [tree] under [policy]. No attachment points. *)

val create_with_attach :
  Canon_rng.Rng.t ->
  tree:Domain_tree.t ->
  leaf_to_attach:(int -> int) ->
  n:int ->
  t
(** Places nodes uniformly over the leaves of [tree] and records each
    node's physical attachment point [leaf_to_attach leaf]. Used with
    topology-induced hierarchies where each leaf domain corresponds to
    a stub router. *)

val unique_ids : Canon_rng.Rng.t -> int -> Id.t array
(** [n] distinct uniformly random identifiers (rejection sampling). *)

val domain_of_node_at_depth : t -> int -> int -> int
(** [domain_of_node_at_depth t node k] is the ancestor domain of
    [node]'s leaf at depth [k] (clipped to the leaf's own depth). *)

val lca_of_nodes : t -> int -> int -> int
(** Lowest common ancestor domain of two nodes' leaves. *)
