lib/overlay/ring.mli: Canon_idspace Id
