lib/overlay/rings.mli: Canon_idspace Population Ring
