lib/overlay/overlay.ml: Array Float Hashtbl Int Population
