lib/overlay/population.mli: Canon_hierarchy Canon_idspace Canon_rng Domain_tree Id Placement
