lib/overlay/population.ml: Array Canon_hierarchy Canon_idspace Domain_tree Hashtbl Id Placement
