lib/overlay/rings.ml: Array Canon_hierarchy Domain_tree Population Ring
