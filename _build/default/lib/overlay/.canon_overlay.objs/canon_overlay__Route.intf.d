lib/overlay/route.mli: Format
