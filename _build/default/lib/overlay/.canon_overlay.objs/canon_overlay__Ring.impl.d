lib/overlay/ring.ml: Array Canon_idspace Id
