lib/overlay/route.ml: Array Float Format Hashtbl Int
