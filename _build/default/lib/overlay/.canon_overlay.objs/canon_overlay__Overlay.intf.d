lib/overlay/overlay.mli: Canon_idspace Population
