type t = {
  population : Population.t;
  links : int array array;
}

let create pop ~links =
  let n = Population.size pop in
  if Array.length links <> n then invalid_arg "Overlay.create: adjacency size mismatch";
  Array.iteri
    (fun src targets ->
      let seen = Hashtbl.create (Array.length targets) in
      Array.iter
        (fun dst ->
          if dst = src then invalid_arg "Overlay.create: self-link";
          if dst < 0 || dst >= n then invalid_arg "Overlay.create: target out of range";
          if Hashtbl.mem seen dst then invalid_arg "Overlay.create: duplicate link";
          Hashtbl.add seen dst ())
        targets)
    links;
  { population = pop; links }

let population t = t.population

let size t = Population.size t.population

let id t node = t.population.Population.ids.(node)

let links t node = t.links.(node)

let degree t node = Array.length t.links.(node)

let degrees t = Array.map Array.length t.links

let mean_degree t =
  let total = Array.fold_left (fun acc l -> acc + Array.length l) 0 t.links in
  Float.of_int total /. Float.of_int (max 1 (size t))

let has_link t src dst = Array.exists (Int.equal dst) t.links.(src)

let iter_links t f =
  Array.iteri (fun src targets -> Array.iter (fun dst -> f src dst) targets) t.links
