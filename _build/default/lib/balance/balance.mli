(** Partition-balanced identifier selection (paper §4.3).

    With uniformly random identifiers the ratio of the largest to the
    smallest partition (the hash-space arc a node manages) grows as
    Θ(log² n). The paper's remedy: a joining node still picks a random
    point, locates the responsible node [n'], but then {e bisects the
    largest partition} among the nodes sharing [n']'s [B]-bit identifier
    prefix ([B] chosen so ~log n nodes share it), making the partitions
    a binary tree and driving the ratio to a constant (≤ 4 w.h.p.).

    The hierarchical variant additionally keeps partitions balanced at
    the lower levels of the domain hierarchy: a joining node places
    itself {e as far apart from the other nodes in its leaf domain as
    possible} — it bisects the largest partition of its leaf-domain
    ring — which the paper reports suffices to propagate balance
    through the hierarchy. *)

open Canon_idspace

type scheme =
  | Random_ids  (** baseline: uniformly random identifiers *)
  | Bisection  (** the paper's flat balancing scheme *)
  | Hierarchical
      (** far-apart placement within the joining node's leaf domain *)

val select_ids :
  Canon_rng.Rng.t -> scheme -> leaf_of_node:int array -> Id.t array
(** Simulates the nodes joining one by one (in index order) under the
    scheme and returns the identifier each one chose. [leaf_of_node]
    matters only to [Hierarchical]. All identifiers are distinct. *)

val partition_sizes : Id.t array -> int array
(** [partition_sizes ids] is the arc each node manages: from its id to
    the next id clockwise. Sizes sum to [Id.space]. Requires at least
    one node, all ids distinct. *)

val partition_ratio : Id.t array -> float
(** max/min partition size; [nan] with fewer than 2 nodes. *)

val domain_partition_ratio : Id.t array -> members:int array -> float
(** Partition ratio computed within a sub-ring: each member's partition
    is the arc to the next member. *)
