open Canon_idspace
module Rng = Canon_rng.Rng
module IdSet = Set.Make (Int)

type scheme =
  | Random_ids
  | Bisection
  | Hierarchical

(* Clockwise successor of [id] within the set (wrapping); [id] itself is
   excluded. Requires a non-empty set not reduced to [id]. *)
let set_successor set id =
  match IdSet.find_first_opt (fun x -> x > id) set with
  | Some x -> x
  | None -> IdSet.min_elt set

(* The node responsible for point [r]: largest member <= r, wrapping. *)
let set_predecessor set r =
  match IdSet.find_last_opt (fun x -> x <= r) set with
  | Some x -> x
  | None -> IdSet.max_elt set

let fresh_random_id rng set =
  let rec go () =
    let id = Id.random rng in
    if IdSet.mem id set then go () else id
  in
  go ()

let bisection_choose rng set =
  if IdSet.is_empty set then Id.random rng
  else begin
    let count = IdSet.cardinal set in
    let r = Id.random rng in
    let anchor = set_predecessor set r in
    (* B bits such that ~log2(count) nodes share the prefix. *)
    let logn = max 1 (Id.log2_floor (max 2 count)) in
    let b = if count <= logn then 0 else min Id.bits (Id.log2_floor (count / logn)) in
    let shift = Id.bits - b in
    let lo = if b = 0 then 0 else Id.prefix anchor b lsl shift in
    let hi = if b = 0 then Id.space else lo + (1 lsl shift) in
    (* Largest partition among prefix-sharing members. *)
    let best = ref anchor and best_size = ref (-1) in
    let rec scan = function
      | None -> ()
      | Some x when x >= hi -> ()
      | Some x ->
          let size = Id.distance x (set_successor set x) in
          let size = if size = 0 then Id.space else size in
          if size > !best_size then begin
            best := x;
            best_size := size
          end;
          scan (IdSet.find_first_opt (fun y -> y > x) set)
    in
    scan (IdSet.find_first_opt (fun y -> y >= lo) set);
    if !best_size < 2 then fresh_random_id rng set
    else Id.add !best (!best_size / 2)
  end

(* "As far apart from the other nodes in the domain as possible":
   bisect the largest partition of the node's leaf-domain ring. *)
let leaf_bisect_choose rng leaf_set =
  if IdSet.is_empty leaf_set then Id.random rng
  else begin
    let best = ref 0 and best_size = ref (-1) in
    IdSet.iter
      (fun x ->
        let size = Id.distance x (set_successor leaf_set x) in
        let size = if size = 0 then Id.space else size in
        if size > !best_size then begin
          best := x;
          best_size := size
        end)
      leaf_set;
    Id.add !best (!best_size / 2)
  end

let select_ids rng scheme ~leaf_of_node =
  let n = Array.length leaf_of_node in
  let set = ref IdSet.empty in
  let out = Array.make n Id.zero in
  let leaf_sets : (int, IdSet.t) Hashtbl.t = Hashtbl.create 64 in
  for node = 0 to n - 1 do
    let id =
      match scheme with
      | Random_ids -> fresh_random_id rng !set
      | Bisection ->
          let id = bisection_choose rng !set in
          if IdSet.mem id !set then fresh_random_id rng !set else id
      | Hierarchical ->
          let leaf = leaf_of_node.(node) in
          let leaf_set = Option.value ~default:IdSet.empty (Hashtbl.find_opt leaf_sets leaf) in
          let id = leaf_bisect_choose rng leaf_set in
          let id = if IdSet.mem id !set then fresh_random_id rng !set else id in
          Hashtbl.replace leaf_sets leaf (IdSet.add id leaf_set);
          id
    in
    out.(node) <- id;
    set := IdSet.add id !set
  done;
  out

let partition_sizes ids =
  let n = Array.length ids in
  if n = 0 then invalid_arg "Balance.partition_sizes: empty";
  let sorted = Array.copy ids in
  Array.sort Int.compare sorted;
  Array.init n (fun i ->
      let next = sorted.((i + 1) mod n) in
      let d = Id.distance sorted.(i) next in
      if d = 0 && n > 1 then invalid_arg "Balance.partition_sizes: duplicate ids"
      else if n = 1 then Id.space
      else d)

let partition_ratio ids =
  if Array.length ids < 2 then Float.nan
  else begin
    let sizes = partition_sizes ids in
    let mx = Array.fold_left max sizes.(0) sizes in
    let mn = Array.fold_left min sizes.(0) sizes in
    Float.of_int mx /. Float.of_int (max 1 mn)
  end

let domain_partition_ratio ids ~members =
  partition_ratio (Array.map (fun m -> ids.(m)) members)
