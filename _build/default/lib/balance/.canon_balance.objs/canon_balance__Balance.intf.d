lib/balance/balance.mli: Canon_idspace Canon_rng Id
