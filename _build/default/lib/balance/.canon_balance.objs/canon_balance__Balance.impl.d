lib/balance/balance.ml: Array Canon_idspace Canon_rng Float Hashtbl Id Int Option Set
