lib/rng/splitmix64.mli:
