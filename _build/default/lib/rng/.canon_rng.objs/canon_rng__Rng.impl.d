lib/rng/rng.ml: Array Float Hashtbl Int64 Splitmix64
