lib/rng/rng.mli:
