lib/rng/splitmix64.ml: Int64
