(** Deterministic random sources for experiments.

    A thin, convenient layer over {!Splitmix64} providing the draws the
    rest of the repository needs: bounded integers, floats, permutations,
    samples without replacement, and independent sub-streams. All
    functions are deterministic given the generator state. *)

type t
(** A mutable random source. *)

val create : int -> t
(** [create seed] makes a source from an integer seed. *)

val split : t -> t
(** [split t] returns an independent sub-stream, advancing [t] once.
    Use one sub-stream per logical component (placement, workload, ...)
    so that adding draws to one component never shifts another. *)

val copy : t -> t
(** [copy t] duplicates the current state. *)

val bits64 : t -> int64
(** 64 uniform bits. *)

val int_below : t -> int -> int
(** [int_below t n] is uniform on [0, n). Requires [n > 0]. Unbiased
    (rejection sampling). *)

val int_in_range : t -> lo:int -> hi:int -> int
(** [int_in_range t ~lo ~hi] is uniform on [lo, hi] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float
(** Uniform on [0, 1). *)

val bool : t -> bool
(** A fair coin. *)

val pick : t -> 'a array -> 'a
(** [pick t a] is a uniform element of [a]. Requires [a] non-empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct integers from
    [0, n), in random order. Requires [0 <= k <= n]. *)

val exponential : t -> mean:float -> float
(** Exponential variate with the given mean (for churn inter-arrivals). *)
