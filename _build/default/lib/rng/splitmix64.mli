(** SplitMix64: a fast, splittable 64-bit pseudo-random generator.

    This is the generator of Steele, Lea and Flood ("Fast splittable
    pseudorandom number generators", OOPSLA 2014). It is used as the
    deterministic randomness substrate for every experiment in this
    repository: identical seeds always reproduce identical overlays,
    workloads and measurements, on any platform. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator initialised from [seed]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val next : t -> int64
(** [next t] advances [t] and returns 64 uniformly distributed bits. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. Splitting lets
    sub-experiments consume randomness without perturbing one another. *)
