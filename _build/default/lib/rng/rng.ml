type t = Splitmix64.t

let create seed = Splitmix64.create (Int64.of_int seed)

let split = Splitmix64.split

let copy = Splitmix64.copy

let bits64 = Splitmix64.next

(* Top 62 bits as a non-negative OCaml int. *)
let nonneg_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: bound must be positive";
  (* Rejection sampling over the largest multiple of [n] that fits in
     [0, max_int], ensuring exact uniformity. (2^62 itself overflows a
     63-bit OCaml int, so the limit is anchored at max_int.) *)
  let limit = max_int - (max_int mod n) in
  let rec draw () =
    let v = nonneg_int t in
    if v < limit then v mod n else draw ()
  in
  draw ()

let int_in_range t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in_range: lo > hi";
  lo + int_below t (hi - lo + 1)

let float t =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  Float.of_int v *. 0x1p-53

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int_below t (Array.length a))

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  if 3 * k >= n then begin
    (* Dense case: shuffle a full index array and take a prefix. *)
    let a = Array.init n (fun i -> i) in
    shuffle_in_place t a;
    Array.sub a 0 k
  end
  else begin
    (* Sparse case: draw with rejection into a hash set. *)
    let seen = Hashtbl.create (2 * k) in
    let out = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = int_below t n in
      if not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out.(!filled) <- v;
        incr filled
      end
    done;
    out
  end

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean must be positive";
  let u = float t in
  -.mean *. log1p (-.u)
