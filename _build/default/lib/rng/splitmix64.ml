type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* The standard SplitMix64 output mix: two xor-shift-multiply rounds. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* A distinct finaliser (from MurmurHash3) used when deriving the gamma of
   a split stream, so that split streams do not collide with [next]. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logor (Int64.logxor z (Int64.shift_right_logical z 33)) 1L

let raw_next t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

let next t = mix64 (raw_next t)

let split t =
  let seed = mix64 (raw_next t) in
  let _gamma = mix_gamma (raw_next t) in
  (* We keep a fixed gamma for all streams; seeds differ by the mixed
     output so streams are de-correlated in practice. *)
  create seed
