(** SkipNet (Harvey et al., USITS 2003) — the related-work system the
    paper compares against in §6.

    SkipNet arranges nodes in a doubly-linked ring sorted by {e name}
    (we use hierarchy order, so every domain is a contiguous name
    interval) and gives each node one pointer per level [i] to its
    nearest name-neighbours among the nodes sharing the first [i] bits
    of its random numeric identifier — a skip-list-like structure.

    Two routing modes, matching the paper's discussion:
    - {!route_by_name}: monotone in name order, so paths between two
      nodes of a domain {e never leave the domain} — SkipNet's explicit
      path locality;
    - {!route_by_numeric}: for hashed content; climbs numeric-prefix
      rings with clockwise name-order walks. This mode offers {e no
      guaranteed inter-domain path convergence}, which is exactly the
      gap the paper's §6 points out and Canon closes; the [skipnet]
      benchmark quantifies it against Crescendo. *)

open Canon_overlay

type t

val build : Population.t -> t
(** Names are the hierarchy order of [Population.leaf_of_node] (ties by
    node index); numeric identifiers are the population's ids. *)

val size : t -> int

val name_rank : t -> int -> int
(** Position of a node in name order. *)

val node_of_rank : t -> int -> int

val mean_degree : t -> float
(** Mean number of distinct pointer targets per node. *)

val route_by_name : t -> src:int -> dst:int -> Route.t
(** Monotone name-order routing; always reaches [dst]. *)

val route_by_numeric : t -> src:int -> key:Canon_idspace.Id.t -> Route.t
(** Routes toward the node whose numeric identifier best matches [key]
    (longest common prefix, ties broken by the search); every ring-walk
    step counts as a hop. *)
