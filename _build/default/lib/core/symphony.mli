(** Symphony (Manku, Bawa, Raghavan; USITS 2003) — randomized small-world
    DHT over the ring, second baseline (paper §3.1).

    Each node keeps a link to its successor plus [floor(log2 n)] long
    links; a long link spans a clockwise distance [x * 2{^N}] where [x]
    is drawn from the harmonic density [1/(x ln n)] on [[1/n, 1]].
    Greedy clockwise routing takes O(log{^2} n / k) hops with k long
    links; with 1-lookahead this drops to O(log n / log log n). *)

open Canon_overlay

val build : Canon_rng.Rng.t -> Population.t -> Overlay.t
(** Flat Symphony; the hierarchy, if any, is ignored. *)

val harmonic_distance : Canon_rng.Rng.t -> n:int -> int
(** One harmonic draw: a clockwise distance in [[1, 2{^N})] distributed
    as [x * 2{^N}] with [x ~ 1/(x ln n)] on [[1/n, 1)]. Requires
    [n >= 2]. *)

val long_links_per_node : int -> int
(** [floor(log2 n)]; 0 when [n <= 1]. *)

val draw_long_links :
  Canon_rng.Rng.t ->
  ids:Canon_idspace.Id.t array ->
  Ring.t ->
  Canon_idspace.Id.t ->
  wanted:int ->
  cap:int ->
  Link_set.t ->
  unit
(** Draws up to [wanted] distinct harmonic long links from identifier
    [id] over [ring] into the accumulator, discarding targets at
    clockwise distance [>= cap] (pass [Id.space] for no cap). Failed
    draws are retried a bounded number of times. Shared with Cacophony,
    which re-applies it per level with Canon's distance cap. *)
