open Canon_idspace
open Canon_overlay
module Rng = Canon_rng.Rng

type choice =
  | Closest
  | Random of Rng.t

(* Count of ring members with identifier in [lo, hi), 0 <= lo <= hi <= space. *)
let count_range ring lo hi =
  Ring.rank_at_or_after ring hi - Ring.rank_at_or_after ring lo

(* The k-th XOR bucket of [id] is the aligned identifier range
   [base, base + 2^k) where base flips bit k of [id] and clears the bits
   below it. *)
let bucket_base id k = (id lxor (1 lsl k)) land lnot ((1 lsl k) - 1)

let closest_in_bucket ring id k =
  (* Bit descent: narrow the aligned range towards the identifier whose
     low bits match [id]'s, i.e. the member minimizing [xor id]. *)
  let lo = ref (bucket_base id k) and len = ref (1 lsl k) in
  if count_range ring !lo (!lo + !len) = 0 then None
  else begin
    while !len > 1 do
      let half = !len / 2 in
      (* First half has the (log2 half)-th bit clear; prefer the half
         matching [id]'s bit to minimize the XOR distance. *)
      let id_bit_set = id land half <> 0 in
      let preferred = if id_bit_set then !lo + half else !lo in
      if count_range ring preferred (preferred + half) > 0 then lo := preferred
      else if id_bit_set then () (* stay in [lo, lo+half) *)
      else lo := !lo + half;
      len := half
    done;
    let rank = Ring.rank_at_or_after ring !lo in
    Some (Ring.node_at ring rank)
  end

let random_in_bucket rng ring id k =
  let base = bucket_base id k in
  let count = count_range ring base (base + (1 lsl k)) in
  if count = 0 then None
  else begin
    let rank = Ring.rank_at_or_after ring base + Rng.int_below rng count in
    Some (Ring.node_at ring rank)
  end

let bucket_member choice ring ~ids:_ id k =
  match choice with
  | Closest -> closest_in_bucket ring id k
  | Random rng -> random_in_bucket rng ring id k

let fill_buckets choice ring ~ids id ~filled acc =
  for k = 0 to Id.bits - 1 do
    if not filled.(k) then
      match bucket_member choice ring ~ids id k with
      | None -> ()
      | Some target ->
          Link_set.add acc target;
          filled.(k) <- true
  done

let build_flat choice pop =
  let n = Population.size pop in
  let ids = pop.Population.ids in
  let global = Ring.of_members ~ids ~members:(Array.init n Fun.id) in
  let links =
    Array.init n (fun node ->
        let acc = Link_set.create ~self:node in
        let filled = Array.make Id.bits false in
        fill_buckets choice global ~ids ids.(node) ~filled acc;
        Link_set.to_array acc)
  in
  Overlay.create pop ~links

let build_hierarchical choice rings =
  let pop = Rings.population rings in
  let ids = pop.Population.ids in
  let links =
    Array.init (Population.size pop) (fun node ->
        let acc = Link_set.create ~self:node in
        let filled = Array.make Id.bits false in
        let chain = Rings.chain rings node in
        Array.iter
          (fun domain -> fill_buckets choice (Rings.ring rings domain) ~ids ids.(node) ~filled acc)
          chain;
        Link_set.to_array acc)
  in
  Overlay.create pop ~links
