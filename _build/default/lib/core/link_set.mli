(** Per-node link accumulator used by every construction: collects link
    targets, silently dropping self-links and duplicates (several finger
    distances often select the same node). *)

type t

val create : self:int -> t

val add : t -> int -> unit
(** Adds a target unless it is [self] or already present. *)

val mem : t -> int -> bool

val cardinal : t -> int

val to_array : t -> int array
(** Targets in insertion order. *)
