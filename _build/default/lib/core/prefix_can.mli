(** The literal CAN construction of §3.4: a binary prefix tree with
    virtual-node padding.

    Node identifiers form a binary prefix tree (left branch 0, right
    branch 1); the root-to-leaf path is the node's identifier, so
    identifiers have different lengths when the tree is uneven. A node
    with a shorter identifier is treated as one {e virtual node} per
    padding of its identifier to the maximum depth. Edges are exactly
    the hypercube edges between virtual identifiers differing in one
    bit; routing is left-to-right bit fixing.

    We build the prefix tree by recursive balanced bisection of the
    node set (the generalization the paper describes yields a
    logarithmic-degree network), so leaf depths differ by at most one
    and each real node stands for at most two virtual nodes.

    This module complements {!Can}/{!Can_can}, which realise the same
    network over the common 32-bit space via the XOR-closest bucket
    rule; the parity benchmark checks both give logarithmic degree and
    indistinguishable hop counts. *)

type t

val build : Canon_rng.Rng.t -> n:int -> t
(** Builds the prefix tree and the hypercube adjacency for [n >= 1]
    nodes. *)

val size : t -> int

val depth : t -> int
(** Maximum identifier length [L]. *)

val prefix_of : t -> int -> int * int
(** [prefix_of t node] is [(bits, length)]: the node's identifier as an
    integer of [length] bits (most significant bit first). *)

val owner : t -> int -> int
(** [owner t key] for a key of [depth t] bits: the unique node whose
    identifier is a prefix of the key. *)

val neighbors : t -> int -> int array
(** Hypercube neighbours (deduplicated). *)

val mean_degree : t -> float

val route : t -> src:int -> key:int -> int list
(** Bit-fixing route from [src] to the owner of [key] (a [depth t]-bit
    value); the returned list starts at [src] and ends at the owner. *)
