(** Cacophony — the Canonical version of Symphony (paper §3.1).

    Each node draws [floor(log2 n_leaf)] harmonic long links inside its
    leaf ring, plus its leaf successor. At each higher level it draws
    [floor(log2 n_level)] harmonic links over that level's ring but
    {e retains only those closer than its successor at the lower level}
    (Canon's condition (b)), and always adds a link to its successor at
    the new level. Degree stays O(log n) overall; routing is greedy
    clockwise (optionally with lookahead), just as in Symphony. *)

open Canon_overlay

val build : Canon_rng.Rng.t -> Rings.t -> Overlay.t
