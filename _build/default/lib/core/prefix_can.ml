module Rng = Canon_rng.Rng

type trie =
  | Leaf of int
  | Branch of trie * trie

type t = {
  trie : trie;
  prefixes : (int * int) array; (* node -> (bits, length) *)
  depth : int;
  neighbors : int array array;
}

let size t = Array.length t.prefixes

let depth t = t.depth

let prefix_of t node = t.prefixes.(node)

(* Walk the trie along the top bits of [key] ([depth] bits) until a
   leaf. *)
let owner t key =
  let rec go trie i =
    match trie with
    | Leaf node -> node
    | Branch (zero, one) ->
        let bit = (key lsr (t.depth - 1 - i)) land 1 in
        go (if bit = 0 then zero else one) (i + 1)
  in
  go t.trie 0

(* All leaves compatible with the [len]-bit prefix [q]: the unique leaf
   above it, or every leaf below it. *)
let compatible_leaves trie q len =
  let rec collect trie acc =
    match trie with
    | Leaf node -> node :: acc
    | Branch (zero, one) -> collect zero (collect one acc)
  in
  let rec go trie i =
    if i = len then collect trie []
    else
      match trie with
      | Leaf node -> [ node ]
      | Branch (zero, one) ->
          let bit = (q lsr (len - 1 - i)) land 1 in
          go (if bit = 0 then zero else one) (i + 1)
  in
  go trie 0

let build rng ~n =
  if n < 1 then invalid_arg "Prefix_can.build: need at least one node";
  (* Balanced bisection: split the population in half (random side gets
     the odd element) until singletons; the path is the identifier. *)
  let prefixes = Array.make n (0, 0) in
  let next = ref 0 in
  let rec split count bits len =
    if count = 1 then begin
      let node = !next in
      incr next;
      prefixes.(node) <- (bits, len);
      Leaf node
    end
    else begin
      let half = count / 2 in
      let left_count = if count mod 2 = 0 then half else if Rng.bool rng then half + 1 else half in
      let zero = split left_count (bits lsl 1) (len + 1) in
      let one = split (count - left_count) ((bits lsl 1) lor 1) (len + 1) in
      Branch (zero, one)
    end
  in
  let trie = split n 0 0 in
  let depth = Array.fold_left (fun acc (_, len) -> max acc len) 0 prefixes in
  let neighbors =
    Array.init n (fun node ->
        let bits, len = prefixes.(node) in
        let acc = Hashtbl.create 16 in
        for i = 0 to len - 1 do
          let q = bits lxor (1 lsl (len - 1 - i)) in
          List.iter
            (fun v -> if v <> node then Hashtbl.replace acc v ())
            (compatible_leaves trie q len)
        done;
        Hashtbl.fold (fun v () out -> v :: out) acc [] |> Array.of_list)
  in
  { trie; prefixes; depth; neighbors }

let neighbors t node = t.neighbors.(node)

let mean_degree t =
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 t.neighbors in
  Float.of_int total /. Float.of_int (max 1 (size t))

let route t ~src ~key =
  if key < 0 || (t.depth < 62 && key >= 1 lsl t.depth) then
    invalid_arg "Prefix_can.route: key out of range";
  let rec go u acc guard =
    if guard > t.depth + 1 then failwith "Prefix_can.route: did not converge"
    else begin
      let bits, len = t.prefixes.(u) in
      let key_prefix = if len = 0 then 0 else key lsr (t.depth - len) in
      if key_prefix = bits then List.rev (u :: acc)
      else begin
        (* Highest differing bit within u's prefix. *)
        let diff = key_prefix lxor bits in
        let i =
          let rec top j = if diff lsr j <> 0 then len - 1 - j else top (j - 1) in
          top (len - 1)
        in
        (* Pad u's identifier with the key's tail, flip bit i, and hop
           to the owner — a hypercube edge by construction. *)
        let a = (bits lsl (t.depth - len)) lor (key land ((1 lsl (t.depth - len)) - 1)) in
        let b = a lxor (1 lsl (t.depth - 1 - i)) in
        go (owner t b) (u :: acc) (guard + 1)
      end
    end
  in
  go src [] 0
