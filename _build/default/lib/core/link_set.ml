type t = {
  self : int;
  seen : (int, unit) Hashtbl.t;
  mutable targets : int list; (* reversed insertion order *)
  mutable count : int;
}

let create ~self = { self; seen = Hashtbl.create 24; targets = []; count = 0 }

let mem t target = Hashtbl.mem t.seen target

let add t target =
  if target <> t.self && not (mem t target) then begin
    Hashtbl.add t.seen target ();
    t.targets <- target :: t.targets;
    t.count <- t.count + 1
  end

let cardinal t = t.count

let to_array t =
  let out = Array.make t.count t.self in
  let rec fill i = function
    | [] -> ()
    | x :: rest ->
        out.(i) <- x;
        fill (i - 1) rest
  in
  fill (t.count - 1) t.targets;
  out
