open Canon_idspace
open Canon_overlay

let links_of_node rings node =
  let pop = Rings.population rings in
  let id = pop.Population.ids.(node) in
  let acc = Link_set.create ~self:node in
  let chain = Rings.chain rings node in
  (* Leaf level: plain Chord inside the leaf ring. *)
  let leaf_ring = Rings.ring rings chain.(0) in
  Array.iter (Link_set.add acc) (Chord.links_of_id leaf_ring id ~self:node);
  (* Bottom-up merges: at each higher level only nodes strictly closer
     than the closest own-ring node (condition (b)) are candidates, so
     we scan finger distances below [d_own] only. *)
  let d_own = ref (Ring.successor_distance leaf_ring id) in
  for level = 1 to Array.length chain - 1 do
    let ring = Rings.ring rings chain.(level) in
    let k = ref 0 in
    while !k < Id.bits && 1 lsl !k < !d_own do
      (match Ring.finger ring id (1 lsl !k) with
      | None -> ()
      | Some target ->
          let dist = Id.distance id pop.Population.ids.(target) in
          if dist < !d_own then Link_set.add acc target);
      incr k
    done;
    d_own := min !d_own (Ring.successor_distance ring id)
  done;
  Link_set.to_array acc

let build rings =
  let pop = Rings.population rings in
  let links = Array.init (Population.size pop) (fun node -> links_of_node rings node) in
  Overlay.create pop ~links
