let build pop = Xor_dht.build_flat Xor_dht.Closest pop
