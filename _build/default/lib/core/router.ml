open Canon_idspace
open Canon_overlay

exception Stuck of { at : int; key : Id.t; hops : int }

(* A generous hop budget: any genuine route is O(log n); if we exceed
   the node count something is structurally wrong. *)
let budget overlay = Overlay.size overlay + 1

let collect overlay src step key =
  let max_hops = budget overlay in
  let rec go u acc hops =
    match step u with
    | None -> Route.{ nodes = Array.of_list (List.rev (u :: acc)) }
    | Some v ->
        if hops >= max_hops then raise (Stuck { at = u; key; hops });
        go v (u :: acc) (hops + 1)
  in
  go src [] 0

let collect_generic ~n src step key =
  let max_hops = n + 1 in
  let rec go u acc hops =
    match step u with
    | None -> Route.{ nodes = Array.of_list (List.rev (u :: acc)) }
    | Some v ->
        if hops >= max_hops then raise (Stuck { at = u; key; hops });
        go v (u :: acc) (hops + 1)
  in
  go src [] 0

let greedy_clockwise_generic ~n ~id ~links ~src ~key =
  let step u =
    let du = Id.distance (id u) key in
    if du = 0 then None
    else begin
      (* Largest clockwise progress that does not overshoot the key:
         maximize distance(u, v) subject to distance(u, v) <= du,
         equivalently minimize distance(v, key). *)
      let best = ref (-1) and best_remaining = ref du in
      Array.iter
        (fun v ->
          let remaining = Id.distance (id v) key in
          if Id.distance (id u) (id v) <= du && remaining < !best_remaining then begin
            best := v;
            best_remaining := remaining
          end)
        (links u);
      if !best < 0 then None else Some !best
    end
  in
  collect_generic ~n src step key

let greedy_clockwise overlay ~src ~key =
  greedy_clockwise_generic ~n:(Overlay.size overlay)
    ~id:(Overlay.id overlay)
    ~links:(Overlay.links overlay)
    ~src ~key

let greedy_clockwise_lookahead overlay ~src ~key =
  let step u =
    let du = Id.distance (Overlay.id overlay u) key in
    if du = 0 then None
    else begin
      (* Score of standing at [w]: remaining clockwise distance to the
         key. A first hop [v] is scored by the best reachable remaining
         distance among [v] itself and [v]'s no-overshoot neighbours. *)
      let remaining w = Id.distance (Overlay.id overlay w) key in
      let no_overshoot a b =
        Id.distance (Overlay.id overlay a) (Overlay.id overlay b) <= remaining a
      in
      let score v =
        let best = ref (remaining v) in
        Array.iter
          (fun w -> if no_overshoot v w && remaining w < !best then best := remaining w)
          (Overlay.links overlay v);
        !best
      in
      let best = ref (-1) and best_score = ref du and best_progress = ref (-1) in
      Array.iter
        (fun v ->
          if no_overshoot u v then begin
            let s = score v in
            let progress = du - remaining v in
            if s < !best_score || (s = !best_score && progress > !best_progress) then begin
              best := v;
              best_score := s;
              best_progress := progress
            end
          end)
        (Overlay.links overlay u);
      if !best < 0 then None else Some !best
    end
  in
  collect overlay src step key

let greedy_xor overlay ~src ~key =
  let step u =
    let du = Id.xor_distance (Overlay.id overlay u) key in
    if du = 0 then None
    else begin
      let best = ref (-1) and best_d = ref du in
      Array.iter
        (fun v ->
          let d = Id.xor_distance (Overlay.id overlay v) key in
          if d < !best_d then begin
            best := v;
            best_d := d
          end)
        (Overlay.links overlay u);
      if !best < 0 then None else Some !best
    end
  in
  collect overlay src step key

let greedy_clockwise_avoiding overlay ~dead ~src ~key =
  if dead src then invalid_arg "Router.greedy_clockwise_avoiding: dead source";
  let max_hops = budget overlay in
  let step u =
    let du = Id.distance (Overlay.id overlay u) key in
    if du = 0 then None
    else begin
      let best = ref (-1) and best_remaining = ref du in
      Array.iter
        (fun v ->
          if not (dead v) then begin
            let remaining = Id.distance (Overlay.id overlay v) key in
            if Id.distance (Overlay.id overlay u) (Overlay.id overlay v) <= du
               && remaining < !best_remaining
            then begin
              best := v;
              best_remaining := remaining
            end
          end)
        (Overlay.links overlay u);
      if !best < 0 then None else Some !best
    end
  in
  (* Unlike the infallible engines we must distinguish "arrived at the
     key's live predecessor among reachable nodes" from "stranded":
     stranded means a live link toward the key exists somewhere but this
     node cannot see it — detectable as: some dead link of [u] would
     have made progress. *)
  let rec go u acc hops =
    match step u with
    | Some v ->
        if hops >= max_hops then raise (Stuck { at = u; key; hops });
        go v (u :: acc) (hops + 1)
    | None ->
        let du = Id.distance (Overlay.id overlay u) key in
        let blocked =
          du <> 0
          && Array.exists
               (fun v ->
                 dead v
                 && Id.distance (Overlay.id overlay u) (Overlay.id overlay v) <= du)
               (Overlay.links overlay u)
        in
        if blocked then None else Some Route.{ nodes = Array.of_list (List.rev (u :: acc)) }
  in
  go src [] 0
