(** Pastry (Rowstron & Druschel, Middleware 2001) and its Canonical
    version (paper §3.3).

    Identifiers are read as a sequence of base-2{^b} digits (b = 4, so
    eight hexadecimal digits of a 32-bit id). A node's routing table has
    one cell per (prefix length l, digit d): a link to {e some} node
    sharing the first [l] digits and holding digit [d] at position [l]
    — a nondeterministic choice, which is why the paper calls Pastry
    and Kademlia "hypercube versions of nondeterministic Chord". Each
    cell is an aligned identifier range, so construction is two binary
    searches per cell.

    Prefix routing fixes at least one digit per hop; since every cell
    containing the target is non-empty by definition, greedy XOR descent
    (which is never worse than one-digit fixing) reaches the target.

    The Canonical version fills cells bottom-up over the node's domain
    chain, never re-filling a cell already filled within an inner
    domain — the same Canon economy and within-domain completeness
    invariant as {!Xor_dht}, with the same consequences: O(log n)
    degree, intra-domain locality, inter-domain convergence. *)

open Canon_overlay

val digit_bits : int
(** b = 4. *)

val digits : int
(** Digits per identifier: [Id.bits / digit_bits] = 8. *)

val build : Canon_rng.Rng.t -> Population.t -> Overlay.t
(** Flat Pastry. *)

val build_canonical : Canon_rng.Rng.t -> Rings.t -> Overlay.t
(** Canonical Pastry. *)
