(** The XOR-metric DHT engine shared by Kademlia/Kandy (paper §3.3) and
    the logarithmic-degree CAN / Can-Can (paper §3.4).

    Flat rule: for each [0 <= k < N], a node links to one node at XOR
    distance in [[2{^k}, 2{^k+1})] — its k-th "bucket" — when that
    bucket is non-empty. The bucket of a node [m] is exactly the set of
    identifiers agreeing with [m] above bit [k] and differing at bit
    [k]: a single aligned, contiguous identifier range, so selection is
    two binary searches. Kademlia picks a {e random} bucket member
    (nondeterministic); the generalized CAN picks the XOR-{e closest}
    member (deterministic bit-fixing hypercube edge — the aligned-range
    equivalent of CAN's virtual-node construction).

    Hierarchical (Canon) rule: buckets are filled bottom-up over the
    node's domain chain; a bucket already filled at a lower level is
    never re-filled at a higher one. This is the Canon economy — links
    into sibling rings exist only where the own ring has none — and it
    guarantees the invariant that makes greedy XOR routing live: for
    every domain [D] containing node [m] and every bucket of [m]
    non-empty within [D], [m] links to a node of [D] in that bucket.

    Note (documented in DESIGN.md): the paper's one-paragraph sketch
    caps higher-level candidates by the shortest lower-level link
    distance; applied literally that rule can disconnect the overlay
    (two mutually-close nodes both discard their only links toward a
    third). The fill-empty-buckets-only rule above keeps no more links
    than the paper's and restores correctness. *)

open Canon_overlay

type choice =
  | Closest  (** deterministic, bit-fixing (generalized CAN) *)
  | Random of Canon_rng.Rng.t  (** uniform bucket member (Kademlia) *)

val build_flat : choice -> Population.t -> Overlay.t

val build_hierarchical : choice -> Rings.t -> Overlay.t

val bucket_member : choice -> Ring.t -> ids:Canon_idspace.Id.t array ->
  Canon_idspace.Id.t -> int -> int option
(** [bucket_member choice ring ~ids id k] selects a member of [id]'s
    k-th XOR bucket within [ring], or [None] if the bucket is empty. *)
