(** Crescendo — the Canonical version of Chord (paper §2), the paper's
    primary contribution.

    Every node first builds ordinary Chord links inside its lowest-level
    (leaf) domain ring. Sibling rings are then merged bottom-up: during
    the merge producing the ring of domain [D], a node [m] adds a link
    to a node [m'] of a sibling ring iff

    - (a) [m'] is the closest node at least distance [2{^k}] away for
      some [k], applied over the union of the merged rings, and
    - (b) [m'] is strictly closer to [m] than every node of [m]'s own
      (pre-merge) ring.

    Consequently a node links to its successor in the ring at {e every}
    level of its domain chain, which is what makes greedy clockwise
    routing hierarchical: routes never leave the lowest domain
    containing source and destination (intra-domain locality), and all
    routes from a domain to an outside target exit through the target's
    closest predecessor in the domain (inter-domain convergence).

    With a one-level hierarchy, Crescendo is exactly Chord. *)

open Canon_overlay

val build : Rings.t -> Overlay.t
(** Deterministic given the rings. Domains with no nodes contribute
    nothing. *)

val links_of_node : Rings.t -> int -> int array
(** The link set of a single node, leaf-to-root (used by dynamic
    maintenance to compute the links a joining node must establish). *)
