open Canon_idspace
open Canon_overlay

let links_of_node rings node =
  let pop = Rings.population rings in
  let ids = pop.Population.ids in
  let id = ids.(node) in
  let acc = Link_set.create ~self:node in
  let chain = Rings.chain rings node in
  (* Leaf level: the LAN clique. *)
  let leaf_ring = Rings.ring rings chain.(0) in
  Array.iter (fun peer -> Link_set.add acc peer) (Ring.members leaf_ring);
  (* Higher levels: ordinary Crescendo merges; condition (b)'s cap is
     the distance to the nearest LAN peer. *)
  let d_own = ref (Ring.successor_distance leaf_ring id) in
  for level = 1 to Array.length chain - 1 do
    let ring = Rings.ring rings chain.(level) in
    let k = ref 0 in
    while !k < Id.bits && 1 lsl !k < !d_own do
      (match Ring.finger ring id (1 lsl !k) with
      | None -> ()
      | Some target ->
          let dist = Id.distance id ids.(target) in
          if dist < !d_own then Link_set.add acc target);
      incr k
    done;
    d_own := min !d_own (Ring.successor_distance ring id)
  done;
  Link_set.to_array acc

let build rings =
  let pop = Rings.population rings in
  let links = Array.init (Population.size pop) (fun node -> links_of_node rings node) in
  Overlay.create pop ~links
