open Canon_idspace
open Canon_overlay
module Rng = Canon_rng.Rng

let long_links_per_node n = if n <= 1 then 0 else Id.log2_floor n

let harmonic_distance rng ~n =
  if n < 2 then invalid_arg "Symphony.harmonic_distance: need n >= 2";
  (* Inverse-CDF sampling: x = n^(u-1) has density 1/(x ln n) on [1/n, 1). *)
  let u = Rng.float rng in
  let x = Float.of_int n ** (u -. 1.0) in
  let d = int_of_float (x *. Float.of_int Id.space) in
  max 1 (min (Id.space - 1) d)

(* Draw [wanted] harmonic long links for the node with identifier [id]
   against [ring], keeping only targets at clockwise distance below
   [cap]. Failed draws (self, duplicate, beyond cap) are redrawn a
   bounded number of times, as in Symphony's own construction. *)
let draw_long_links rng ~ids ring id ~wanted ~cap acc =
  let n = Ring.size ring in
  if n >= 2 && wanted > 0 then begin
    let added = ref 0 and attempts = ref 0 in
    while !added < wanted && !attempts < 16 * wanted do
      incr attempts;
      let d = harmonic_distance rng ~n in
      let target = Ring.first_at_or_after ring (Id.add id d) in
      let dist = Id.distance id ids.(target) in
      if dist > 0 && dist < cap && not (Link_set.mem acc target) then begin
        Link_set.add acc target;
        incr added
      end
    done
  end

let build rng pop =
  let n = Population.size pop in
  let ids = pop.Population.ids in
  let global = Ring.of_members ~ids ~members:(Array.init n Fun.id) in
  let links =
    Array.init n (fun node ->
        let id = ids.(node) in
        let acc = Link_set.create ~self:node in
        if n >= 2 then begin
          Link_set.add acc (Ring.successor_of_id global id);
          draw_long_links rng ~ids global id ~wanted:(long_links_per_node n) ~cap:Id.space acc
        end;
        Link_set.to_array acc)
  in
  Overlay.create pop ~links
