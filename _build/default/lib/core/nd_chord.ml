open Canon_idspace
open Canon_overlay
module Rng = Canon_rng.Rng

let add_bucket_links rng ring id ~cap acc =
  let k = ref 0 in
  while !k < Id.bits && 1 lsl !k < cap do
    let lo = 1 lsl !k in
    let len = min (lo) (cap - lo) in
    (* Arc of clockwise distances [lo, lo+len) from id, where
       lo + len <= min(2^(k+1), cap). *)
    let start = Id.add id lo in
    let count = Ring.arc_count ring ~start ~len in
    if count > 0 then Link_set.add acc (Ring.arc_nth ring ~start ~len (Rng.int_below rng count));
    incr k
  done

let build rng pop =
  let n = Population.size pop in
  let ids = pop.Population.ids in
  let global = Ring.of_members ~ids ~members:(Array.init n Fun.id) in
  let links =
    Array.init n (fun node ->
        let id = ids.(node) in
        let acc = Link_set.create ~self:node in
        if n >= 2 then begin
          Link_set.add acc (Ring.successor_of_id global id);
          add_bucket_links rng global id ~cap:Id.space acc
        end;
        Link_set.to_array acc)
  in
  Overlay.create pop ~links
