let build rng rings = Xor_dht.build_hierarchical (Xor_dht.Random rng) rings
