(** Nondeterministic Chord (CFS / Gummadi et al., paper §3.2).

    Instead of the closest node at least [2{^k}] away, a node links to a
    {e uniformly random} node at clockwise distance in [[2{^k},
    2{^k+1})] for each [k], plus its successor. Routing properties are
    almost identical to Symphony. *)

open Canon_overlay

val build : Canon_rng.Rng.t -> Population.t -> Overlay.t

val add_bucket_links :
  Canon_rng.Rng.t ->
  Ring.t ->
  Canon_idspace.Id.t ->
  cap:int ->
  Link_set.t ->
  unit
(** For each [k] with [2{^k} < cap], links to a uniformly random node at
    clockwise distance in [[2{^k}, min(2{^k+1}, cap))] of [id], when
    that arc is non-empty. [cap = Id.space] recovers the flat rule;
    Canonical constructions pass the lower-level successor distance,
    restricting the nondeterministic choice exactly as §3.2 prescribes. *)
