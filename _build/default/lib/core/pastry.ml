open Canon_idspace
open Canon_overlay
module Rng = Canon_rng.Rng

let digit_bits = 4

let digits = Id.bits / digit_bits

(* Digit [l] (0 = most significant) of an identifier. *)
let digit id l = (id lsr (Id.bits - ((l + 1) * digit_bits))) land ((1 lsl digit_bits) - 1)

(* The identifier range of routing cell (l, d) of [id]: all ids sharing
   the first [l] digits of [id] and carrying digit [d] at position [l].
   A single aligned range of length 2^(bits - (l+1)*b). *)
let cell_range id l d =
  let suffix_bits = Id.bits - ((l + 1) * digit_bits) in
  let prefix = Id.prefix id (l * digit_bits) in
  let base = ((prefix lsl digit_bits) lor d) lsl suffix_bits in
  (base, 1 lsl suffix_bits)

let count_range ring lo len =
  Ring.rank_at_or_after ring (lo + len) - Ring.rank_at_or_after ring lo

let random_in_cell rng ring id l d =
  let base, len = cell_range id l d in
  let count = count_range ring base len in
  if count = 0 then None
  else begin
    let rank = Ring.rank_at_or_after ring base + Rng.int_below rng count in
    Some (Ring.node_at ring rank)
  end

(* Fill every still-empty routing cell of [id] from [ring]. [filled] is
   indexed by l * 2^b + d. *)
let fill_cells rng ring id ~filled acc =
  for l = 0 to digits - 1 do
    for d = 0 to (1 lsl digit_bits) - 1 do
      let slot = (l lsl digit_bits) lor d in
      if (not filled.(slot)) && d <> digit id l then
        match random_in_cell rng ring id l d with
        | None -> ()
        | Some target ->
            Link_set.add acc target;
            filled.(slot) <- true
    done
  done

let build rng pop =
  let n = Population.size pop in
  let ids = pop.Population.ids in
  let global = Ring.of_members ~ids ~members:(Array.init n Fun.id) in
  let links =
    Array.init n (fun node ->
        let acc = Link_set.create ~self:node in
        let filled = Array.make (digits lsl digit_bits) false in
        fill_cells rng global ids.(node) ~filled acc;
        Link_set.to_array acc)
  in
  Overlay.create pop ~links

let build_canonical rng rings =
  let pop = Rings.population rings in
  let ids = pop.Population.ids in
  let links =
    Array.init (Population.size pop) (fun node ->
        let acc = Link_set.create ~self:node in
        let filled = Array.make (digits lsl digit_bits) false in
        Array.iter
          (fun domain -> fill_cells rng (Rings.ring rings domain) ids.(node) ~filled acc)
          (Rings.chain rings node);
        Link_set.to_array acc)
  in
  Overlay.create pop ~links
