(** Proximity adaptation — the group-based construction of §3.6.

    Nodes sharing the top [T] identifier bits form a group; [T] is
    chosen so the expected group size is a constant. Link rules then
    apply to {e group} identifiers: a rule that demands "the first node
    after id q" is satisfied by {e any} node of q's group, and the
    construction exploits that freedom by picking the group member with
    the lowest physical latency from the linking node. Nodes within a
    group form a dense (complete) network.

    - [Chord (Prox.)]: Chord built on groups — per [k < T] one link into
      group [g + 2{^k}] (the first non-empty group at or after it),
      lowest-latency member; plus the intra-group clique. Routing goes
      group-greedy, then one intra-group hop.
    - [Crescendo (Prox.)]: ordinary Crescendo below the root; at the
      top-level merge each surviving finger picks the lowest-latency
      node among all admissible candidates — the arc
      [\[2{^k}, min(2{^k+1}, d_own))] allowed by conditions (a) and (b)
      — sampling at most 32 of them (the paper notes s = 32 suffices
      for proximity neighbour selection). The exact top-level successor
      is always kept so greedy clockwise routing stays exact. *)

open Canon_overlay

type t

val default_group_size : int
(** 16 — the constant expected group size (the paper cites measurements
    that sampling s = 32 nodes suffices; a 16-node group plus the
    clique gives comparable choice at comparable state). *)

val group_bits : n:int -> group_size:int -> int
(** [T = max 0 (floor(log2(n / group_size)))]. *)

val build_chord :
  ?group_size:int ->
  Population.t ->
  node_latency:(int -> int -> float) ->
  t

val build_crescendo :
  ?group_size:int ->
  Rings.t ->
  node_latency:(int -> int -> float) ->
  t

val overlay : t -> Overlay.t

val route : t -> src:int -> dst:int -> Route.t
(** Route to a destination node (group-greedy + clique hop for Chord;
    plain greedy clockwise for Crescendo). *)
