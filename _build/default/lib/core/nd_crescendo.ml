open Canon_idspace
open Canon_overlay

let links_of_node rng rings node =
  let pop = Rings.population rings in
  let ids = pop.Population.ids in
  let id = ids.(node) in
  let acc = Link_set.create ~self:node in
  let chain = Rings.chain rings node in
  let leaf_ring = Rings.ring rings chain.(0) in
  if Ring.size leaf_ring >= 2 then begin
    Link_set.add acc (Ring.successor_of_id leaf_ring id);
    Nd_chord.add_bucket_links rng leaf_ring id ~cap:Id.space acc
  end;
  let d_own = ref (Ring.successor_distance leaf_ring id) in
  for level = 1 to Array.length chain - 1 do
    let ring = Rings.ring rings chain.(level) in
    if Ring.size ring >= 2 then begin
      Nd_chord.add_bucket_links rng ring id ~cap:!d_own acc;
      (* Successor at the new level keeps the merged ring connected. *)
      Link_set.add acc (Ring.successor_of_id ring id)
    end;
    d_own := min !d_own (Ring.successor_distance ring id)
  done;
  Link_set.to_array acc

let build rng rings =
  let pop = Rings.population rings in
  let links = Array.init (Population.size pop) (fun node -> links_of_node rng rings node) in
  Overlay.create pop ~links
