open Canon_idspace
open Canon_overlay

let links_of_node rng rings node =
  let pop = Rings.population rings in
  let ids = pop.Population.ids in
  let id = ids.(node) in
  let acc = Link_set.create ~self:node in
  let chain = Rings.chain rings node in
  (* Leaf level: plain Symphony within the leaf ring. *)
  let leaf_ring = Rings.ring rings chain.(0) in
  if Ring.size leaf_ring >= 2 then begin
    Link_set.add acc (Ring.successor_of_id leaf_ring id);
    Symphony.draw_long_links rng ~ids leaf_ring id
      ~wanted:(Symphony.long_links_per_node (Ring.size leaf_ring))
      ~cap:Id.space acc
  end;
  let d_own = ref (Ring.successor_distance leaf_ring id) in
  for level = 1 to Array.length chain - 1 do
    let ring = Rings.ring rings chain.(level) in
    if Ring.size ring >= 2 then begin
      (* Harmonic draws over the level ring, retained only when closer
         than the lower-level successor. *)
      Symphony.draw_long_links rng ~ids ring id
        ~wanted:(Symphony.long_links_per_node (Ring.size ring))
        ~cap:!d_own acc;
      (* The successor at the new level is always linked. *)
      let succ = Ring.successor_of_id ring id in
      Link_set.add acc succ
    end;
    d_own := min !d_own (Ring.successor_distance ring id)
  done;
  Link_set.to_array acc

let build rng rings =
  let pop = Rings.population rings in
  let links = Array.init (Population.size pop) (fun node -> links_of_node rng rings node) in
  Overlay.create pop ~links
