lib/core/hybrid.mli: Canon_overlay Overlay Rings
