lib/core/link_set.ml: Array Hashtbl
