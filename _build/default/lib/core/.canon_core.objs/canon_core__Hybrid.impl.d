lib/core/hybrid.ml: Array Canon_idspace Canon_overlay Id Link_set Overlay Population Ring Rings
