lib/core/skipnet.mli: Canon_idspace Canon_overlay Population Route
