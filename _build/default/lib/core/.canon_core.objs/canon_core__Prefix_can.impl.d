lib/core/prefix_can.ml: Array Canon_rng Float Hashtbl List
