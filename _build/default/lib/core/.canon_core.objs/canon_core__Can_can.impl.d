lib/core/can_can.ml: Xor_dht
