lib/core/cacophony.ml: Array Canon_idspace Canon_overlay Id Link_set Overlay Population Ring Rings Symphony
