lib/core/router.ml: Array Canon_idspace Canon_overlay Id List Overlay Route
