lib/core/link_set.mli:
