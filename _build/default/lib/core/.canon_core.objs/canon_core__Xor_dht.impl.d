lib/core/xor_dht.ml: Array Canon_idspace Canon_overlay Canon_rng Fun Id Link_set Overlay Population Ring Rings
