lib/core/skipnet.ml: Array Canon_idspace Canon_overlay Float Fun Hashtbl Id Int List Population Route Router
