lib/core/chord.mli: Canon_idspace Canon_overlay Overlay Population Ring
