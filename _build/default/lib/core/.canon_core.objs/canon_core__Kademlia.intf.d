lib/core/kademlia.mli: Canon_overlay Canon_rng Overlay Population
