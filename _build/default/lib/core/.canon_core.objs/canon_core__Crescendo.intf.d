lib/core/crescendo.mli: Canon_overlay Overlay Rings
