lib/core/chord.ml: Array Canon_idspace Canon_overlay Fun Id Link_set Overlay Population Ring
