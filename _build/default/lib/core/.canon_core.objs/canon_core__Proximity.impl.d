lib/core/proximity.ml: Array Canon_hierarchy Canon_idspace Canon_overlay Chord Fun Id Link_set List Overlay Population Ring Rings Route Router
