lib/core/kandy.mli: Canon_overlay Canon_rng Overlay Rings
