lib/core/kademlia.ml: Xor_dht
