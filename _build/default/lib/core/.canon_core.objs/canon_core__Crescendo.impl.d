lib/core/crescendo.ml: Array Canon_idspace Canon_overlay Chord Id Link_set Overlay Population Ring Rings
