lib/core/can.mli: Canon_overlay Overlay Population
