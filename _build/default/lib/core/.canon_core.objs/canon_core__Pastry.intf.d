lib/core/pastry.mli: Canon_overlay Canon_rng Overlay Population Rings
