lib/core/proximity.mli: Canon_overlay Overlay Population Rings Route
