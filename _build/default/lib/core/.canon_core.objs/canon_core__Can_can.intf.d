lib/core/can_can.mli: Canon_overlay Overlay Rings
