lib/core/symphony.ml: Array Canon_idspace Canon_overlay Canon_rng Float Fun Id Link_set Overlay Population Ring
