lib/core/cacophony.mli: Canon_overlay Canon_rng Overlay Rings
