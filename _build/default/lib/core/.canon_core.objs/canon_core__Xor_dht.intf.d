lib/core/xor_dht.mli: Canon_idspace Canon_overlay Canon_rng Overlay Population Ring Rings
