lib/core/nd_chord.mli: Canon_idspace Canon_overlay Canon_rng Link_set Overlay Population Ring
