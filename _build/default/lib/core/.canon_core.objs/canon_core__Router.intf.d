lib/core/router.mli: Canon_idspace Canon_overlay Id Overlay Route
