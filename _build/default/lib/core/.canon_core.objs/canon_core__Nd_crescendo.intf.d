lib/core/nd_crescendo.mli: Canon_overlay Canon_rng Overlay Rings
