lib/core/symphony.mli: Canon_idspace Canon_overlay Canon_rng Link_set Overlay Population Ring
