lib/core/nd_crescendo.ml: Array Canon_idspace Canon_overlay Id Link_set Nd_chord Overlay Population Ring Rings
