lib/core/prefix_can.mli: Canon_rng
