lib/core/can.ml: Xor_dht
