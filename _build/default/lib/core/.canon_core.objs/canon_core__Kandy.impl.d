lib/core/kandy.ml: Xor_dht
