(** Routing engines.

    All routing in the paper is greedy and memoryless: a node inspects
    only its own links (plus, with lookahead, its neighbours' links) and
    forwards. Three engines cover every system in the repository:

    - {!greedy_clockwise}: Chord, Crescendo, Symphony, Cacophony,
      nondeterministic Chord/Crescendo. Routes toward a key by taking
      the link that gets closest to the key clockwise without
      overshooting it; terminates at the key's closest predecessor
      among the reachable structure. Crescendo's hierarchical behaviour
      (§2.2) — intra-domain locality, inter-domain convergence — is an
      emergent property of this rule; no extra mechanism exists.
    - {!greedy_clockwise_lookahead}: Symphony/Cacophony's 1-lookahead
      variant (§3.1) that examines neighbours' neighbours and moves to
      the first hop of the best 2-hop pair.
    - {!greedy_xor}: Kademlia/Kandy/CAN/Can-Can bit-fixing: each hop
      must strictly decrease the XOR distance to the key; terminates at
      a local minimum (the key's owner when the adjacency is a valid
      hypercube structure). *)

open Canon_idspace
open Canon_overlay

exception Stuck of { at : int; key : Id.t; hops : int }
(** Raised when a route exceeds the hop budget — always a construction
    bug, never expected on a well-formed overlay. *)

val greedy_clockwise : Overlay.t -> src:int -> key:Id.t -> Route.t
(** Route from [src] toward [key]; the path ends at the first node
    having no link that moves clockwise-closer to [key] without passing
    it. On any overlay whose every node links to its global successor,
    that final node is the global predecessor of [key]. *)

val greedy_clockwise_generic :
  n:int ->
  id:(int -> Id.t) ->
  links:(int -> int array) ->
  src:int ->
  key:Id.t ->
  Route.t
(** The same engine over any adjacency (used by the dynamic-maintenance
    simulator, whose link state is mutable). [n] bounds the hop budget. *)

val greedy_clockwise_lookahead : Overlay.t -> src:int -> key:Id.t -> Route.t
(** Same termination behaviour as {!greedy_clockwise} but each step
    picks the neighbour whose own best next step lands closest to the
    key (Symphony's "greedy routing with a lookahead"). *)

val greedy_xor : Overlay.t -> src:int -> key:Id.t -> Route.t
(** Route by strictly decreasing XOR distance; ends where no link
    improves. *)

val greedy_clockwise_avoiding :
  Overlay.t -> dead:(int -> bool) -> src:int -> key:Id.t -> Route.t option
(** Greedy clockwise routing that never forwards to a node for which
    [dead] is true (crashed, unrepaired). Returns [None] when the
    message strands at a node whose every useful link is dead — the
    quantity the fault-isolation experiment measures. [src] must be
    alive. *)
