(** Flat Chord (Stoica et al., SIGCOMM 2001) — the paper's primary
    baseline.

    Each node with identifier [m] links, for every [0 <= k < N], to the
    closest node at least clockwise distance [2{^k}] away. The [k = 0]
    link is the node's successor, so greedy clockwise routing is always
    live. Expected out-degree is at most [log2(n-1) + 1] (paper
    Theorem 1) and expected route length at most [log2(n-1)/2 + 1/2]
    (Theorem 4). *)

open Canon_overlay

val build : Population.t -> Overlay.t
(** Deterministic given the population: the hierarchy, if any, is
    ignored — Chord is flat. *)

val links_of_id :
  Ring.t -> Canon_idspace.Id.t -> self:int -> int array
(** The Chord link rule applied from one identifier against an
    arbitrary ring (also used by the maintenance protocol when a node
    recomputes its fingers). [self] is excluded from the result. *)
