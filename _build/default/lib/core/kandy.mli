(** Kandy — the Canonical version of Kademlia (paper §3.3).

    Buckets are filled bottom-up over the node's domain chain with
    uniformly random members; buckets already filled within a lower
    (inner) domain are never re-filled at higher levels, which is the
    Canon economy of links. See {!Xor_dht} for the routing-liveness
    invariant this preserves. *)

open Canon_overlay

val build : Canon_rng.Rng.t -> Rings.t -> Overlay.t
