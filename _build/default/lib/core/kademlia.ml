let build rng pop = Xor_dht.build_flat (Xor_dht.Random rng) pop
