(** Can-Can — the Canonical version of the logarithmic-degree CAN
    (paper §3.4): "traditional CAN edges are constructed at the lowest
    level of the hierarchy, and a node creates a link at a higher level
    only if it is a valid CAN edge and is shorter than the shortest link
    at the lower level". Realised as the deterministic-choice variant of
    the Canon XOR merge; see {!Xor_dht}. *)

open Canon_overlay

val build : Rings.t -> Overlay.t
(** Deterministic. *)
