(** Heterogeneous per-level routing structures (paper §3.5).

    Canon does not require the same structure at every level. The
    motivating case: nodes of a lowest-level domain share a LAN with
    cheap broadcast, so the leaf "ring" can simply be a complete graph
    ("there may be efficient broadcast primitives available on the LAN
    which may allow setting up a complete graph among the nodes"),
    while the merges above stay ordinary Crescendo — each node links
    into sibling rings only closer than its nearest LAN peer.

    Routing is unchanged greedy clockwise: within the leaf the clique
    reaches the right node in one hop; above it the Crescendo rings take
    over. Locality and convergence hold exactly as for Crescendo. *)

open Canon_overlay

val build : Rings.t -> Overlay.t
(** Clique leaf domains, Crescendo merges above. Deterministic. *)
