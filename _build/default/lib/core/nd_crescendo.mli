(** Nondeterministic Crescendo — the Canonical version of
    nondeterministic Chord (paper §3.2).

    Leaf rings use the nondeterministic Chord rule; at each merge a node
    may exercise its nondeterministic choice {e only among nodes closer
    than the closest node of its own ring} — the paper's example: with
    own-ring closest at distance 12 and bucket [8, 16), the choice is
    restricted to nodes at distances [8, 12). A successor link is kept
    at every level so greedy clockwise routing stays live. *)

open Canon_overlay

val build : Canon_rng.Rng.t -> Rings.t -> Overlay.t
