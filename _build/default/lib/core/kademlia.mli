(** Kademlia (Maymounkov & Mazieres, IPTPS 2002) — flat XOR-metric DHT,
    baseline for Kandy (paper §3.3).

    One link per non-empty XOR bucket, chosen uniformly at random (the
    paper ignores Kademlia's per-bucket replica lists, and so do we).
    Routing is greedy XOR descent. *)

open Canon_overlay

val build : Canon_rng.Rng.t -> Population.t -> Overlay.t
