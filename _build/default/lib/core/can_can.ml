let build rings = Xor_dht.build_hierarchical Xor_dht.Closest rings
