open Canon_idspace
open Canon_overlay

let links_of_id ring id ~self =
  let acc = Link_set.create ~self in
  for k = 0 to Id.bits - 1 do
    match Ring.finger ring id (1 lsl k) with
    | None -> ()
    | Some target -> Link_set.add acc target
  done;
  Link_set.to_array acc

let build pop =
  let n = Population.size pop in
  let global = Ring.of_members ~ids:pop.Population.ids ~members:(Array.init n Fun.id) in
  let links =
    Array.init n (fun node -> links_of_id global pop.Population.ids.(node) ~self:node)
  in
  Overlay.create pop ~links
