(** Logarithmic-degree CAN (paper §3.4).

    The paper generalizes CAN to a logarithmic-degree network whose node
    identifiers form a binary prefix tree and whose edges are hypercube
    edges, routed "by simple left-to-right bit fixing, or equivalently,
    by greedy routing using the XOR metric". We realise that network
    over the common 32-bit identifier space: each node links, per XOR
    bucket, to the bucket member XOR-closest to itself — exactly the
    bit-fixing hypercube edge the virtual-node padding would produce
    (the padding makes a shorter-prefix node present at every extension
    of its prefix; the closest-member rule selects the same target). *)

open Canon_overlay

val build : Population.t -> Overlay.t
(** Deterministic. *)
