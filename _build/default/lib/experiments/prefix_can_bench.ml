open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let run ~scale ~seed =
  let sizes = match scale with `Paper -> [ 1024; 4096; 16384 ] | `Quick -> [ 512; 2048 ] in
  let samples = match scale with `Paper -> 4000 | `Quick -> 1000 in
  let table =
    Table.create ~title:"CAN realisations: prefix tree + virtual nodes vs XOR buckets"
      ~columns:
        [ "n"; "PrefixCAN deg"; "XOR-CAN deg"; "PrefixCAN hops"; "XOR-CAN hops" ]
  in
  List.iter
    (fun n ->
      let rng = Rng.create (seed + n) in
      let pc = Prefix_can.build (Rng.split rng) ~n in
      let pop = Common.hierarchy_population ~seed:(seed + n) ~levels:1 ~n in
      let xor_can = Can.build pop in
      (* Prefix CAN hops: bit-fixing to a random key. *)
      let pc_hops =
        let total = ref 0 in
        for _ = 1 to samples do
          let src = Rng.int_below rng n in
          let key = if Prefix_can.depth pc = 0 then 0 else Rng.int_below rng (1 lsl Prefix_can.depth pc) in
          total := !total + (List.length (Prefix_can.route pc ~src ~key) - 1)
        done;
        Float.of_int !total /. Float.of_int samples
      in
      let xor_hops =
        let total = ref 0 in
        for _ = 1 to samples do
          let src = Rng.int_below rng n and dst = Rng.int_below rng n in
          total :=
            !total + Route.hops (Router.greedy_xor xor_can ~src ~key:(Overlay.id xor_can dst))
        done;
        Float.of_int !total /. Float.of_int samples
      in
      Table.add_float_row table (string_of_int n)
        [ Prefix_can.mean_degree pc; Overlay.mean_degree xor_can; pc_hops; xor_hops ])
    sizes;
  table
