open Canon_idspace
open Canon_hierarchy
open Canon_core
open Canon_overlay
open Canon_storage
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let run ~scale ~seed =
  let setup = Common.topology_setup ~seed in
  let n = Common.big_n scale in
  let trials = match scale with `Paper -> 1500 | `Quick -> 500 in
  let pop = Common.topology_population ~seed:(seed + 7) setup ~n in
  let node_latency = Common.node_latency setup pop in
  let rings = Rings.build pop in
  let crescendo = Crescendo.build rings in
  let crescendo_prox = Proximity.build_crescendo rings ~node_latency in
  let chord_prox = Proximity.build_chord pop ~node_latency in
  let global_ring = Rings.ring rings (Domain_tree.root pop.Population.tree) in
  let store = Store.create rings in
  let max_depth = Domain_tree.height pop.Population.tree in
  let table =
    Table.create
      ~title:(Printf.sprintf "Figure 7: Latency (ms) vs query locality level (n = %d)" n)
      ~columns:[ "Locality"; "Chord (Prox.)"; "Crescendo (No Prox.)"; "Crescendo (Prox.)" ]
  in
  for level = 0 to max_depth do
    let rng = Rng.create (seed + 1000 + level) in
    let sum_chord_prox = ref 0.0 in
    let sum_crescendo = ref 0.0 in
    let sum_crescendo_prox = ref 0.0 in
    for _ = 1 to trials do
      let querier = Rng.int_below rng n in
      let domain = Population.domain_of_node_at_depth pop querier level in
      let key = Id.random rng in
      (* Hierarchical systems: the content lives in the querier's
         level-L domain; the store lookup measures the real query path. *)
      Store.insert store ~publisher:querier ~key ~value:"blob" ~storage_domain:domain
        ~access_domain:domain;
      let lat overlay =
        match Store.lookup store overlay ~querier ~key with
        | Some hit -> Route.latency hit.Store.path ~node_latency
        | None -> failwith "fig7: stored content not found"
      in
      sum_crescendo := !sum_crescendo +. lat crescendo;
      sum_crescendo_prox := !sum_crescendo_prox +. lat (Proximity.overlay crescendo_prox);
      Store.remove store ~key ~storage_domain:domain ~access_domain:domain;
      (* Flat Chord cannot constrain placement: the content sits at the
         globally responsible node wherever it matters, so the query
         cost is the global route. *)
      let responsible = Ring.predecessor_of_id global_ring key in
      let route = Proximity.route chord_prox ~src:querier ~dst:responsible in
      sum_chord_prox := !sum_chord_prox +. Route.latency route ~node_latency
    done;
    let label = if level = 0 then "Top Level" else Printf.sprintf "Level %d" level in
    Table.add_float_row table label
      [
        !sum_chord_prox /. Float.of_int trials;
        !sum_crescendo /. Float.of_int trials;
        !sum_crescendo_prox /. Float.of_int trials;
      ]
  done;
  table
