(** §3.5 ablation: LAN-clique leaf domains + Crescendo merges (the
    "Hybrid" structure) vs plain Crescendo, across leaf-domain (LAN)
    sizes. Expected shape: the hybrid trades higher degree (the clique)
    for fewer hops, with the gap growing with LAN size. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
