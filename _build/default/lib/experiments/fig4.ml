open Canon_overlay
open Canon_core
module Table = Canon_stats.Table
module Histogram = Canon_stats.Histogram

let levels_list = [ 1; 2; 3; 4; 5 ]

let run ~scale ~seed =
  let n = Common.big_n scale in
  let histograms =
    List.map
      (fun levels ->
        let pop = Common.hierarchy_population ~seed:(seed + levels) ~levels ~n in
        let overlay = Crescendo.build (Rings.build pop) in
        let h = Histogram.create () in
        Array.iter (Histogram.add h) (Overlay.degrees overlay);
        h)
      levels_list
  in
  let max_links =
    List.fold_left (fun acc h -> max acc (Histogram.max_value h)) 0 histograms
  in
  let table =
    Table.create
      ~title:(Printf.sprintf "Figure 4: PDF of #links/node (n = %d)" n)
      ~columns:
        ("#links"
        :: List.map (fun l -> if l = 1 then "Chord(L=1)" else Printf.sprintf "Levels=%d" l)
             levels_list)
  in
  for links = 0 to max_links do
    let fractions =
      List.map
        (fun h -> Float.of_int (Histogram.count h links) /. Float.of_int (max 1 (Histogram.total h)))
        histograms
    in
    if List.exists (fun f -> f > 0.0005) fractions then
      Table.add_float_row table (string_of_int links) fractions
  done;
  table
