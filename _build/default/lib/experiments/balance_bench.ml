open Canon_hierarchy
open Canon_balance
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

(* Mean, over depth-1 domains, of the within-domain partition ratio. *)
let domain_ratio tree ids leaf_of_node =
  let root_children = Domain_tree.children tree (Domain_tree.root tree) in
  let ratios =
    Array.to_list root_children
    |> List.filter_map (fun d ->
           let members =
             Array.to_list leaf_of_node
             |> List.mapi (fun node leaf -> (node, leaf))
             |> List.filter (fun (_, leaf) -> Domain_tree.is_ancestor tree ~anc:d ~desc:leaf)
             |> List.map fst
           in
           if List.length members >= 2 then
             Some (Balance.domain_partition_ratio ids ~members:(Array.of_list members))
           else None)
  in
  match ratios with
  | [] -> Float.nan
  | _ -> List.fold_left ( +. ) 0.0 ratios /. Float.of_int (List.length ratios)

let run ~scale ~seed =
  let sizes = match scale with `Paper -> [ 1024; 4096; 16384 ] | `Quick -> [ 512; 2048 ] in
  let table =
    Table.create ~title:"Partition balance: max/min partition ratio"
      ~columns:
        [
          "n"; "Random global"; "Bisection global"; "Hier global"; "Random domain";
          "Hier domain";
        ]
  in
  List.iter
    (fun n ->
      let tree =
        Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout:Common.paper_fanout ~levels:3)
      in
      let rng = Rng.create (seed + n) in
      let leaf_of_node =
        Canon_hierarchy.Placement.assign (Rng.split rng) tree
          (Placement.Zipfian Common.paper_zipf) ~n
      in
      let random_ids = Balance.select_ids (Rng.split rng) Balance.Random_ids ~leaf_of_node in
      let bisect_ids = Balance.select_ids (Rng.split rng) Balance.Bisection ~leaf_of_node in
      let hier_ids =
        Balance.select_ids (Rng.split rng) Balance.Hierarchical ~leaf_of_node
      in
      Table.add_float_row table (string_of_int n)
        [
          Balance.partition_ratio random_ids;
          Balance.partition_ratio bisect_ids;
          Balance.partition_ratio hier_ids;
          domain_ratio tree random_ids leaf_of_node;
          domain_ratio tree hier_ids leaf_of_node;
        ])
    sizes;
  table
