open Canon_idspace
open Canon_hierarchy
open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let run ~scale ~seed =
  let n = match scale with `Paper -> 8192 | `Quick -> 2048 in
  let trials = match scale with `Paper -> 1000 | `Quick -> 300 in
  let pop = Common.hierarchy_population ~seed:(seed + 6) ~levels:3 ~n in
  let tree = pop.Population.tree in
  let rings = Rings.build pop in
  let crescendo = Crescendo.build rings in
  let skipnet = Skipnet.build pop in
  let rng = Rng.create (seed + 600) in
  (* hops: node-to-node (name routing for SkipNet). *)
  let sk_hops = ref 0 and cr_hops = ref 0 in
  for _ = 1 to trials do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    sk_hops := !sk_hops + Route.hops (Skipnet.route_by_name skipnet ~src ~dst);
    cr_hops := !cr_hops + Route.hops (Router.greedy_clockwise crescendo ~src ~key:(Overlay.id crescendo dst))
  done;
  (* locality rate for intra-domain (depth-1) node-to-node routes. *)
  let locality route_nodes lca =
    Array.for_all
      (fun node -> Domain_tree.is_ancestor tree ~anc:lca ~desc:pop.Population.leaf_of_node.(node))
      route_nodes
  in
  let sk_local = ref 0 and cr_local = ref 0 and local_trials = ref 0 in
  while !local_trials < trials do
    let src = Rng.int_below rng n and dst = Rng.int_below rng n in
    let lca = Population.lca_of_nodes pop src dst in
    if Domain_tree.depth tree lca >= 1 then begin
      incr local_trials;
      let sk = Skipnet.route_by_name skipnet ~src ~dst in
      let cr = Router.greedy_clockwise crescendo ~src ~key:(Overlay.id crescendo dst) in
      if locality sk.Route.nodes lca then incr sk_local;
      if locality cr.Route.nodes lca then incr cr_local
    end
  done;
  (* convergence for hashed content: queries for one random key from 30
     random nodes of one depth-1 domain; count distinct exit nodes. *)
  let exits_and_overlap routes domain =
    let exits = Hashtbl.create 8 in
    List.iter
      (fun r ->
        let exit = ref (-1) in
        Array.iter
          (fun node ->
            if Domain_tree.is_ancestor tree ~anc:domain ~desc:pop.Population.leaf_of_node.(node)
            then exit := node)
          r.Route.nodes;
        Hashtbl.replace exits !exit ())
      routes;
    let overlap =
      match routes with
      | [] | [ _ ] -> 0.0
      | reference :: rest ->
          let total =
            List.fold_left
              (fun acc r -> acc +. Route.overlap_fraction ~reference r `Hops)
              0.0 rest
          in
          total /. Float.of_int (List.length rest)
    in
    (Hashtbl.length exits, overlap)
  in
  let sk_exits = ref 0.0 and cr_exits = ref 0.0 in
  let sk_overlap = ref 0.0 and cr_overlap = ref 0.0 in
  let rounds = 30 in
  let domains = Domain_tree.children tree (Domain_tree.root tree) in
  let done_rounds = ref 0 in
  while !done_rounds < rounds do
    let domain = domains.(Rng.int_below rng (Array.length domains)) in
    let ring = Rings.ring rings domain in
    if Ring.size ring >= 10 then begin
      incr done_rounds;
      let key = Id.random rng in
      let sources =
        List.init 30 (fun _ -> Ring.node_at ring (Rng.int_below rng (Ring.size ring)))
      in
      let sk_routes = List.map (fun s -> Skipnet.route_by_numeric skipnet ~src:s ~key) sources in
      let cr_routes =
        List.map (fun s -> Router.greedy_clockwise crescendo ~src:s ~key) sources
      in
      let se, so = exits_and_overlap sk_routes domain in
      let ce, co = exits_and_overlap cr_routes domain in
      sk_exits := !sk_exits +. Float.of_int se;
      cr_exits := !cr_exits +. Float.of_int ce;
      sk_overlap := !sk_overlap +. so;
      cr_overlap := !cr_overlap +. co
    end
  done;
  let table =
    Table.create
      ~title:(Printf.sprintf "SkipNet vs Crescendo (§6; n = %d)" n)
      ~columns:[ "metric"; "SkipNet"; "Crescendo" ]
  in
  let f = Float.of_int in
  Table.add_row table
    [ "mean degree"; Printf.sprintf "%.2f" (Skipnet.mean_degree skipnet);
      Printf.sprintf "%.2f" (Overlay.mean_degree crescendo) ];
  Table.add_row table
    [ "mean hops (node-to-node)"; Printf.sprintf "%.2f" (f !sk_hops /. f trials);
      Printf.sprintf "%.2f" (f !cr_hops /. f trials) ];
  Table.add_row table
    [ "intra-domain path locality"; Printf.sprintf "%.3f" (f !sk_local /. f trials);
      Printf.sprintf "%.3f" (f !cr_local /. f trials) ];
  Table.add_row table
    [ "distinct exits per 30 same-key lookups (hashed content)";
      Printf.sprintf "%.1f" (!sk_exits /. f rounds); Printf.sprintf "%.1f" (!cr_exits /. f rounds) ];
  Table.add_row table
    [ "mean path overlap (hashed content)"; Printf.sprintf "%.3f" (!sk_overlap /. f rounds);
      Printf.sprintf "%.3f" (!cr_overlap /. f rounds) ];
  table
