(** Figure 5: average number of routing hops vs network size, for 1-5
    hierarchy levels.

    Expected shape: ~0.5 log2 n + c for all curves; c grows slightly
    with the number of levels but by at most ~0.7 (paper §5.1). *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
