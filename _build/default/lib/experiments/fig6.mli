(** Figure 6: routing latency and stretch vs network size over the
    transit-stub internet, for Chord and Crescendo with and without
    proximity adaptation.

    Expected shape: Chord's latency grows linearly in log n (stretch
    grows); proximity adaptation shrinks the slope but keeps it a line;
    Crescendo's stretch is an almost flat constant (~2-3 without
    proximity adaptation, lower with it), because growth only deepens
    the cheap lowest-level domains. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
