open Canon_core
open Canon_overlay
open Canon_workload
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let run ~scale ~seed =
  let setup = Common.topology_setup ~seed in
  let n = Common.big_n scale in
  let sources = match scale with `Paper -> 1000 | `Quick -> 400 in
  let repeats = match scale with `Paper -> 10 | `Quick -> 4 in
  let pop = Common.topology_population ~seed:(seed + 9) setup ~n in
  let node_latency = Common.node_latency setup pop in
  let rings = Rings.build pop in
  let crescendo = Crescendo.build rings in
  let chord_prox = Proximity.build_chord pop ~node_latency in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Figure 9: Expected #inter-domain links in a %d-source multicast tree (n = %d)"
           sources n)
      ~columns:[ "Domain level"; "Crescendo"; "Chord (Prox.)"; "Ratio" ]
  in
  let rng = Rng.create (seed + 3000) in
  (* Average over several random destinations, as the paper reports
     expectations. *)
  let totals = Array.make_matrix 3 2 0.0 in
  for _ = 1 to repeats do
    let dst = Rng.int_below rng n in
    let srcs = Array.init sources (fun _ -> Rng.int_below rng n) in
    let crescendo_routes =
      Array.to_list
        (Array.map (fun s -> Router.greedy_clockwise crescendo ~src:s ~key:(Overlay.id crescendo dst)) srcs)
    in
    let chord_routes =
      Array.to_list (Array.map (fun s -> Proximity.route chord_prox ~src:s ~dst) srcs)
    in
    let t_crescendo = Multicast.of_routes crescendo_routes in
    let t_chord = Multicast.of_routes chord_routes in
    for level = 1 to 3 do
      let domain_of_node node = Population.domain_of_node_at_depth pop node level in
      totals.(level - 1).(0) <-
        totals.(level - 1).(0)
        +. Float.of_int (Multicast.inter_domain_edges t_crescendo ~domain_of_node);
      totals.(level - 1).(1) <-
        totals.(level - 1).(1)
        +. Float.of_int (Multicast.inter_domain_edges t_chord ~domain_of_node)
    done
  done;
  for level = 1 to 3 do
    let c = totals.(level - 1).(0) /. Float.of_int repeats in
    let h = totals.(level - 1).(1) /. Float.of_int repeats in
    Table.add_float_row table (string_of_int level) [ c; h; c /. Float.max 1.0 h ]
  done;
  table
