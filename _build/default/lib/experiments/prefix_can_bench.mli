(** §3.4 parity: the literal binary-prefix-tree CAN with virtual-node
    padding vs the XOR-bucket realisation used by {!Canon_core.Can}.
    Expected shape: both have ~log2 n degree and ~0.5 log2 n hops. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
