(** §2.3 check: messages per join/leave under churn, vs network size.
    The paper claims O(log n) messages per insertion; the table reports
    the measured means alongside log2 n, plus probe success under
    churn. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
