open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let log2f x = log x /. log 2.0

let run ~scale ~seed =
  let samples = match scale with `Paper -> 5000 | `Quick -> 1500 in
  let table =
    Table.create ~title:"Theorems 1/2/4/5: measured vs proved bounds"
      ~columns:
        [
          "System"; "n"; "levels"; "deg meas"; "deg bound"; "hops meas"; "hops bound";
        ]
  in
  let check ~n ~levels =
    let pop = Common.hierarchy_population ~seed:(seed + levels) ~levels ~n in
    let overlay = Crescendo.build (Rings.build pop) in
    let deg = Overlay.mean_degree overlay in
    let hops = Common.mean_hops (Rng.create (seed + levels)) overlay ~samples in
    let nf = Float.of_int n in
    let deg_bound, hops_bound =
      if levels = 1 then (log2f (nf -. 1.0) +. 1.0, (0.5 *. log2f (nf -. 1.0)) +. 0.5)
      else
        ( log2f (nf -. 1.0) +. Float.min (Float.of_int levels) (log2f nf),
          log2f (nf -. 1.0) +. 1.0 )
    in
    let label = if levels = 1 then "Chord (Thm 1/4)" else "Crescendo (Thm 2/5)" in
    Table.add_row table
      [
        label;
        string_of_int n;
        string_of_int levels;
        Printf.sprintf "%.3f" deg;
        Printf.sprintf "%.3f" deg_bound;
        Printf.sprintf "%.3f" hops;
        Printf.sprintf "%.3f" hops_bound;
      ]
  in
  let ns = match scale with `Paper -> [ 4096; 16384; 65536 ] | `Quick -> [ 1024; 4096 ] in
  List.iter (fun n -> List.iter (fun levels -> check ~n ~levels) [ 1; 3; 5 ]) ns;
  table
