(** Figure 8: hop and latency overlap fractions vs domain level.

    Two nodes of the same level-L domain query the same random key; the
    overlap fraction measures how much of the second path retraces the
    first — the benefit of caching the first answer along its path.
    Expected shape: near zero for Chord (Prox.) at every level, rising
    steeply with domain level for Crescendo (paths must converge at the
    domain proxy), with latency overlap above hop overlap. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
