open Canon_overlay
open Canon_core
module Table = Canon_stats.Table

let levels_list = [ 1; 2; 3; 4; 5 ]

let run ~scale ~seed =
  let table =
    Table.create ~title:"Figure 3: Avg #links/node vs network size"
      ~columns:
        ("n" :: "log2(n)"
        :: List.map (fun l -> if l = 1 then "Chord(L=1)" else Printf.sprintf "Levels=%d" l)
             levels_list)
  in
  List.iter
    (fun n ->
      let row =
        List.map
          (fun levels ->
            let pop = Common.hierarchy_population ~seed:(seed + levels) ~levels ~n in
            let overlay = Crescendo.build (Rings.build pop) in
            Overlay.mean_degree overlay)
          levels_list
      in
      Table.add_float_row table (string_of_int n)
        (Float.of_int (Canon_idspace.Id.log2_floor n) :: row))
    (Common.sizes scale);
  table
