(** Fault isolation (§2.2): "interactions between two nodes in a domain
    cannot be interfered with by, or affected by the failure of, nodes
    outside the domain."

    Crashes a fraction of the nodes {e outside} one depth-1 domain
    (without repair) and probes routing between live nodes {e inside}
    it. Expected shape: Crescendo delivers 100% of intra-domain probes
    at every outside-failure rate — its paths never leave the domain —
    while flat Chord's delivery collapses as outside failures grow. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
