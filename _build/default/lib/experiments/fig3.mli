(** Figure 3: average number of links per node vs network size, for
    hierarchies of 1 (= flat Chord) to 5 levels.

    Expected shape: all curves track log2 n closely, and the link count
    {e decreases slightly} as the number of levels grows (Jensen's
    inequality — see the paper's discussion). *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
