open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let levels_list = [ 1; 2; 3; 4; 5 ]

let run ~scale ~seed =
  let samples = match scale with `Paper -> 8000 | `Quick -> 2000 in
  let table =
    Table.create ~title:"Figure 5: Avg routing hops vs network size"
      ~columns:
        ("n" :: "0.5*log2(n)"
        :: List.map (fun l -> if l = 1 then "Chord(L=1)" else Printf.sprintf "Levels=%d" l)
             levels_list)
  in
  List.iter
    (fun n ->
      let row =
        List.map
          (fun levels ->
            let pop = Common.hierarchy_population ~seed:(seed + levels) ~levels ~n in
            let overlay = Crescendo.build (Rings.build pop) in
            Common.mean_hops (Rng.create (seed + (100 * levels))) overlay ~samples)
          levels_list
      in
      Table.add_float_row table (string_of_int n)
        ((0.5 *. Float.of_int (Canon_idspace.Id.log2_floor n)) :: row))
    (Common.sizes scale);
  table
