lib/experiments/fig6.ml: Canon_core Canon_overlay Canon_rng Canon_stats Chord Common Crescendo Float List Overlay Printf Proximity Rings Route
