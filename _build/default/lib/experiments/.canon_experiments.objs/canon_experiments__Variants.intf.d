lib/experiments/variants.mli: Canon_stats Common
