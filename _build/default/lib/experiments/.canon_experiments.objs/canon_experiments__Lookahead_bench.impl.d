lib/experiments/lookahead_bench.ml: Cacophony Canon_core Canon_overlay Canon_rng Canon_stats Common Float List Overlay Rings Route Router Symphony
