lib/experiments/prefix_can_bench.ml: Can Canon_core Canon_overlay Canon_rng Canon_stats Common Float List Overlay Prefix_can Route Router
