lib/experiments/fig4.ml: Array Canon_core Canon_overlay Canon_stats Common Crescendo Float List Overlay Printf Rings
