lib/experiments/theorems.ml: Canon_core Canon_overlay Canon_rng Canon_stats Common Crescendo Float List Overlay Printf Rings
