lib/experiments/fig9.ml: Array Canon_core Canon_overlay Canon_rng Canon_stats Canon_workload Common Crescendo Float Multicast Overlay Population Printf Proximity Rings Router
