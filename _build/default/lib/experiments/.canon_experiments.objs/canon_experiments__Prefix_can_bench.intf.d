lib/experiments/prefix_can_bench.mli: Canon_stats Common
