lib/experiments/hybrid_bench.mli: Canon_stats Common
