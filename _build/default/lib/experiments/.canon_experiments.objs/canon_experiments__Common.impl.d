lib/experiments/common.ml: Array Canon_core Canon_hierarchy Canon_overlay Canon_rng Canon_topology Domain_tree Float Latency Overlay Placement Population Route Router Sys Transit_stub
