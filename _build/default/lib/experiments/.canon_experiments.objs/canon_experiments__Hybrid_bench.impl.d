lib/experiments/hybrid_bench.ml: Canon_core Canon_hierarchy Canon_overlay Canon_rng Canon_stats Common Crescendo Domain_tree Float Hybrid List Overlay Placement Population Printf Rings
