lib/experiments/fig3.ml: Canon_core Canon_idspace Canon_overlay Canon_stats Common Crescendo Float List Overlay Printf Rings
