lib/experiments/fig5.mli: Canon_stats Common
