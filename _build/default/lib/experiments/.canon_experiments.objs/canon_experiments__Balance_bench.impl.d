lib/experiments/balance_bench.ml: Array Balance Canon_balance Canon_hierarchy Canon_rng Canon_stats Common Domain_tree Float List Placement
