lib/experiments/fig4.mli: Canon_stats Common
