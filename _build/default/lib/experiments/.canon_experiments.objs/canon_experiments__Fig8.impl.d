lib/experiments/fig8.ml: Array Canon_core Canon_hierarchy Canon_idspace Canon_overlay Canon_rng Canon_stats Common Crescendo Domain_tree Float Id Population Printf Proximity Ring Rings Route Router
