lib/experiments/maintenance_bench.ml: Array Canon_overlay Canon_rng Canon_sim Canon_stats Churn Common Float Fun List Maintenance Population Printf
