lib/experiments/isolation.ml: Array Canon_core Canon_hierarchy Canon_overlay Canon_rng Canon_stats Chord Common Crescendo Domain_tree Float List Overlay Population Printf Ring Rings Route Router
