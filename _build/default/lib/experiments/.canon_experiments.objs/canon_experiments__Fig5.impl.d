lib/experiments/fig5.ml: Canon_core Canon_idspace Canon_overlay Canon_rng Canon_stats Common Crescendo Float List Printf Rings
