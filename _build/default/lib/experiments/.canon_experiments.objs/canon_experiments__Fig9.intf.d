lib/experiments/fig9.mli: Canon_stats Common
