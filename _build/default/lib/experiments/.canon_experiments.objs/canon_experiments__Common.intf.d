lib/experiments/common.mli: Canon_hierarchy Canon_overlay Canon_rng Canon_topology Domain_tree Latency Overlay Population Transit_stub
