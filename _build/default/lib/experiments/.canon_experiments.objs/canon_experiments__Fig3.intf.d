lib/experiments/fig3.mli: Canon_stats Common
