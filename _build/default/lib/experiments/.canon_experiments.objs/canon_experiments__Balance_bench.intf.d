lib/experiments/balance_bench.mli: Canon_stats Common
