lib/experiments/caching_bench.mli: Canon_stats Common
