lib/experiments/fig6.mli: Canon_stats Common
