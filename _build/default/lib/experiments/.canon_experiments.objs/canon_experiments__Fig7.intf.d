lib/experiments/fig7.mli: Canon_stats Common
