lib/experiments/lookahead_bench.mli: Canon_stats Common
