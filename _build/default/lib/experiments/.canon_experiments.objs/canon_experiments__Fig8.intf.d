lib/experiments/fig8.mli: Canon_stats Common
