lib/experiments/maintenance_bench.mli: Canon_stats Common
