lib/experiments/isolation.mli: Canon_stats Common
