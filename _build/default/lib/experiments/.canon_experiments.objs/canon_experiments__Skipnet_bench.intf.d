lib/experiments/skipnet_bench.mli: Canon_stats Common
