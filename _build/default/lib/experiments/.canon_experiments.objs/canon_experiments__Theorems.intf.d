lib/experiments/theorems.mli: Canon_stats Common
