open Canon_idspace
open Canon_hierarchy
open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let run ~scale ~seed =
  let setup = Common.topology_setup ~seed in
  let n = Common.big_n scale in
  let trials = match scale with `Paper -> 1200 | `Quick -> 400 in
  let pop = Common.topology_population ~seed:(seed + 8) setup ~n in
  let node_latency = Common.node_latency setup pop in
  let rings = Rings.build pop in
  let crescendo = Crescendo.build rings in
  let chord_prox = Proximity.build_chord pop ~node_latency in
  let global_ring = Rings.ring rings (Domain_tree.root pop.Population.tree) in
  let max_depth = Domain_tree.height pop.Population.tree in
  let table =
    Table.create
      ~title:(Printf.sprintf "Figure 8: Path overlap fraction vs domain level (n = %d)" n)
      ~columns:
        [ "Domain"; "Crescendo hops"; "Crescendo latency"; "Chord(Prox) hops"; "Chord(Prox) latency" ]
  in
  for level = 0 to max_depth do
    let rng = Rng.create (seed + 2000 + level) in
    let sums = Array.make 4 0.0 in
    let done_trials = ref 0 in
    while !done_trials < trials do
      let r = Rng.int_below rng n in
      let domain = Population.domain_of_node_at_depth pop r level in
      let ring = Rings.ring rings domain in
      if Ring.size ring >= 2 then begin
        incr done_trials;
        let r' = Ring.node_at ring (Rng.int_below rng (Ring.size ring)) in
        let key = Id.random rng in
        (* Crescendo: both nodes route greedily toward the key. *)
        let p = Router.greedy_clockwise crescendo ~src:r ~key in
        let p' = Router.greedy_clockwise crescendo ~src:r' ~key in
        sums.(0) <- sums.(0) +. Route.overlap_fraction ~reference:p p' `Hops;
        sums.(1) <- sums.(1) +. Route.overlap_fraction ~reference:p p' (`Latency node_latency);
        (* Chord (Prox.): both route to the globally responsible node. *)
        let responsible = Ring.predecessor_of_id global_ring key in
        let q = Proximity.route chord_prox ~src:r ~dst:responsible in
        let q' = Proximity.route chord_prox ~src:r' ~dst:responsible in
        sums.(2) <- sums.(2) +. Route.overlap_fraction ~reference:q q' `Hops;
        sums.(3) <- sums.(3) +. Route.overlap_fraction ~reference:q q' (`Latency node_latency)
      end
    done;
    let label = if level = 0 then "Top Level" else Printf.sprintf "Level %d" level in
    Table.add_float_row table label
      (Array.to_list (Array.map (fun s -> s /. Float.of_int trials) sums))
  done;
  table
