(** Figure 4: probability distribution of the number of links per node
    in a 32K-node network, for 1-5 hierarchy levels.

    Expected shape: the distribution flattens to the {e left} of the
    flat-Chord mode as levels increase (more nodes with slightly fewer
    links), while the maximum barely moves. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
