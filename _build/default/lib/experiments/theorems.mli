(** Empirical check of the paper's Theorems 1, 2, 4 and 5: measured
    mean degree and mean hop count against the proved upper bounds, for
    flat Chord and for Crescendo across hierarchy depths. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
