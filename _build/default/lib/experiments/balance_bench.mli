(** §4.3 ablation: max/min partition-size ratio under random identifier
    selection, the bisection scheme, and the hierarchical far-apart
    scheme — globally and within depth-1 domains.

    Expected shape: random grows like log² n; bisection stays a small
    constant globally; the hierarchical variant additionally keeps
    domain-level partitions balanced. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
