open Canon_overlay
open Canon_sim
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

(* Crash 5% of the nodes abruptly, then run failure detection: mean
   repair messages per crash. *)
let crash_repair_cost rng pop ~n =
  let order = Array.init (Population.size pop) Fun.id in
  Rng.shuffle_in_place rng order;
  let m = Maintenance.create pop ~present:(Array.sub order 0 n) in
  let crashes = max 1 (n / 20) in
  for i = 0 to crashes - 1 do
    Maintenance.crash m order.(i)
  done;
  let stats = Maintenance.repair m in
  Float.of_int (Maintenance.total stats) /. Float.of_int crashes

let run ~scale ~seed =
  let sizes = match scale with `Paper -> [ 512; 1024; 2048; 4096 ] | `Quick -> [ 256; 512 ] in
  let table =
    Table.create ~title:"Maintenance cost under churn (Crescendo, 3 levels)"
      ~columns:
        [
          "n"; "log2 n"; "join msgs"; "leave msgs"; "repair msgs/crash"; "probes"; "failed";
          "final n";
        ]
  in
  List.iter
    (fun n ->
      let pop = Common.hierarchy_population ~seed:(seed + n) ~levels:3 ~n:(2 * n) in
      let config =
        {
          Churn.initial_nodes = n;
          events = (match scale with `Paper -> 300 | `Quick -> 120);
          join_fraction = 0.5;
          probes_per_event = 3;
          mean_interarrival = 1.0;
        }
      in
      let report = Churn.run (Rng.create (seed + (7 * n))) pop config in
      let repair = crash_repair_cost (Rng.create (seed + (11 * n))) pop ~n in
      Table.add_row table
        [
          string_of_int n;
          Printf.sprintf "%.1f" (log (Float.of_int n) /. log 2.0);
          Printf.sprintf "%.1f" report.Churn.join_message_mean;
          Printf.sprintf "%.1f" report.Churn.leave_message_mean;
          Printf.sprintf "%.1f" repair;
          string_of_int report.Churn.probes;
          string_of_int report.Churn.failed_probes;
          string_of_int report.Churn.final_population;
        ])
    sizes;
  table
