(** §3.1 ablation: greedy routing vs greedy-with-lookahead on Symphony
    and Cacophony. The paper reports lookahead saves ~40% of hops. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
