(** Figure 7: query latency as a function of query locality.

    Content is stored {e within the querier's domain} at level L
    (storage = access domain); "Top Level" content lives anywhere.
    Expected shape: Crescendo's latency collapses as locality deepens
    (virtually zero once queries stay inside a stub domain), while
    Chord — even with proximity adaptation — barely improves, because a
    flat DHT must route to the globally responsible node regardless of
    where the content matters. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
