(** Figure 9 (table): number of inter-domain links in a 1000-source
    multicast tree, with "inter-domain" defined at hierarchy levels 1-3.

    Expected shape: Crescendo's tree uses a small fraction of the
    inter-domain links Chord (Prox.) uses — the paper reports ~1/44 at
    level 1 and ~15% at level 3 — because converging paths share their
    domain-crossing suffixes. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
