open Canon_core
open Canon_overlay
open Canon_hierarchy
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let run ~scale ~seed =
  let n = match scale with `Paper -> 16384 | `Quick -> 2048 in
  let samples = match scale with `Paper -> 4000 | `Quick -> 1000 in
  let table =
    Table.create
      ~title:(Printf.sprintf "Hybrid (LAN clique + Crescendo) vs Crescendo (n = %d)" n)
      ~columns:
        [ "LAN size"; "Crescendo deg"; "Hybrid deg"; "Crescendo hops"; "Hybrid hops" ]
  in
  (* Vary the expected LAN (leaf-domain) size by varying the number of
     leaves: fanout f over 2 internal levels gives n / f^2 per leaf. *)
  List.iter
    (fun fanout ->
      let tree = Domain_tree.of_spec (Domain_tree.uniform_spec ~fanout ~levels:3) in
      let rng = Rng.create (seed + fanout) in
      let pop = Population.create rng ~tree ~policy:Placement.Uniform ~n in
      let rings = Rings.build pop in
      let crescendo = Crescendo.build rings in
      let hybrid = Hybrid.build rings in
      let lan = Float.of_int n /. Float.of_int (fanout * fanout) in
      Table.add_float_row table (Printf.sprintf "%.0f" lan)
        [
          Overlay.mean_degree crescendo;
          Overlay.mean_degree hybrid;
          Common.mean_hops (Rng.create (seed + 1)) crescendo ~samples;
          Common.mean_hops (Rng.create (seed + 1)) hybrid ~samples;
        ])
    [ 16; 8; 4 ];
  table
