(** §4.2 ablation: hierarchical caching under a locality workload.

    Queries follow a Zipfian key popularity with hierarchical locality
    of reference; the table compares cache hit rate and mean query
    latency with caching off and on, across locality intensities.
    Expected shape: hit rates climb with locality, and latency falls
    well below the uncached baseline because hits are served at the
    lowest common domain. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
