open Canon_hierarchy
open Canon_core
open Canon_overlay
open Canon_storage
open Canon_workload
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table
module Zipf = Canon_stats.Zipf

let run ~scale ~seed =
  let setup = Common.topology_setup ~seed in
  let n = match scale with `Paper -> 8192 | `Quick -> 2048 in
  let num_keys = 400 in
  let num_queries = match scale with `Paper -> 6000 | `Quick -> 2000 in
  let pop = Common.topology_population ~seed:(seed + 11) setup ~n in
  let node_latency = Common.node_latency setup pop in
  let rings = Rings.build pop in
  let overlay = Crescendo.build rings in
  let root = Domain_tree.root pop.Population.tree in
  let rng = Rng.create (seed + 4000) in
  let ks = Workload.keyspace (Rng.split rng) ~keys:num_keys in
  let store = Store.create rings in
  for i = 0 to num_keys - 1 do
    let publisher = Rng.int_below rng n in
    Store.insert store ~publisher ~key:(Workload.key ks i)
      ~value:(Printf.sprintf "object-%d" i) ~storage_domain:root ~access_domain:root
  done;
  let sampler = Zipf.sampler ~n:num_keys ~alpha:0.9 in
  let table =
    Table.create
      ~title:(Printf.sprintf "Hierarchical caching: hit rate and latency (n = %d)" n)
      ~columns:
        [ "Locality"; "Uncached lat"; "Cached lat"; "Hit rate"; "Latency saving" ]
  in
  List.iter
    (fun locality ->
      let queries =
        Workload.local_queries (Rng.create (seed + int_of_float (locality *. 100.0))) pop ks
          ~sampler ~locality ~count:num_queries
      in
      let measure capacity =
        let cache = Cache.create rings ~capacity in
        let total_lat = ref 0.0 and hits = ref 0 and answered = ref 0 in
        List.iter
          (fun q ->
            match
              Cache.query cache store overlay ~querier:q.Workload.querier ~key:q.Workload.key
            with
            | None -> ()
            | Some r ->
                incr answered;
                if r.Cache.served_from_cache then incr hits;
                total_lat := !total_lat +. Route.latency r.Cache.path ~node_latency)
          queries;
        ( !total_lat /. Float.of_int (max 1 !answered),
          Float.of_int !hits /. Float.of_int (max 1 !answered) )
      in
      let uncached_lat, _ = measure 0 in
      let cached_lat, hit_rate = measure 64 in
      Table.add_float_row table
        (Printf.sprintf "%.1f" locality)
        [ uncached_lat; cached_lat; hit_rate; 1.0 -. (cached_lat /. uncached_lat) ])
    [ 0.0; 0.5; 0.9 ];
  table
