open Canon_hierarchy
open Canon_core
open Canon_overlay
module Rng = Canon_rng.Rng
module Table = Canon_stats.Table

let success_rate rng overlay ~dead ~members ~probes =
  let delivered = ref 0 in
  for _ = 1 to probes do
    let src = Rng.pick rng members and dst = Rng.pick rng members in
    match Router.greedy_clockwise_avoiding overlay ~dead ~src ~key:(Overlay.id overlay dst) with
    | Some route when Route.destination route = dst -> incr delivered
    | Some _ | None -> ()
  done;
  Float.of_int !delivered /. Float.of_int probes

let run ~scale ~seed =
  let n = match scale with `Paper -> 8192 | `Quick -> 2048 in
  let probes = match scale with `Paper -> 2000 | `Quick -> 600 in
  let pop = Common.hierarchy_population ~seed:(seed + 5) ~levels:3 ~n in
  let tree = pop.Population.tree in
  let rings = Rings.build pop in
  let chord = Chord.build pop in
  let crescendo = Crescendo.build rings in
  (* The observed domain: the first depth-1 domain with enough nodes. *)
  let domain =
    let kids = Domain_tree.children tree (Domain_tree.root tree) in
    let best = ref kids.(0) and best_size = ref 0 in
    Array.iter
      (fun d ->
        let s = Ring.size (Rings.ring rings d) in
        if s > !best_size then begin
          best := d;
          best_size := s
        end)
      kids;
    !best
  in
  let members = Ring.members (Rings.ring rings domain) in
  let inside = Array.make n false in
  Array.iter (fun m -> inside.(m) <- true) members;
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Fault isolation: intra-domain delivery vs outside-failure rate (n = %d, domain of \
            %d nodes, no repair)"
           n (Array.length members))
      ~columns:[ "outside failures"; "Chord delivery"; "Crescendo delivery" ]
  in
  List.iter
    (fun fraction ->
      let rng = Rng.create (seed + int_of_float (fraction *. 1000.0)) in
      let dead_flags = Array.make n false in
      Array.iteri
        (fun node _ ->
          if (not inside.(node)) && Rng.float rng < fraction then dead_flags.(node) <- true)
        dead_flags;
      let dead node = dead_flags.(node) in
      let chord_rate = success_rate (Rng.split rng) chord ~dead ~members ~probes in
      let crescendo_rate = success_rate (Rng.split rng) crescendo ~dead ~members ~probes in
      Table.add_float_row table (Printf.sprintf "%.0f%%" (fraction *. 100.0))
        [ chord_rate; crescendo_rate ])
    [ 0.0; 0.1; 0.3; 0.5; 0.7; 0.9 ];
  table
