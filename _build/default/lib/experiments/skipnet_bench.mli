(** §6 comparison: SkipNet vs Crescendo.

    The paper's claims, quantified: SkipNet's name routing has
    intra-domain path locality (like Crescendo), but for hashed content
    it "behaves just like a normal DHT ... and thus provides no, or
    heuristic, convergence for inter-domain paths". The table measures
    degree, hops, intra-domain locality rate, and — for same-key
    lookups issued from one depth-1 domain — the number of distinct
    domain exit points (Crescendo: always 1, the proxy) and the mean
    pairwise path-overlap fraction. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
