(** Variant parity (§3): degree and routing hops of every flat/Canonical
    pair — Chord/Crescendo, Symphony/Cacophony, nondeterministic
    Chord/ND-Crescendo, Kademlia/Kandy, CAN/Can-Can — on one network.

    Expected shape: within each pair, the Canonical version matches its
    flat original in both state and hops. *)

val run : scale:Common.scale -> seed:int -> Canon_stats.Table.t
