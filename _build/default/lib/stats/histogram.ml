type t = { mutable counts : int array; mutable total : int }

let create () = { counts = Array.make 64 0; total = 0 }

let ensure t v =
  let n = Array.length t.counts in
  if v >= n then begin
    let counts = Array.make (max (v + 1) (2 * n)) 0 in
    Array.blit t.counts 0 counts 0 n;
    t.counts <- counts
  end

let add t v =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  ensure t v;
  t.counts.(v) <- t.counts.(v) + 1;
  t.total <- t.total + 1

let count t v = if v < 0 || v >= Array.length t.counts then 0 else t.counts.(v)

let total t = t.total

let max_value t =
  let rec go i = if i < 0 then 0 else if t.counts.(i) > 0 then i else go (i - 1) in
  go (Array.length t.counts - 1)

let pdf t =
  if t.total = 0 then []
  else begin
    let out = ref [] in
    for v = Array.length t.counts - 1 downto 0 do
      if t.counts.(v) > 0 then
        out := (v, Float.of_int t.counts.(v) /. Float.of_int t.total) :: !out
    done;
    !out
  end

let pp ppf t =
  let bars = pdf t in
  List.iter
    (fun (v, f) ->
      let width = int_of_float (f *. 200.0) in
      Format.fprintf ppf "%4d | %-50s %.4f@." v (String.make (min width 50) '#') f)
    bars
