(** Zipfian weights and sampling.

    The paper assigns nodes to hierarchy branches with a Zipfian
    distribution: "the number of nodes in the k-th largest branch is
    proportional to 1/k^1.25". This module supplies those weights and a
    generic finite Zipf sampler (also used for key popularity in the
    caching workload). *)

val weights : n:int -> alpha:float -> float array
(** [weights ~n ~alpha] is the normalised array [w] with
    [w.(k) = (1/(k+1)^alpha) / H] where [H] normalises the sum to 1.
    Requires [n > 0]. *)

type sampler

val sampler : n:int -> alpha:float -> sampler
(** Precomputed cumulative distribution over ranks [0, n). *)

val draw : sampler -> Canon_rng.Rng.t -> int
(** A rank in [0, n), rank 0 being the most popular. *)

val split_counts : total:int -> branches:int -> alpha:float -> int array
(** [split_counts ~total ~branches ~alpha] deterministically apportions
    [total] items over [branches] branches proportionally to Zipf
    weights, using largest-remainder rounding so counts sum exactly to
    [total]. Used to shape hierarchies like the paper's. *)
