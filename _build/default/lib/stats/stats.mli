(** Descriptive statistics for experiment measurements. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}
(** A standard five-number-plus summary of a sample. *)

val mean : float array -> float
(** Arithmetic mean. Requires a non-empty array. *)

val mean_int : int array -> float

val variance : float array -> float
(** Population variance. Requires a non-empty array. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100]: nearest-rank percentile on a
    copy of [xs] (input is not modified). Requires a non-empty array. *)

val summarize : float array -> summary
(** Full summary of a non-empty sample. *)

val summarize_int : int array -> summary

val pp_summary : Format.formatter -> summary -> unit
