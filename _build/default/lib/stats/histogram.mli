(** Integer-valued histograms, used for the degree-distribution figure
    (paper Fig. 4) and for sanity plots in examples. *)

type t

val create : unit -> t
(** An empty histogram over non-negative integer values. *)

val add : t -> int -> unit
(** [add t v] counts one observation of value [v >= 0]. *)

val count : t -> int -> int
(** Observations of exactly [v]. *)

val total : t -> int
(** Total number of observations. *)

val max_value : t -> int
(** Largest value observed; 0 if empty. *)

val pdf : t -> (int * float) list
(** [(value, fraction)] pairs for every value with non-zero count, in
    increasing value order. Fractions sum to 1 (when non-empty). *)

val pp : Format.formatter -> t -> unit
(** Renders the PDF as an ASCII bar chart. *)
