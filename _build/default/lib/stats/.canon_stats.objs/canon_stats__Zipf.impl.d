lib/stats/zipf.ml: Array Canon_rng Float
