lib/stats/histogram.ml: Array Float Format List String
