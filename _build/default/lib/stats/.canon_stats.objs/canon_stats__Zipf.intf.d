lib/stats/zipf.mli: Canon_rng
