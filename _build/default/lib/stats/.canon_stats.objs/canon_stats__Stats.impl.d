lib/stats/stats.ml: Array Float Format
