lib/stats/table.mli:
