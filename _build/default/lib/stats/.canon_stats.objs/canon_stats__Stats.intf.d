lib/stats/stats.mli: Format
