let weights ~n ~alpha =
  if n <= 0 then invalid_arg "Zipf.weights: n must be positive";
  let raw = Array.init n (fun k -> 1.0 /. Float.of_int (k + 1) ** alpha) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun w -> w /. total) raw

type sampler = { cdf : float array }

let sampler ~n ~alpha =
  let w = weights ~n ~alpha in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i wi ->
      acc := !acc +. wi;
      cdf.(i) <- !acc)
    w;
  cdf.(n - 1) <- 1.0;
  { cdf }

let draw { cdf } rng =
  let u = Canon_rng.Rng.float rng in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let split_counts ~total ~branches ~alpha =
  if total < 0 then invalid_arg "Zipf.split_counts: negative total";
  let w = weights ~n:branches ~alpha in
  let exact = Array.map (fun wi -> wi *. Float.of_int total) w in
  let counts = Array.map (fun x -> int_of_float (Float.floor x)) exact in
  let assigned = Array.fold_left ( + ) 0 counts in
  let remainder = total - assigned in
  (* Largest-remainder rounding: give the leftover units to the branches
     with the biggest fractional parts. *)
  let order = Array.init branches (fun i -> i) in
  Array.sort
    (fun a b ->
      Float.compare
        (exact.(b) -. Float.of_int counts.(b))
        (exact.(a) -. Float.of_int counts.(a)))
    order;
  for i = 0 to remainder - 1 do
    let b = order.(i mod branches) in
    counts.(b) <- counts.(b) + 1
  done;
  counts
