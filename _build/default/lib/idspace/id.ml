type t = int

let bits = 32

let space = 1 lsl bits

let mask = space - 1

let zero = 0

let of_int v =
  if v < 0 then invalid_arg "Id.of_int: negative";
  v land mask

let to_int t = t

let equal = Int.equal

let compare = Int.compare

let random rng = Canon_rng.Rng.int_below rng space

let add id d = (id + d) land mask

let distance a b = (b - a) land mask

let xor_distance a b = a lxor b

let in_clockwise_interval x ~lo ~hi =
  if lo = hi then true
  else distance lo x <> 0 && distance lo x <= distance lo hi

let log2_floor d =
  if d <= 0 then invalid_arg "Id.log2_floor: non-positive";
  (* Position of the highest set bit. *)
  let rec go k v = if v <= 1 then k else go (k + 1) (v lsr 1) in
  go 0 d

let pp ppf t = Format.fprintf ppf "%08x" t

let to_string t = Format.asprintf "%a" pp t

let common_prefix_bits a b =
  let x = a lxor b in
  if x = 0 then bits else bits - 1 - log2_floor x

let prefix id k =
  if k < 0 || k > bits then invalid_arg "Id.prefix";
  if k = 0 then 0 else id lsr (bits - k)
