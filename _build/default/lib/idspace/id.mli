(** The circular N-bit identifier space shared by every DHT in Canon.

    All identifiers live in [0, 2{^N}) with [N = 32], exactly as in the
    paper's evaluation ("all nodes choose a random 32-bit ID"). They are
    represented as plain OCaml ints; every function here hides the
    wrap-around arithmetic so no other module manipulates raw modular
    values.

    Two metrics are provided:
    - {!distance}: clockwise distance on the ring (Chord, Symphony,
      Crescendo, Cacophony);
    - {!xor_distance}: the Kademlia/CAN XOR metric. *)

type t = int
(** An identifier in [0, 2{^32}). *)

val bits : int
(** Number of identifier bits, [N = 32]. *)

val space : int
(** [2{^bits}], the size of the identifier space. *)

val zero : t

val of_int : int -> t
(** [of_int v] reduces [v] modulo [2{^bits}]; raises [Invalid_argument]
    on negative input. *)

val to_int : t -> int

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order by integer value (i.e. position on the ring starting
    at 0); used to keep rings as sorted arrays. *)

val random : Canon_rng.Rng.t -> t
(** A uniformly random identifier. *)

val add : t -> int -> t
(** [add id d] moves [d] clockwise (modulo the space). [d] may be any
    int; negative values move counter-clockwise. *)

val distance : t -> t -> int
(** [distance a b] is the clockwise distance from [a] to [b]:
    the unique [d] in [0, 2{^bits}) with [add a d = b]. *)

val xor_distance : t -> t -> int
(** The Kademlia metric: integer value of [a lxor b]. *)

val in_clockwise_interval : t -> lo:t -> hi:t -> bool
(** [in_clockwise_interval x ~lo ~hi] is true when walking clockwise
    from [lo] (exclusive) reaches [x] no later than [hi] (inclusive).
    When [lo = hi] the interval is the whole ring. *)

val log2_floor : int -> int
(** [log2_floor d] for [d > 0] is the largest [k] with [2{^k} <= d]. *)

val pp : Format.formatter -> t -> unit
(** Prints as zero-padded hexadecimal. *)

val to_string : t -> string

val common_prefix_bits : t -> t -> int
(** Number of leading bits (out of {!bits}) shared by the two ids. *)

val prefix : t -> int -> int
(** [prefix id k] is the top [k] bits of [id], i.e.
    [id lsr (bits - k)]. Requires [0 <= k <= bits]. *)
