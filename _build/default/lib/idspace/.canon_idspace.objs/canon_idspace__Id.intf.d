lib/idspace/id.mli: Canon_rng Format
