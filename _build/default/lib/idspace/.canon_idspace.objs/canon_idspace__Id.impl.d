lib/idspace/id.ml: Canon_rng Format Int
