(** Undirected weighted graphs and single-source shortest paths.

    Used to model the router-level internet (transit-stub topology);
    edge weights are link latencies in milliseconds. *)

type t

val create : int -> t
(** [create n] is an edgeless graph on vertices [0, n). *)

val num_vertices : t -> int

val num_edges : t -> int
(** Number of undirected edges. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge g u v w] adds the undirected edge [{u, v}] with weight
    [w > 0]. Self-loops and duplicate edges are rejected with
    [Invalid_argument]. *)

val has_edge : t -> int -> int -> bool

val neighbors : t -> int -> (int * float) array
(** Adjacent vertices with edge weights. *)

val degree : t -> int -> int

val dijkstra : t -> int -> float array
(** [dijkstra g src] is the array of shortest-path distances from
    [src]; unreachable vertices map to [infinity]. *)

val is_connected : t -> bool
(** True when every vertex is reachable from vertex 0 (true for the
    empty graph with a single vertex). *)
