lib/topology/latency.mli: Canon_rng Transit_stub
