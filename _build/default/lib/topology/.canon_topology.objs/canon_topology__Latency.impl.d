lib/topology/latency.ml: Array Canon_rng Float Graph Transit_stub
