lib/topology/transit_stub.ml: Array Canon_hierarchy Canon_rng Float Fun Graph List
