lib/topology/transit_stub.mli: Canon_hierarchy Canon_rng Graph
