lib/topology/graph.ml: Array List
