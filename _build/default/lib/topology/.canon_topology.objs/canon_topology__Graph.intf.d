lib/topology/graph.mli:
