(** Latency oracle over a transit-stub topology.

    Precomputes all-pairs shortest paths among routers so that overlay
    experiments can query end-to-end latencies in O(1). Overlay nodes
    attach to stub routers over an access link ([access_ms], 1 ms in the
    paper), so the latency between two overlay nodes attached to routers
    [r1] and [r2] is [access + spt(r1, r2) + access] — 2 ms when both
    hang off the same stub router, matching the paper's observation. *)

type t

val create : Transit_stub.t -> t
(** Runs one Dijkstra per router. For the default 2040-router topology
    this takes on the order of a second and ~32 MB. *)

val topology : t -> Transit_stub.t

val router_latency : t -> int -> int -> float
(** Shortest-path latency between two routers, in ms. *)

val node_latency : t -> int -> int -> float
(** [node_latency t r1 r2] is the overlay-node-to-overlay-node latency
    between nodes attached to stub routers [r1] and [r2], including both
    access links. [r1 = r2] gives twice the access latency. *)

val mean_node_latency : t -> Canon_rng.Rng.t -> samples:int -> float
(** Monte-Carlo estimate of the mean direct latency between two overlay
    nodes attached to uniformly random stub routers — the denominator of
    the paper's "stretch" metric. *)
