(** A transit-stub internet topology in the style of GT-ITM.

    The paper (§5.2) uses the GT-ITM generator [12] to build a 2040-node
    router graph: routers are grouped into transit domains of transit
    nodes; each transit node attaches several stub domains of stub
    routers. Link latencies are fixed per class: 100 ms transit-transit,
    20 ms transit-stub, 5 ms stub-stub; an overlay node reaches its stub
    router in 1 ms. We reimplement that model from scratch here.

    The topology induces the paper's natural five-level conceptual
    hierarchy — root, transit domain, transit node, stub domain, stub
    router — exposed as a {!Canon_hierarchy.Domain_tree.t} whose leaves
    are stub routers. *)

type params = {
  transit_domains : int;
  transit_nodes_per_domain : int;
  stub_domains_per_transit_node : int;
  stub_routers_per_domain : int;
  transit_transit_ms : float;
  transit_stub_ms : float;
  stub_stub_ms : float;
  access_ms : float;  (** overlay node to its stub router *)
  extra_edge_fraction : float;
      (** density of redundant intra-domain links beyond the random
          spanning tree, as a fraction of the domain size *)
}

val default_params : params
(** 10 transit domains x 4 transit nodes, 5 stub domains per transit
    node, 10 stub routers each: 40 + 2000 = 2040 routers, matching the
    paper's 2040-node GT-ITM graph; latencies 100/20/5/1 ms. *)

type t

val generate : Canon_rng.Rng.t -> params -> t
(** Builds the router graph. The graph is connected by construction
    (random spanning trees within every domain plus a connected
    transit-domain backbone). *)

val params : t -> params

val graph : t -> Graph.t
(** The router graph; vertices [0, transit_count) are transit nodes,
    the rest are stub routers. *)

val num_routers : t -> int

val transit_count : t -> int

val stub_routers : t -> int array
(** All stub-router vertices, in hierarchy (left-to-right) order. *)

val hierarchy : t -> Canon_hierarchy.Domain_tree.t
(** The induced five-level domain tree (four levels of internal domains
    below the root would be depth 4; leaves are stub routers at depth 4). *)

val leaf_of_stub_router : t -> int -> int
(** Maps a stub-router vertex to its leaf domain in {!hierarchy}.
    Raises [Invalid_argument] for transit vertices. *)

val stub_router_of_leaf : t -> int -> int
(** Inverse of {!leaf_of_stub_router}. *)
