module Domain_tree = Canon_hierarchy.Domain_tree
module Rng = Canon_rng.Rng

type params = {
  transit_domains : int;
  transit_nodes_per_domain : int;
  stub_domains_per_transit_node : int;
  stub_routers_per_domain : int;
  transit_transit_ms : float;
  transit_stub_ms : float;
  stub_stub_ms : float;
  access_ms : float;
  extra_edge_fraction : float;
}

let default_params =
  {
    transit_domains = 10;
    transit_nodes_per_domain = 4;
    stub_domains_per_transit_node = 5;
    stub_routers_per_domain = 10;
    transit_transit_ms = 100.0;
    transit_stub_ms = 20.0;
    stub_stub_ms = 5.0;
    access_ms = 1.0;
    extra_edge_fraction = 0.5;
  }

type t = {
  params : params;
  graph : Graph.t;
  transit_count : int;
  stub_routers : int array;
  hierarchy : Domain_tree.t;
  leaves : int array; (* leaf domain of stub router index (vertex - transit_count) *)
}

let validate p =
  if
    p.transit_domains < 1 || p.transit_nodes_per_domain < 1
    || p.stub_domains_per_transit_node < 1
    || p.stub_routers_per_domain < 1
  then invalid_arg "Transit_stub.generate: all counts must be >= 1";
  if p.extra_edge_fraction < 0.0 then
    invalid_arg "Transit_stub.generate: negative extra_edge_fraction"

(* Connect [members] into a random spanning tree plus
   [extra_edge_fraction * |members|] redundant random edges. *)
let connect_domain rng g members latency ~extra_fraction =
  let k = Array.length members in
  let order = Array.copy members in
  Rng.shuffle_in_place rng order;
  for i = 1 to k - 1 do
    let j = Rng.int_below rng i in
    Graph.add_edge g order.(i) order.(j) latency
  done;
  let extra = int_of_float (Float.of_int k *. extra_fraction) in
  let attempts = ref 0 in
  let added = ref 0 in
  (* Bounded rejection: in tiny domains every pair may already exist. *)
  while !added < extra && !attempts < 20 * (extra + 1) do
    incr attempts;
    let u = members.(Rng.int_below rng k) and v = members.(Rng.int_below rng k) in
    if u <> v && not (Graph.has_edge g u v) then begin
      Graph.add_edge g u v latency;
      incr added
    end
  done

let generate rng p =
  validate p;
  let transit_count = p.transit_domains * p.transit_nodes_per_domain in
  let stubs_per_transit_node = p.stub_domains_per_transit_node * p.stub_routers_per_domain in
  let stub_count = transit_count * stubs_per_transit_node in
  let n = transit_count + stub_count in
  let g = Graph.create n in
  (* 1. Transit nodes within each transit domain form a connected random
     graph over transit-transit links. *)
  for td = 0 to p.transit_domains - 1 do
    let members =
      Array.init p.transit_nodes_per_domain (fun i -> (td * p.transit_nodes_per_domain) + i)
    in
    connect_domain rng g members p.transit_transit_ms ~extra_fraction:p.extra_edge_fraction
  done;
  (* 2. The transit domains themselves form a connected backbone: a
     random spanning tree over domains plus some redundancy; a
     domain-level edge links a random transit node of each side. *)
  let random_transit_node rng td =
    (td * p.transit_nodes_per_domain) + Rng.int_below rng p.transit_nodes_per_domain
  in
  let dom_order = Array.init p.transit_domains Fun.id in
  Rng.shuffle_in_place rng dom_order;
  for i = 1 to p.transit_domains - 1 do
    let j = Rng.int_below rng i in
    let u = random_transit_node rng dom_order.(i) and v = random_transit_node rng dom_order.(j) in
    if not (Graph.has_edge g u v) then Graph.add_edge g u v p.transit_transit_ms
    else begin
      (* Extremely unlikely collision with an intra-domain edge pattern;
         retry with fresh endpoints. *)
      let u' = random_transit_node rng dom_order.(i) and v' = random_transit_node rng dom_order.(j) in
      if not (Graph.has_edge g u' v') then Graph.add_edge g u' v' p.transit_transit_ms
    end
  done;
  if p.transit_domains > 2 then begin
    let extra = int_of_float (Float.of_int p.transit_domains *. p.extra_edge_fraction) in
    let added = ref 0 and attempts = ref 0 in
    while !added < extra && !attempts < 20 * (extra + 1) do
      incr attempts;
      let a = Rng.int_below rng p.transit_domains and b = Rng.int_below rng p.transit_domains in
      if a <> b then begin
        let u = random_transit_node rng a and v = random_transit_node rng b in
        if not (Graph.has_edge g u v) then begin
          Graph.add_edge g u v p.transit_transit_ms;
          incr added
        end
      end
    done
  end;
  (* 3. Stub domains: each transit node carries its quota of stub
     domains; each stub domain is internally connected over stub-stub
     links and attached to its transit node by a transit-stub link. *)
  for tn = 0 to transit_count - 1 do
    for sd = 0 to p.stub_domains_per_transit_node - 1 do
      let base =
        transit_count
        + (tn * stubs_per_transit_node)
        + (sd * p.stub_routers_per_domain)
      in
      let members = Array.init p.stub_routers_per_domain (fun i -> base + i) in
      connect_domain rng g members p.stub_stub_ms ~extra_fraction:p.extra_edge_fraction;
      let gateway = members.(Rng.int_below rng p.stub_routers_per_domain) in
      Graph.add_edge g tn gateway p.transit_stub_ms
    done
  done;
  (* 4. The induced five-level hierarchy: root / transit domain /
     transit node / stub domain / stub router. Leaves appear in exactly
     the same left-to-right order as stub-router vertices. *)
  let leaf = Domain_tree.Leaf in
  let stub_domain_spec = Domain_tree.Node (List.init p.stub_routers_per_domain (fun _ -> leaf)) in
  let transit_node_spec =
    Domain_tree.Node (List.init p.stub_domains_per_transit_node (fun _ -> stub_domain_spec))
  in
  let transit_domain_spec =
    Domain_tree.Node (List.init p.transit_nodes_per_domain (fun _ -> transit_node_spec))
  in
  let root_spec = Domain_tree.Node (List.init p.transit_domains (fun _ -> transit_domain_spec)) in
  let hierarchy = Domain_tree.of_spec root_spec in
  let leaves = Domain_tree.leaves hierarchy in
  assert (Array.length leaves = stub_count);
  {
    params = p;
    graph = g;
    transit_count;
    stub_routers = Array.init stub_count (fun i -> transit_count + i);
    hierarchy;
    leaves;
  }

let params t = t.params

let graph t = t.graph

let num_routers t = Graph.num_vertices t.graph

let transit_count t = t.transit_count

let stub_routers t = t.stub_routers

let hierarchy t = t.hierarchy

let leaf_of_stub_router t v =
  if v < t.transit_count || v >= num_routers t then
    invalid_arg "Transit_stub.leaf_of_stub_router: not a stub router";
  t.leaves.(v - t.transit_count)

let stub_router_of_leaf t leaf =
  (* Leaves array is sorted in left-to-right order matching vertices. *)
  let rec search lo hi =
    if lo > hi then invalid_arg "Transit_stub.stub_router_of_leaf: unknown leaf"
    else
      let mid = (lo + hi) / 2 in
      if t.leaves.(mid) = leaf then t.transit_count + mid
      else if t.leaves.(mid) < leaf then search (mid + 1) hi
      else search lo (mid - 1)
  in
  search 0 (Array.length t.leaves - 1)
