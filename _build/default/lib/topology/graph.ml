type t = {
  n : int;
  adj : (int * float) list array; (* adjacency lists, built incrementally *)
  mutable edges : int;
}

let create n =
  if n <= 0 then invalid_arg "Graph.create: need at least one vertex";
  { n; adj = Array.make n []; edges = 0 }

let num_vertices g = g.n

let num_edges g = g.edges

let check_vertex g v =
  if v < 0 || v >= g.n then invalid_arg "Graph: vertex out of range"

let has_edge g u v =
  check_vertex g u;
  check_vertex g v;
  List.exists (fun (w, _) -> w = v) g.adj.(u)

let add_edge g u v w =
  check_vertex g u;
  check_vertex g v;
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if w <= 0.0 then invalid_arg "Graph.add_edge: non-positive weight";
  if has_edge g u v then invalid_arg "Graph.add_edge: duplicate edge";
  g.adj.(u) <- (v, w) :: g.adj.(u);
  g.adj.(v) <- (u, w) :: g.adj.(v);
  g.edges <- g.edges + 1

let neighbors g v =
  check_vertex g v;
  Array.of_list g.adj.(v)

let degree g v =
  check_vertex g v;
  List.length g.adj.(v)

(* A small array-based binary min-heap of (distance, vertex) pairs.
   Stale entries are skipped at pop time (lazy deletion). *)
module Heap = struct
  type t = {
    mutable dist : float array;
    mutable vertex : int array;
    mutable size : int;
  }

  let create cap = { dist = Array.make (max cap 4) 0.0; vertex = Array.make (max cap 4) 0; size = 0 }

  let swap h i j =
    let d = h.dist.(i) and v = h.vertex.(i) in
    h.dist.(i) <- h.dist.(j);
    h.vertex.(i) <- h.vertex.(j);
    h.dist.(j) <- d;
    h.vertex.(j) <- v

  let push h d v =
    if h.size = Array.length h.dist then begin
      let dist = Array.make (2 * h.size) 0.0 and vertex = Array.make (2 * h.size) 0 in
      Array.blit h.dist 0 dist 0 h.size;
      Array.blit h.vertex 0 vertex 0 h.size;
      h.dist <- dist;
      h.vertex <- vertex
    end;
    h.dist.(h.size) <- d;
    h.vertex.(h.size) <- v;
    let i = ref h.size in
    h.size <- h.size + 1;
    while !i > 0 && h.dist.((!i - 1) / 2) > h.dist.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let d = h.dist.(0) and v = h.vertex.(0) in
      h.size <- h.size - 1;
      h.dist.(0) <- h.dist.(h.size);
      h.vertex.(0) <- h.vertex.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && h.dist.(l) < h.dist.(!smallest) then smallest := l;
        if r < h.size && h.dist.(r) < h.dist.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done;
      Some (d, v)
    end
end

let dijkstra g src =
  check_vertex g src;
  let dist = Array.make g.n infinity in
  let heap = Heap.create g.n in
  dist.(src) <- 0.0;
  Heap.push heap 0.0 src;
  let rec loop () =
    match Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (v, w) ->
              let nd = d +. w in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                Heap.push heap nd v
              end)
            g.adj.(u);
        loop ()
  in
  loop ();
  dist

let is_connected g =
  let dist = dijkstra g 0 in
  Array.for_all (fun d -> d < infinity) dist
