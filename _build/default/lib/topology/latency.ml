type t = {
  topology : Transit_stub.t;
  dist : float array array; (* all-pairs among routers *)
  access : float;
}

let create ts =
  let g = Transit_stub.graph ts in
  let n = Graph.num_vertices g in
  let dist = Array.init n (fun src -> Graph.dijkstra g src) in
  { topology = ts; dist; access = (Transit_stub.params ts).Transit_stub.access_ms }

let topology t = t.topology

let router_latency t a b = t.dist.(a).(b)

let node_latency t a b = t.access +. t.dist.(a).(b) +. t.access

let mean_node_latency t rng ~samples =
  if samples <= 0 then invalid_arg "Latency.mean_node_latency: samples must be positive";
  let stubs = Transit_stub.stub_routers t.topology in
  let total = ref 0.0 in
  for _ = 1 to samples do
    let a = Canon_rng.Rng.pick rng stubs and b = Canon_rng.Rng.pick rng stubs in
    total := !total +. node_latency t a b
  done;
  !total /. Float.of_int samples
