open Canon_overlay

type t = {
  edges : (int * int, unit) Hashtbl.t;
  nodes : (int, unit) Hashtbl.t;
}

let of_routes routes =
  let edges = Hashtbl.create 1024 and nodes = Hashtbl.create 1024 in
  List.iter
    (fun route ->
      Array.iter (fun n -> Hashtbl.replace nodes n ()) route.Route.nodes;
      Array.iter (fun e -> Hashtbl.replace edges e ()) (Route.edges route))
    routes;
  { edges; nodes }

let num_edges t = Hashtbl.length t.edges

let num_nodes t = Hashtbl.length t.nodes

let inter_domain_edges t ~domain_of_node =
  Hashtbl.fold
    (fun (u, v) () acc -> if domain_of_node u <> domain_of_node v then acc + 1 else acc)
    t.edges 0

let total_latency t ~node_latency =
  Hashtbl.fold (fun (u, v) () acc -> acc +. node_latency u v) t.edges 0.0
