lib/workload/multicast.mli: Canon_overlay Route
