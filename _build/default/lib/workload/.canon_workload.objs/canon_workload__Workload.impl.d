lib/workload/workload.ml: Array Canon_idspace Canon_overlay Canon_rng Canon_stats Hashtbl Id List Population
