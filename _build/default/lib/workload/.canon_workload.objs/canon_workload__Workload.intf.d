lib/workload/workload.mli: Canon_idspace Canon_overlay Canon_rng Canon_stats Id
