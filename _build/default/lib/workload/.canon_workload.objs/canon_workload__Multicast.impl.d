lib/workload/multicast.ml: Array Canon_overlay Hashtbl List Route
