(** Query workload generators for the storage and caching experiments.

    Two knobs matter to Canon: {e popularity} (how skewed the key
    distribution is — Zipfian access makes caching pay) and
    {e locality} (how often nodes near each other in the hierarchy ask
    for the same keys — what hierarchical caching exploits). *)

open Canon_idspace

type keyspace

val keyspace : Canon_rng.Rng.t -> keys:int -> keyspace
(** A universe of distinct random keys. *)

val key : keyspace -> int -> Id.t
(** The i-th key of the universe. *)

val num_keys : keyspace -> int

val zipf_key : keyspace -> Canon_stats.Zipf.sampler -> Canon_rng.Rng.t -> Id.t
(** A key drawn by Zipfian popularity rank. *)

type locality_query = {
  querier : int;
  key : Id.t;
}

val local_queries :
  Canon_rng.Rng.t ->
  Canon_overlay.Population.t ->
  keyspace ->
  sampler:Canon_stats.Zipf.sampler ->
  locality:float ->
  count:int ->
  locality_query list
(** A stream of queries where, with probability [locality], the querier
    repeats the {e previous} query of a node from the same depth-1
    domain (hierarchical locality of reference), and otherwise draws a
    fresh Zipfian key from a uniformly random node. *)
