(** Multicast trees from path convergence (paper §5.4, Fig. 9).

    Routing queries from many sources to one destination and taking the
    union of the paths yields a tree rooted (as a multicast source) at
    the destination; data flows along the reversed query paths. The
    figure-of-merit is the number of {e inter-domain} edges in this
    tree, since inter-domain links are the expensive, bandwidth-limited
    ones. *)

open Canon_overlay

type t

val of_routes : Route.t list -> t
(** Union of the directed edges of the given paths (deduplicated). *)

val num_edges : t -> int

val num_nodes : t -> int
(** Nodes touched by at least one path. *)

val inter_domain_edges : t -> domain_of_node:(int -> int) -> int
(** Edges whose endpoints fall in different domains under the given
    assignment. *)

val total_latency : t -> node_latency:(int -> int -> float) -> float
(** Sum of edge latencies — the bandwidth-time cost of one multicast
    transmission over the tree. *)
