open Canon_idspace
open Canon_overlay
module Rng = Canon_rng.Rng

type keyspace = { keys : Id.t array }

let keyspace rng ~keys =
  if keys <= 0 then invalid_arg "Workload.keyspace: need at least one key";
  { keys = Population.unique_ids rng keys }

let key t i = t.keys.(i)

let num_keys t = Array.length t.keys

let zipf_key t sampler rng = t.keys.(Canon_stats.Zipf.draw sampler rng)

type locality_query = {
  querier : int;
  key : Id.t;
}

let local_queries rng pop ks ~sampler ~locality ~count =
  if locality < 0.0 || locality > 1.0 then invalid_arg "Workload.local_queries: bad locality";
  let n = Population.size pop in
  if n = 0 then invalid_arg "Workload.local_queries: empty population";
  (* Last key asked within each depth-1 domain. *)
  let last_in_domain : (int, Id.t) Hashtbl.t = Hashtbl.create 64 in
  let fresh () =
    let querier = Rng.int_below rng n in
    let key = zipf_key ks sampler rng in
    (querier, key)
  in
  let queries = ref [] in
  for _ = 1 to count do
    let querier, key =
      if Rng.float rng < locality then begin
        let querier = Rng.int_below rng n in
        let dom = Population.domain_of_node_at_depth pop querier 1 in
        match Hashtbl.find_opt last_in_domain dom with
        | Some key -> (querier, key)
        | None -> fresh ()
      end
      else fresh ()
    in
    let dom = Population.domain_of_node_at_depth pop querier 1 in
    Hashtbl.replace last_in_domain dom key;
    queries := { querier; key } :: !queries
  done;
  List.rev !queries
