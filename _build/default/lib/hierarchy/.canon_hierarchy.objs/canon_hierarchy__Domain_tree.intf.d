lib/hierarchy/domain_tree.mli: Format
