lib/hierarchy/placement.mli: Canon_rng Domain_tree
