lib/hierarchy/placement.ml: Array Canon_rng Canon_stats Domain_tree Fun
