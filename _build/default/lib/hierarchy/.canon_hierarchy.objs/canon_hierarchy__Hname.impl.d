lib/hierarchy/hname.ml: Array Domain_tree Hashtbl List Printf String
