lib/hierarchy/hname.mli: Domain_tree
