lib/hierarchy/domain_tree.ml: Array Format Fun List
