(** Assignment of system nodes to the leaves of a domain hierarchy.

    The paper evaluates two distributions (§5.1): uniformly random
    assignment of each node to a leaf, and a Zipfian distribution where
    the number of nodes in the k-th largest branch within any domain is
    proportional to 1/k{^1.25}. Both are implemented here, plus an
    explicit assignment for topology-driven hierarchies. *)

type policy =
  | Uniform  (** each node picks a leaf uniformly at random *)
  | Zipfian of float
      (** recursive Zipfian branch sizing with the given exponent
          (the paper uses 1.25) *)

val assign :
  Canon_rng.Rng.t -> Domain_tree.t -> policy -> n:int -> int array
(** [assign rng tree policy ~n] returns an array mapping each node index
    in [0, n) to a leaf domain of [tree]. With [Zipfian], counts are
    apportioned top-down with largest-remainder rounding, then nodes are
    shuffled over the resulting leaf slots so node index carries no
    information. Requires [n >= 0]. *)

val leaf_population : Domain_tree.t -> int array -> int array
(** [leaf_population tree leaf_of_node] counts nodes per domain index
    (all domains, not just leaves: an internal domain's count is the sum
    over its subtree). *)
