type t = string list

let of_string s =
  if s = "" then []
  else List.rev (String.split_on_char '.' s)

let to_string = function
  | [] -> ""
  | path -> String.concat "." (List.rev path)

let parent = function
  | [] -> None
  | path -> Some (List.rev (List.tl (List.rev path)))

let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> String.equal a b && is_prefix p' q'

(* A trie over name components, children kept sorted for determinism. *)
type trie = { mutable kids : (string * trie) list }

let new_trie () = { kids = [] }

let rec insert trie = function
  | [] -> ()
  | label :: rest ->
      let child =
        match List.assoc_opt label trie.kids with
        | Some c -> c
        | None ->
            let c = new_trie () in
            trie.kids <- (label, c) :: trie.kids;
            c
      in
      insert child rest

let rec sort_trie trie =
  trie.kids <- List.sort (fun (a, _) (b, _) -> String.compare a b) trie.kids;
  List.iter (fun (_, c) -> sort_trie c) trie.kids

type namespace = {
  tree : Domain_tree.t;
  by_name : (string, int) Hashtbl.t;
  names : t array; (* domain index -> name *)
}

let namespace_of_leaves leaves =
  if leaves = [] then invalid_arg "Hname.namespace_of_leaves: empty";
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b && is_prefix a b && List.length a < List.length b then
            invalid_arg
              (Printf.sprintf "Hname.namespace_of_leaves: %S is a prefix of %S"
                 (to_string a) (to_string b)))
        leaves)
    leaves;
  let root = new_trie () in
  List.iter (insert root) leaves;
  sort_trie root;
  (* Walk the trie in the same preorder as Domain_tree.of_spec numbers
     domains, recording both the spec and the index of every name. *)
  let by_name = Hashtbl.create 64 in
  let names = ref [] in
  let counter = ref 0 in
  let rec walk trie path =
    let idx = !counter in
    incr counter;
    Hashtbl.replace by_name (to_string (List.rev path)) idx;
    names := List.rev path :: !names;
    match trie.kids with
    | [] -> Domain_tree.Leaf
    | kids -> Domain_tree.Node (List.map (fun (label, c) -> walk c (label :: path)) kids)
  in
  let spec = walk root [] in
  let tree = Domain_tree.of_spec spec in
  { tree; by_name; names = Array.of_list (List.rev !names) }

let tree ns = ns.tree

let domain_of_name ns name =
  match Hashtbl.find_opt ns.by_name (to_string name) with
  | Some idx -> idx
  | None -> raise Not_found

let name_of_domain ns idx = ns.names.(idx)
