(** The conceptual hierarchy of domains (paper §2.1, Figure 1).

    Domains are the internal vertices of a rooted tree; system nodes hang
    off the leaves ("nodes are assumed to be hanging off the leafs rather
    than being leafs themselves"). A domain is identified by a dense
    integer index; the root always has index 0 and depth 0.

    Canon never needs global knowledge of this tree at run time — a node
    only needs its own leaf and the ability to compute lowest common
    ancestors — but the simulator holds the whole tree to build overlays
    and to evaluate locality. *)

type t

type spec =
  | Leaf
  | Node of spec list
      (** Shape description used to build trees: a [Node] lists its
          children in order. [Node []] is invalid. *)

val of_spec : spec -> t
(** Builds a tree from a shape. A bare [Leaf] spec gives a one-domain
    tree whose root is itself a leaf. *)

val uniform_spec : fanout:int -> levels:int -> spec
(** The paper's experimental hierarchy: a complete tree with the given
    fanout and number of levels below the root. [levels = 1] yields a
    single leaf domain (the flat case); [levels = l] yields a tree of
    height [l] whose internal vertices all have [fanout] children.
    Requires [fanout >= 1] and [levels >= 1]. *)

val num_domains : t -> int

val root : t -> int

val parent : t -> int -> int
(** Parent index; raises [Invalid_argument] on the root. *)

val children : t -> int -> int array
(** Children in order; empty for leaves. *)

val depth : t -> int -> int
(** Root has depth 0. *)

val height : t -> int
(** Maximum depth over all domains. *)

val is_leaf : t -> int -> bool

val leaves : t -> int array
(** All leaf domains, in left-to-right order. *)

val num_leaves : t -> int

val lca : t -> int -> int -> int
(** Lowest common ancestor of two domains. *)

val ancestor_at_depth : t -> int -> int -> int
(** [ancestor_at_depth t d k] is the ancestor of [d] at depth [k];
    requires [0 <= k <= depth t d]. *)

val is_ancestor : t -> anc:int -> desc:int -> bool
(** Reflexive ancestry test. *)

val iter_domains : t -> (int -> unit) -> unit

val subtree_leaves : t -> int -> int array
(** Leaves of the subtree rooted at the given domain, left to right. *)

val pp : Format.formatter -> t -> unit
