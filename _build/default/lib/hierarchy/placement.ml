type policy =
  | Uniform
  | Zipfian of float

let assign rng tree policy ~n =
  if n < 0 then invalid_arg "Placement.assign: negative n";
  let leaves = Domain_tree.leaves tree in
  match policy with
  | Uniform ->
      Array.init n (fun _ -> leaves.(Canon_rng.Rng.int_below rng (Array.length leaves)))
  | Zipfian alpha ->
      (* Top-down apportionment: each internal domain splits its count
         over children by Zipf weights; a leaf keeps its count. The
         branch ranked k-th largest gets weight 1/(k+1)^alpha; we use a
         random permutation of children as the ranking so that "largest
         branch" is not always the leftmost child. *)
      let counts = Array.make (Domain_tree.num_domains tree) 0 in
      counts.(Domain_tree.root tree) <- n;
      let rec distribute d =
        let kids = Domain_tree.children tree d in
        let b = Array.length kids in
        if b > 0 then begin
          let split = Canon_stats.Zipf.split_counts ~total:counts.(d) ~branches:b ~alpha in
          let order = Array.init b Fun.id in
          Canon_rng.Rng.shuffle_in_place rng order;
          Array.iteri (fun rank pos -> counts.(kids.(pos)) <- split.(rank)) order;
          Array.iter distribute kids
        end
      in
      distribute (Domain_tree.root tree);
      (* Expand leaf counts into per-node assignments, then shuffle so
         node indices are uncorrelated with position in the hierarchy. *)
      let out = Array.make n (-1) in
      let cursor = ref 0 in
      Array.iter
        (fun leaf ->
          for _ = 1 to counts.(leaf) do
            out.(!cursor) <- leaf;
            incr cursor
          done)
        leaves;
      assert (!cursor = n);
      Canon_rng.Rng.shuffle_in_place rng out;
      out

let leaf_population tree leaf_of_node =
  let counts = Array.make (Domain_tree.num_domains tree) 0 in
  Array.iter
    (fun leaf ->
      (* Credit every ancestor, so internal domains hold subtree sums. *)
      let rec credit d =
        counts.(d) <- counts.(d) + 1;
        if d <> Domain_tree.root tree then credit (Domain_tree.parent tree d)
      in
      credit leaf)
    leaf_of_node;
  counts
