type t = {
  parent : int array; (* root maps to -1 *)
  children : int array array;
  depth : int array;
  leaves : int array;
  height : int;
}

type spec =
  | Leaf
  | Node of spec list

let of_spec spec =
  (* First pass: count domains to size the arrays. *)
  let rec count = function
    | Leaf -> 1
    | Node [] -> invalid_arg "Domain_tree.of_spec: Node with no children"
    | Node kids -> List.fold_left (fun acc k -> acc + count k) 1 kids
  in
  let n = count spec in
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  let children = Array.make n [||] in
  let next = ref 0 in
  let rec build spec parent_idx d =
    let idx = !next in
    incr next;
    parent.(idx) <- parent_idx;
    depth.(idx) <- d;
    (match spec with
    | Leaf -> ()
    | Node kids ->
        let kid_indices = List.map (fun k -> build k idx (d + 1)) kids in
        children.(idx) <- Array.of_list kid_indices);
    idx
  in
  let root = build spec (-1) 0 in
  assert (root = 0);
  let leaves =
    Array.of_list
      (List.filter (fun i -> Array.length children.(i) = 0) (List.init n Fun.id))
  in
  let height = Array.fold_left max 0 depth in
  { parent; children; depth; leaves; height }

let uniform_spec ~fanout ~levels =
  if fanout < 1 then invalid_arg "Domain_tree.uniform_spec: fanout < 1";
  if levels < 1 then invalid_arg "Domain_tree.uniform_spec: levels < 1";
  (* [levels] counts the number of ring levels: levels = 1 is a single
     leaf domain (flat DHT); each extra level adds one layer of fanout. *)
  let rec go remaining =
    if remaining = 1 then Leaf else Node (List.init fanout (fun _ -> go (remaining - 1)))
  in
  go levels

let num_domains t = Array.length t.parent

let root _ = 0

let parent t d =
  if d = 0 then invalid_arg "Domain_tree.parent: root has no parent";
  t.parent.(d)

let children t d = t.children.(d)

let depth t d = t.depth.(d)

let height t = t.height

let is_leaf t d = Array.length t.children.(d) = 0

let leaves t = t.leaves

let num_leaves t = Array.length t.leaves

let ancestor_at_depth t d k =
  if k < 0 || k > t.depth.(d) then invalid_arg "Domain_tree.ancestor_at_depth";
  let rec go d = if t.depth.(d) = k then d else go t.parent.(d) in
  go d

let lca t a b =
  let rec go a b =
    if a = b then a
    else if t.depth.(a) > t.depth.(b) then go t.parent.(a) b
    else if t.depth.(b) > t.depth.(a) then go a t.parent.(b)
    else go t.parent.(a) t.parent.(b)
  in
  go a b

let is_ancestor t ~anc ~desc =
  t.depth.(anc) <= t.depth.(desc) && ancestor_at_depth t desc t.depth.(anc) = anc

let iter_domains t f =
  for d = 0 to num_domains t - 1 do
    f d
  done

let subtree_leaves t d =
  let acc = ref [] in
  let rec go d =
    if is_leaf t d then acc := d :: !acc
    else Array.iter go t.children.(d)
  in
  go d;
  Array.of_list (List.rev !acc)

let pp ppf t =
  let rec go ppf d =
    if is_leaf t d then Format.fprintf ppf "%d" d
    else
      Format.fprintf ppf "%d(%a)" d
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
           go)
        t.children.(d)
  in
  go ppf 0
