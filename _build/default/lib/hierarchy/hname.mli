(** Hierarchical, DNS-style names.

    The paper notes that "one possible practical implementation is to
    assign each node a hierarchical name as in the DNS system". This
    module implements that front end: names like ["db.cs.stanford"]
    denote a path of domains from the root, and a set of names induces a
    {!Domain_tree.t}. Used by the public API and the storage examples so
    applications never touch raw domain indices. *)

type t = string list
(** A name as a path from the root, e.g. [["stanford"; "cs"; "db"]].
    The empty list names the root domain. *)

val of_string : string -> t
(** ["db.cs.stanford"] becomes [["stanford"; "cs"; "db"]] (DNS order is
    most-specific-first; we store root-first). [""] is the root. *)

val to_string : t -> string
(** Inverse of {!of_string}. *)

val parent : t -> t option
(** [parent ["a";"b"]] is [Some ["a"]]; [parent []] is [None]. *)

val is_prefix : t -> t -> bool
(** [is_prefix p q]: does domain [p] contain domain [q]? (Reflexive.) *)

type namespace
(** A set of leaf names closed into a tree. *)

val namespace_of_leaves : t list -> namespace
(** Builds the namespace whose leaves are (at least) the given names.
    Raises [Invalid_argument] if one name is a strict prefix of another
    (a domain cannot be both a leaf and an interior domain), or if the
    list is empty. *)

val tree : namespace -> Domain_tree.t

val domain_of_name : namespace -> t -> int
(** Domain index of a name; raises [Not_found] for unknown names. *)

val name_of_domain : namespace -> int -> t
