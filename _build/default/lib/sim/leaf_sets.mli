(** Leaf sets (paper §2.3): "In Crescendo, each node maintains a list
    of successors at every level of the hierarchy."

    Leaf sets are not routing links — the paper notes they are cheap,
    cause no state overhead (no TCP connections) and are refreshed by a
    single message around each ring — but they are what makes abrupt
    failures survivable: when a node's successor at some level dies,
    the next leaf-set entry at that level re-anchors the ring. *)

open Canon_overlay

val successors : Rings.t -> node:int -> width:int -> int array array
(** [successors rings ~node ~width] is, for each level of [node]'s
    domain chain (leaf first), the next [width] nodes clockwise on that
    level's ring (fewer if the ring is small; never contains [node]). *)

val contains : int array array -> int -> bool
(** Is a node present in any level of a leaf set? *)
