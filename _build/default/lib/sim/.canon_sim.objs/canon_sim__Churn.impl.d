lib/sim/churn.ml: Array Canon_core Canon_overlay Canon_rng Event_queue Float Fun Maintenance Population Router
