lib/sim/maintenance.mli: Canon_overlay Overlay Population Rings
