lib/sim/maintenance.ml: Array Canon_core Canon_idspace Canon_overlay Crescendo Hashtbl Id Int Overlay Population Ring Rings Route Router
