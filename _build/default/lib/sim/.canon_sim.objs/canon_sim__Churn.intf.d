lib/sim/churn.mli: Canon_overlay Canon_rng
