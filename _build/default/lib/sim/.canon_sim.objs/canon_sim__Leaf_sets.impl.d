lib/sim/leaf_sets.ml: Array Canon_overlay Int Population Ring Rings
