lib/sim/leaf_sets.mli: Canon_overlay Rings
