(** Dynamic maintenance of Crescendo (paper §2.3).

    Simulates the join/leave protocol at message granularity and keeps
    the overlay's link state {e exactly} consistent: after any sequence
    of joins and leaves, every live node's links equal what the static
    Crescendo construction would build over the surviving population
    (this equivalence is asserted by the test suite).

    A join routes a query for the new node's own identifier through a
    bootstrap node — greedy routing visits the new identifier's
    predecessor at every level — then establishes the new node's links
    and notifies the nodes whose links must now point at it (eager
    notification). A leave notifies in-neighbours and the per-level
    predecessors, whose distance caps may have widened.

    Costs are reported per operation:
    - [routing_messages]: hops of the bootstrap lookup;
    - [link_messages]: links the new node establishes (or, on leave,
      links torn down);
    - [notify_messages]: existing nodes whose link sets changed.

    The paper's claim — O(log n) messages per join — is checked
    experimentally by the maintenance benchmark. *)

open Canon_overlay

type t

type stats = {
  routing_messages : int;
  link_messages : int;
  notify_messages : int;
}

val total : stats -> int

val create : Population.t -> present:int array -> t
(** Starts with the listed nodes joined (their links computed directly)
    and everyone else absent. *)

val present : t -> int array
(** Currently live nodes, in no particular order. *)

val is_present : t -> int -> bool

val join : t -> int -> stats
(** Joins a population node. Raises [Invalid_argument] if already
    present or out of range. *)

val leave : t -> int -> stats
(** Graceful departure. Raises [Invalid_argument] if absent. *)

val crash : t -> int -> unit
(** Abrupt failure: the node vanishes without running the departure
    protocol, so other nodes keep {e stale links} pointing at it until
    {!repair} runs. Lookups in the window must route around the corpse
    ({!Canon_core.Router.greedy_clockwise_avoiding}), falling back on
    leaf-set entries as §2.3 intends. *)

val stale_nodes : t -> int array
(** Live nodes currently holding at least one link to a crashed node. *)

val repair : t -> stats
(** Failure detection and repair: every live node holding a stale link
    re-establishes its link set against the surviving rings (in the
    real protocol it consults its per-level leaf sets to find the new
    successors; here the cost is counted as one notification per
    repaired node plus its re-established links). Afterwards the link
    state again equals the static construction — asserted in tests. *)

val links : t -> int -> int array
(** Current links of a live node. *)

val overlay : t -> Overlay.t
(** Immutable snapshot: absent nodes have no links. *)

val rings : t -> Rings.t
(** The live per-domain rings (mutated by joins/leaves — do not hold
    across operations). *)
