open Canon_overlay

let successors rings ~node ~width =
  if width < 0 then invalid_arg "Leaf_sets.successors: negative width";
  let pop = Rings.population rings in
  let id = pop.Population.ids.(node) in
  Array.map
    (fun domain ->
      let ring = Rings.ring rings domain in
      let size = Ring.size ring in
      let take = min width (max 0 (size - 1)) in
      let out = Array.make take 0 in
      let current = ref id in
      for i = 0 to take - 1 do
        let succ = Ring.successor_of_id ring !current in
        out.(i) <- succ;
        current := pop.Population.ids.(succ)
      done;
      out)
    (Rings.chain rings node)

let contains sets node = Array.exists (Array.exists (Int.equal node)) sets
