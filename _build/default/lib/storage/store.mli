(** Hierarchical storage, retrieval and access control (paper §4.1).

    A publisher inserts a key-value pair with a {e storage domain}
    [Ds] (a domain containing the publisher, within which the pair must
    physically live) and an {e access domain} [Da ⊇ Ds] (to all of whose
    nodes the pair is visible). The pair is stored at the node of [Ds]
    whose identifier is the closest at or below the key — the ring of
    [Ds] alone decides placement. If [Da] is strictly larger, a
    {e pointer} to the pair is additionally stored at [Da]'s responsible
    node.

    Lookup is plain hierarchical greedy routing toward the key. A node
    [m] on the path returns a matching pair (or resolves a matching
    pointer) iff the pair's access domain contains the lowest common
    ancestor of [m] and the query source — the "current routing level"
    of the paper, which makes access control fall out of routing: a
    querier outside the access domain can meet the responsible node only
    at a routing level above [Da], where the check fails. *)

open Canon_idspace
open Canon_overlay

type t

type hit = {
  value : string;
  found_at : int;  (** node on the query path that answered *)
  via_pointer : int option;
      (** when the answer was a pointer, the node the content was
          fetched from *)
  path : Route.t;  (** greedy route walked up to [found_at] *)
}

val create : Rings.t -> t
(** An empty store over the given population. *)

val rings : t -> Rings.t

val insert :
  t ->
  publisher:int ->
  key:Id.t ->
  value:string ->
  storage_domain:int ->
  access_domain:int ->
  unit
(** Stores the pair. Raises [Invalid_argument] unless [storage_domain]
    contains the publisher's leaf, [access_domain] contains
    [storage_domain], and the storage domain has at least one node. *)

val storage_node : t -> domain:int -> key:Id.t -> int
(** The node of [domain] responsible for [key] (the paper's
    closest-at-or-below rule). *)

val lookup : t -> Overlay.t -> querier:int -> key:Id.t -> hit option
(** Routes greedily from [querier] toward [key]; returns the first
    visible answer, resolving a pointer if needed. [None] when routing
    completes without a visible answer. *)

val lookup_all : t -> Overlay.t -> querier:int -> key:Id.t -> hit list
(** All visible values for [key] along the full route (for applications
    that allow multiple values per key), in path order. *)

val probe : t -> querier:int -> key:Id.t -> node:int -> (string * int) option
(** [probe t ~querier ~key ~node] is the value (and its access domain)
    that [node] would answer to [querier]'s query, resolving a pointer
    if needed; [None] when the node holds nothing visible. Used by the
    caching layer, which walks the route itself. *)

val remove : t -> key:Id.t -> storage_domain:int -> access_domain:int -> unit
(** Removes all values stored for [key] under exactly this
    storage/access domain pair (and the matching pointer). *)
