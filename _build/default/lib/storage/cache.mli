(** Hierarchical caching of query answers (paper §4.2).

    Inter-domain path convergence means every query [Q] for a key leaving
    a domain [D] exits through one {e proxy node} [p(Q, D)] — the closest
    predecessor of the key within [D]. Answers are therefore cached at
    the proxy of {e every} domain level crossed on the way to the
    answer, each copy annotated with the level (depth) it serves: a copy
    at a shallower domain (smaller level number) serves a wider
    population.

    The replacement policy follows the paper: when a node's cache is
    full it preferentially evicts entries with {e larger} level numbers
    (deep, narrow copies — a copy is likely still cached one level up),
    breaking ties by least-recent use. *)

open Canon_idspace
open Canon_overlay

type t

type result = {
  value : string;
  path : Route.t;  (** route walked by this query (up to the hit) *)
  served_from_cache : bool;
  found_at : int;
}

val create : Rings.t -> capacity:int -> t
(** Per-node cache capacity in entries. [capacity = 0] disables
    caching. *)

val proxy : t -> domain:int -> key:Id.t -> int
(** The proxy node [p(Q, D)]: closest predecessor of the key in the
    domain's ring. Raises [Invalid_argument] on an empty domain. *)

val query : t -> Store.t -> Overlay.t -> querier:int -> key:Id.t -> result option
(** Routes toward the key, stopping early at any visible cached copy;
    on a store hit, caches the answer at the proxy of every domain of
    the querier's chain below the answer level, with level
    annotations. *)

val cached_levels : t -> node:int -> key:Id.t -> int list
(** Level annotations of copies of [key] cached at [node] (for tests
    and inspection). *)

val entries : t -> node:int -> int
(** Number of cached entries held by a node. *)
