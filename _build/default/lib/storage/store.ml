open Canon_idspace
open Canon_hierarchy
open Canon_overlay
open Canon_core

type stored =
  | Content of { value : string; storage_domain : int; access_domain : int }
  | Pointer of { holder : int; storage_domain : int; access_domain : int }
      (** [holder] is the node physically storing the content *)

type t = {
  rings : Rings.t;
  tables : (Id.t, stored list) Hashtbl.t array; (* per node *)
}

type hit = {
  value : string;
  found_at : int;
  via_pointer : int option;
  path : Route.t;
}

let create rings =
  let n = Population.size (Rings.population rings) in
  { rings; tables = Array.init n (fun _ -> Hashtbl.create 8) }

let rings t = t.rings

let add_entry t node key entry =
  let existing = Option.value ~default:[] (Hashtbl.find_opt t.tables.(node) key) in
  Hashtbl.replace t.tables.(node) key (entry :: existing)

let storage_node t ~domain ~key = Rings.responsible t.rings ~domain ~key

let insert t ~publisher ~key ~value ~storage_domain ~access_domain =
  let pop = Rings.population t.rings in
  let tree = pop.Population.tree in
  let leaf = pop.Population.leaf_of_node.(publisher) in
  if not (Domain_tree.is_ancestor tree ~anc:storage_domain ~desc:leaf) then
    invalid_arg "Store.insert: storage domain does not contain the publisher";
  if not (Domain_tree.is_ancestor tree ~anc:access_domain ~desc:storage_domain) then
    invalid_arg "Store.insert: access domain does not contain the storage domain";
  let holder = storage_node t ~domain:storage_domain ~key in
  add_entry t holder key (Content { value; storage_domain; access_domain });
  if access_domain <> storage_domain then begin
    let pointer_node = storage_node t ~domain:access_domain ~key in
    if pointer_node <> holder then
      add_entry t pointer_node key (Pointer { holder; storage_domain; access_domain })
  end

(* Visibility (paper §4.1): an entry answers a query from [querier]
   observed at node [m] iff its access domain contains lca(m, querier). *)
let visible t ~querier ~at entry =
  let pop = Rings.population t.rings in
  let tree = pop.Population.tree in
  let level = Population.lca_of_nodes pop querier at in
  let access = match entry with
    | Content { access_domain; _ } | Pointer { access_domain; _ } -> access_domain
  in
  Domain_tree.is_ancestor tree ~anc:access ~desc:level

let hits_at t ~querier ~key node =
  match Hashtbl.find_opt t.tables.(node) key with
  | None -> []
  | Some entries -> List.filter (visible t ~querier ~at:node) entries

let hit_of_entry ~found_at ~path = function
  | Content { value; _ } -> { value; found_at; via_pointer = None; path }
  | Pointer { holder; _ } ->
      (* Resolve the indirection: the pointer node fetches the content
         from its holder before answering. *)
      { value = "<resolved>"; found_at; via_pointer = Some holder; path }

let resolve_pointer t key holder =
  match Hashtbl.find_opt t.tables.(holder) key with
  | None -> None
  | Some entries ->
      List.find_map
        (function Content { value; _ } -> Some value | Pointer _ -> None)
        entries

let walk overlay ~querier ~key f =
  let route = Router.greedy_clockwise overlay ~src:querier ~key in
  let nodes = route.Route.nodes in
  let rec go i acc =
    if i >= Array.length nodes then List.rev acc
    else begin
      let prefix = Route.{ nodes = Array.sub nodes 0 (i + 1) } in
      match f nodes.(i) prefix with
      | `Stop x -> List.rev (x :: acc)
      | `Take x -> go (i + 1) (x :: acc)
      | `Continue -> go (i + 1) acc
    end
  in
  go 0 []

let complete_hit t key h =
  match h.via_pointer with
  | None -> Some h
  | Some holder -> (
      match resolve_pointer t key holder with
      | Some value -> Some { h with value }
      | None -> None)

let lookup t overlay ~querier ~key =
  let results =
    walk overlay ~querier ~key (fun node path ->
        match hits_at t ~querier ~key node with
        | [] -> `Continue
        | entry :: _ -> `Stop (hit_of_entry ~found_at:node ~path entry))
  in
  match results with
  | [] -> None
  | h :: _ -> complete_hit t key h

let lookup_all t overlay ~querier ~key =
  let results =
    walk overlay ~querier ~key (fun node path ->
        match hits_at t ~querier ~key node with
        | [] -> `Continue
        | entries ->
            `Take (List.map (hit_of_entry ~found_at:node ~path) entries))
  in
  List.concat results |> List.filter_map (complete_hit t key)

let probe t ~querier ~key ~node =
  match hits_at t ~querier ~key node with
  | [] -> None
  | entry :: _ -> (
      match entry with
      | Content { value; access_domain; _ } -> Some (value, access_domain)
      | Pointer { holder; access_domain; _ } -> (
          match resolve_pointer t key holder with
          | Some value -> Some (value, access_domain)
          | None -> None))

let remove t ~key ~storage_domain ~access_domain =
  let holder = storage_node t ~domain:storage_domain ~key in
  let keep = function
    | Content { storage_domain = s; access_domain = a; _ }
    | Pointer { storage_domain = s; access_domain = a; _ } ->
        not (s = storage_domain && a = access_domain)
  in
  let prune node =
    match Hashtbl.find_opt t.tables.(node) key with
    | None -> ()
    | Some entries -> (
        match List.filter keep entries with
        | [] -> Hashtbl.remove t.tables.(node) key
        | kept -> Hashtbl.replace t.tables.(node) key kept)
  in
  prune holder;
  if access_domain <> storage_domain then
    prune (storage_node t ~domain:access_domain ~key)
