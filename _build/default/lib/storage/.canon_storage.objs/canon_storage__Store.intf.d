lib/storage/store.mli: Canon_idspace Canon_overlay Id Overlay Rings Route
