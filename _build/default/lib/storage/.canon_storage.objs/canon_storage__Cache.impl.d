lib/storage/cache.ml: Array Canon_core Canon_hierarchy Canon_idspace Canon_overlay Domain_tree Hashtbl Id Population Ring Rings Route Router Store
