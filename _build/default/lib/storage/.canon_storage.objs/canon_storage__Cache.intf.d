lib/storage/cache.mli: Canon_idspace Canon_overlay Id Overlay Rings Route Store
