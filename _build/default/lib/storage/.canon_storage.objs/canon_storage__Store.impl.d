lib/storage/store.ml: Array Canon_core Canon_hierarchy Canon_idspace Canon_overlay Domain_tree Hashtbl Id List Option Population Rings Route Router
